"""Link-failure injection.

Overlay links ride real WAN circuits, and circuits fail.  A
:class:`FaultModel` marks links down for slot ranges; the online state
reports zero residual capacity on a downed link-slot, so every
scheduler in the library transparently routes (and time-shifts) around
outages it can see, and commits fail loudly if a scheduler tries to use
a dead link.

Outages come in two flavors:

* **Announced** (``announced=True``, the default): the outage is known
  when the affected slots are scheduled (planned maintenance, or
  failures lasting longer than a 5-minute slot — the common WAN case).
  Schedulers see these through
  :meth:`NetworkState.residual_capacity` and plan around them.
* **Surprise** (``announced=False``): the outage is invisible at
  schedule time.  The simulation engine detects committed transit on a
  newly dead link-slot at *execution* time, voids that traffic in the
  ledger, and hands the disrupted files to
  :class:`repro.sim.recovery.RecoveryManager` for salvage-and-replan.
  Once a surprise outage has been observed (its first downed slot
  executed), it is :meth:`revealed <reveal>`: the operator now knows
  the circuit is broken until repair, so the outage's remaining slots
  become visible to subsequent planning.

The distinction lives entirely in visibility: :meth:`is_down` is the
ground truth the execution engine audits against, while
:meth:`is_visible_down` is what schedulers may know.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.net.topology import LinkKey, Topology

PathLike = Union[str, Path]


@dataclass(frozen=True)
class Outage:
    """One link down for slots [start, end).

    ``announced=False`` marks a *surprise* outage: invisible to
    schedulers until its first downed slot is executed (or it is
    explicitly revealed).
    """

    src: int
    dst: int
    start_slot: int
    end_slot: int
    announced: bool = True

    def __post_init__(self):
        if self.start_slot < 0 or self.end_slot <= self.start_slot:
            raise SimulationError(
                f"outage on ({self.src},{self.dst}) has empty span "
                f"[{self.start_slot}, {self.end_slot})"
            )

    def covers(self, slot: int) -> bool:
        return self.start_slot <= slot < self.end_slot

    @property
    def slots(self) -> range:
        return range(self.start_slot, self.end_slot)


class FaultModel:
    """A set of outages, queryable per link-slot.

    Membership queries are O(1): per-link downed-slot sets are
    precomputed at construction and kept coherent by :meth:`add` and
    :meth:`reveal`.
    """

    def __init__(self, outages: Iterable[Outage] = ()):
        self.outages: List[Outage] = []
        self._by_link: Dict[LinkKey, List[Outage]] = {}
        #: Ground-truth downed slots per link (announced or not).
        self._down_slots: Dict[LinkKey, Set[int]] = {}
        #: Slots schedulers are allowed to know about (announced
        #: outages, plus surprise outages already revealed).
        self._visible_slots: Dict[LinkKey, Set[int]] = {}
        #: Surprise outages discovered at execution time.
        self._revealed: Set[Outage] = set()
        for outage in outages:
            self.add(outage)

    def add(self, outage: Outage) -> None:
        """Register an outage, keeping the slot-set caches coherent."""
        key = (outage.src, outage.dst)
        self.outages.append(outage)
        self._by_link.setdefault(key, []).append(outage)
        self._down_slots.setdefault(key, set()).update(outage.slots)
        if outage.announced:
            self._visible_slots.setdefault(key, set()).update(outage.slots)

    # -- queries ----------------------------------------------------------

    def is_down(self, src: int, dst: int, slot: int) -> bool:
        """Ground truth: is the link actually dead during ``slot``?"""
        slots = self._down_slots.get((src, dst))
        return slots is not None and slot in slots

    def is_visible_down(self, src: int, dst: int, slot: int) -> bool:
        """What a scheduler may know: announced or revealed outages."""
        slots = self._visible_slots.get((src, dst))
        return slots is not None and slot in slots

    def is_surprise_down(self, src: int, dst: int, slot: int) -> bool:
        """Down, but not visible — committed traffic here is disrupted."""
        return self.is_down(src, dst, slot) and not self.is_visible_down(
            src, dst, slot
        )

    @property
    def has_surprise(self) -> bool:
        """True when any outage is unannounced (needs execution-time
        detection, see :class:`repro.sim.recovery.RecoveryManager`)."""
        return any(not o.announced for o in self.outages)

    def downtime_slots(self, src: int, dst: int) -> Set[int]:
        """All downed slots of one link (a fresh copy of the cache)."""
        return set(self._down_slots.get((src, dst), ()))

    # -- execution-time discovery -----------------------------------------

    def reveal(self, src: int, dst: int, slot: int) -> List[Outage]:
        """Mark surprise outages covering ``(src, dst, slot)`` as
        discovered.

        Once a circuit is observed dead, the operator knows it stays
        dead until repaired: the *entire remaining span* of each
        covering outage becomes visible to planning.  Returns the newly
        revealed outages.
        """
        newly = []
        for outage in self._by_link.get((src, dst), ()):
            if outage.announced or outage in self._revealed:
                continue
            if outage.covers(slot):
                self._revealed.add(outage)
                self._visible_slots.setdefault((src, dst), set()).update(
                    outage.slots
                )
                newly.append(outage)
        return newly

    def copy(self) -> "FaultModel":
        """A fresh model with the same outages and *no* reveals.

        Use one copy per simulated scheduler so one run's discoveries
        do not leak into another's planning.
        """
        return FaultModel(self.outages)

    def as_surprise(self) -> "FaultModel":
        """The same outages, all demoted to unannounced."""
        return FaultModel(
            replace(o, announced=False) for o in self.outages
        )

    # -- construction helpers ----------------------------------------------

    @staticmethod
    def random(
        topology: Topology,
        num_slots: int,
        outage_probability: float = 0.05,
        mean_duration: float = 2.0,
        seed: Optional[int] = None,
        announced: bool = True,
    ) -> "FaultModel":
        """Independent per-link outages: each link fails with the given
        probability somewhere in the window, for a geometric duration
        whose mean is ``mean_duration`` slots.  ``announced=False``
        makes every generated outage a surprise."""
        if not 0 <= outage_probability <= 1:
            raise SimulationError("outage_probability must be in [0, 1]")
        if mean_duration < 1:
            raise SimulationError("mean_duration must be >= 1 slot")
        rng = np.random.default_rng(seed)
        outages = []
        for link in topology.links:
            if rng.random() < outage_probability:
                start = int(rng.integers(0, max(1, num_slots)))
                # rng.geometric already returns >= 1 with mean
                # 1/p = mean_duration; adding 1 here would inflate the
                # realized mean to mean_duration + 1.
                duration = int(rng.geometric(1.0 / mean_duration))
                outages.append(
                    Outage(
                        link.src,
                        link.dst,
                        start,
                        start + duration,
                        announced=announced,
                    )
                )
        return FaultModel(outages)

    @staticmethod
    def from_file(path: PathLike) -> "FaultModel":
        """Load outages from a JSON file.

        The format is a list of objects with ``src``, ``dst``,
        ``start_slot``, ``end_slot`` and optional ``announced``
        (default true) keys.
        """
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SimulationError(f"cannot load outages from {path}: {exc}") from exc
        if not isinstance(payload, list):
            raise SimulationError(f"{path}: expected a JSON list of outages")
        outages = []
        for i, row in enumerate(payload):
            if not isinstance(row, dict):
                raise SimulationError(f"{path}[{i}]: not an outage object")
            try:
                outages.append(
                    Outage(
                        src=int(row["src"]),
                        dst=int(row["dst"]),
                        start_slot=int(row["start_slot"]),
                        end_slot=int(row["end_slot"]),
                        announced=bool(row.get("announced", True)),
                    )
                )
            except KeyError as exc:
                raise SimulationError(
                    f"{path}[{i}]: missing outage field {exc}"
                ) from None
        return FaultModel(outages)

    def to_file(self, path: PathLike) -> None:
        """Write the outage list as JSON (the :meth:`from_file` format)."""
        Path(path).write_text(
            json.dumps(
                [
                    {
                        "src": o.src,
                        "dst": o.dst,
                        "start_slot": o.start_slot,
                        "end_slot": o.end_slot,
                        "announced": o.announced,
                    }
                    for o in self.outages
                ],
                indent=1,
            )
        )

    def __repr__(self) -> str:
        surprise = sum(1 for o in self.outages if not o.announced)
        return (
            f"FaultModel(outages={len(self.outages)}, surprise={surprise})"
        )
