"""Link-failure injection.

Overlay links ride real WAN circuits, and circuits fail.  A
:class:`FaultModel` marks links down for slot ranges; the online state
reports zero residual capacity on a downed link-slot, so every
scheduler in the library transparently routes (and time-shifts) around
outages it can see, and commits fail loudly if a scheduler tries to use
a dead link.

The model is *visible-at-schedule-time*: outages are known when the
affected slots are scheduled (planned maintenance, or failures lasting
longer than a 5-minute slot — the common WAN case).  Surprise
mid-transfer failures would need re-scheduling machinery the paper's
commit-once model deliberately excludes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.net.topology import LinkKey, Topology


@dataclass(frozen=True)
class Outage:
    """One link down for slots [start, end)."""

    src: int
    dst: int
    start_slot: int
    end_slot: int

    def __post_init__(self):
        if self.start_slot < 0 or self.end_slot <= self.start_slot:
            raise SimulationError(
                f"outage on ({self.src},{self.dst}) has empty span "
                f"[{self.start_slot}, {self.end_slot})"
            )

    def covers(self, slot: int) -> bool:
        return self.start_slot <= slot < self.end_slot


class FaultModel:
    """A set of outages, queryable per link-slot."""

    def __init__(self, outages: Iterable[Outage] = ()):
        self.outages: List[Outage] = list(outages)
        self._by_link: Dict[LinkKey, List[Outage]] = {}
        for outage in self.outages:
            self._by_link.setdefault((outage.src, outage.dst), []).append(outage)

    def is_down(self, src: int, dst: int, slot: int) -> bool:
        return any(o.covers(slot) for o in self._by_link.get((src, dst), ()))

    def add(self, outage: Outage) -> None:
        self.outages.append(outage)
        self._by_link.setdefault((outage.src, outage.dst), []).append(outage)

    def downtime_slots(self, src: int, dst: int) -> Set[int]:
        slots: Set[int] = set()
        for outage in self._by_link.get((src, dst), ()):
            slots.update(range(outage.start_slot, outage.end_slot))
        return slots

    @staticmethod
    def random(
        topology: Topology,
        num_slots: int,
        outage_probability: float = 0.05,
        mean_duration: float = 2.0,
        seed: Optional[int] = None,
    ) -> "FaultModel":
        """Independent per-link outages: each link fails with the given
        probability somewhere in the window, for a geometric duration."""
        if not 0 <= outage_probability <= 1:
            raise SimulationError("outage_probability must be in [0, 1]")
        if mean_duration < 1:
            raise SimulationError("mean_duration must be >= 1 slot")
        rng = np.random.default_rng(seed)
        outages = []
        for link in topology.links:
            if rng.random() < outage_probability:
                start = int(rng.integers(0, max(1, num_slots)))
                duration = 1 + int(rng.geometric(1.0 / mean_duration))
                outages.append(Outage(link.src, link.dst, start, start + duration))
        return FaultModel(outages)

    def __repr__(self) -> str:
        return f"FaultModel(outages={len(self.outages)})"
