"""Simulation outputs: per-slot records and the aggregate result."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.charging.schemes import ChargingScheme


@dataclass
class SlotRecord:
    """What happened during one simulated slot."""

    slot: int
    num_requests: int
    num_rejected: int
    requested_gb: float
    #: Billable volume the slot's schedule commits (over all its slots,
    #: which may extend into the future).
    scheduled_transit_gb: float
    #: GB-slots of intermediate storage the schedule uses.
    scheduled_storage_gb: float
    #: sum(a_ij * X_ij) after this slot's commitment.
    cost_per_slot_after: float
    #: Wall-clock seconds spent inside the scheduler.
    solve_seconds: float
    #: Engine overhead for this slot (metric recording, schedule
    #: volume aggregation) — everything the old single perf_counter
    #: pair silently excluded.
    overhead_seconds: float = 0.0
    #: Undelivered GB of files hit by a surprise outage this slot
    #: (0.0 everywhere when the run has no surprise faults).
    disrupted_gb: float = 0.0
    #: Of the disrupted volume, GB re-admitted within its deadline.
    salvaged_gb: float = 0.0
    #: Disrupted GB no recovery strategy could deliver in time.
    lost_gb: float = 0.0
    #: Files whose SLO was violated during this slot's recovery.
    deadline_misses: int = 0


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run."""

    scheduler_name: str
    num_slots: int
    slots: List[SlotRecord] = field(default_factory=list)
    #: Final average cost per interval under 100-th percentile billing
    #: (the paper's headline metric).
    final_cost_per_slot: float = 0.0
    total_requests: int = 0
    total_rejected: int = 0
    total_requested_gb: float = 0.0
    total_transit_gb: float = 0.0
    total_storage_gb_slots: float = 0.0
    #: request_id -> lateness in slots (0 = on time); all zeros unless a
    #: scheduler is buggy, since deadlines are hard constraints.
    lateness: Dict[int, int] = field(default_factory=dict)
    solve_seconds_total: float = 0.0
    #: Engine overhead (per-slot recording) summed over the run.
    overhead_seconds_total: float = 0.0
    #: Wall-clock seconds the post-run ledger audit took (0.0 when the
    #: run was not audited).
    audit_seconds: float = 0.0
    #: Per-charging-period bills when the run spans several periods
    #: (empty for the default single-period run).
    period_bills: List[float] = field(default_factory=list)
    #: Fraction of billable volume carried under already-paid peaks
    #: (the "time-shifting dividend"; see TrafficLedger.free_ride_fraction).
    free_ride_fraction: float = 0.0
    #: Surprise-failure accounting (all zero without surprise outages):
    #: total undelivered GB disrupted by unannounced failures, and its
    #: exhaustive split into salvaged and lost volume —
    #: ``disrupted_gb == salvaged_gb + lost_gb`` holds per run.
    disrupted_gb: float = 0.0
    salvaged_gb: float = 0.0
    lost_gb: float = 0.0
    #: Files that missed their deadline because recovery fell through
    #: to the recorded-SLO-violation tier.
    deadline_misses: int = 0
    #: Multi-source LP replans attempted by the recovery layer.
    recovery_replans: int = 0
    #: request ids whose SLO was violated (excluded from the audit's
    #: everyone-completes-or-is-rejected check).
    slo_violations: List[int] = field(default_factory=list)
    #: Hybrid-scheduler accounting (both zero for every other
    #: scheduler): slots escalated from the fast lane to the LP, and
    #: slots the fast lane handled end to end.
    escalations: int = 0
    fast_slots: int = 0
    #: :meth:`ForecastProvider.stats` snapshot when the run's scheduler
    #: had a forecast provider attached; ``None`` for reactive runs.
    forecast: Optional[Dict] = None

    # -- derived metrics -------------------------------------------------

    @property
    def acceptance_rate(self) -> float:
        if self.total_requests == 0:
            return 1.0
        return 1.0 - self.total_rejected / self.total_requests

    @property
    def relay_overhead(self) -> float:
        """Billable GB per requested GB (1.0 = everything went direct
        single-hop; higher = multi-hop relaying)."""
        if self.total_requested_gb == 0:
            return 0.0
        return self.total_transit_gb / self.total_requested_gb

    def cost_trajectory(self) -> np.ndarray:
        """cost-per-slot after each simulated slot (non-decreasing under
        100-th percentile billing)."""
        return np.asarray([r.cost_per_slot_after for r in self.slots])

    def max_lateness(self) -> int:
        return max(self.lateness.values(), default=0)

    @property
    def total_bill(self) -> float:
        """Sum of all period bills (multi-period runs only)."""
        return sum(self.period_bills)

    def rebilled_cost_per_slot(self, scheme: ChargingScheme, ledger) -> float:
        """Re-bill the run's recorded traffic under another scheme."""
        return ledger.cost_per_slot(scheme)

    @property
    def salvage_rate(self) -> float:
        """Fraction of disrupted volume recovered (1.0 when nothing
        was disrupted)."""
        if self.disrupted_gb <= 0:
            return 1.0
        return self.salvaged_gb / self.disrupted_gb

    def summary(self) -> str:
        text = (
            f"{self.scheduler_name}: cost/slot={self.final_cost_per_slot:.2f}, "
            f"files={self.total_requests} (rejected {self.total_rejected}), "
            f"relay overhead={self.relay_overhead:.2f}x, "
            f"storage={self.total_storage_gb_slots:.0f} GB-slots, "
            f"free-ride={self.free_ride_fraction:.0%}"
        )
        if self.disrupted_gb > 0:
            text += (
                f", disrupted={self.disrupted_gb:.1f} GB "
                f"(salvaged {self.salvaged_gb:.1f}, lost {self.lost_gb:.1f}, "
                f"{self.deadline_misses} misses)"
            )
        return text
