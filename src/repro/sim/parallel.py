"""Parallel seeded-run harness: fan comparison grids out to workers.

A comparison grid — ``runs`` seeds x N schedulers — is embarrassingly
parallel: every cell rebuilds its topology, workload, and fault model
from seeds and shares nothing with its neighbours.  This module turns
each cell into a picklable :class:`RunTask` executed by a worker
process, with three properties the test suite pins down:

* **Determinism** — a task carries only seeds and scheduler *names*
  (registry factories are lambdas and do not pickle); the worker
  rebuilds everything from those seeds, so the result of a cell is a
  pure function of the task.  Costs are identical for ``jobs=1``,
  ``jobs=4``, or the sequential :func:`~repro.sim.runner.run_comparison`
  loop, regardless of completion order.
* **Seeding parity** — the per-cell seeds are exactly the sequential
  driver's: topology ``base_seed + run``, workload
  ``base_seed + 1000 + run``, faults ``base_seed + run``.
* **Stable assembly** — worker results are reassembled in task order
  (run-major, scheduler-minor), so downstream aggregation sees the
  same list order the sequential loop would have produced.

``jobs <= 1`` executes the same tasks in-process, which keeps
debugging, profiling, and coverage simple.

History: introduced in PR 3 (fast-path scheduling) alongside the
incremental LP pipeline; PR 4 added the heuristic/hybrid schedulers to
the registry, so they fan out here like any other named scheduler (the
``escalations``/``fast_slots`` tallies ride back on the picklable
:class:`~repro.sim.metrics.SimulationResult`).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Simulation
from repro.sim.faults import FaultModel
from repro.sim.metrics import SimulationResult
from repro.sim.runner import ExperimentSetting, SchedulerComparison
from repro.net.generators import complete_topology, paper_topology
from repro.net.topology import Topology
from repro.traffic.workload import PaperWorkload

#: Topology families a task may name (must be rebuildable from seeds).
TOPOLOGY_PAPER = "paper"
TOPOLOGY_COMPLETE = "complete"


@dataclass(frozen=True)
class FaultSpec:
    """Picklable recipe for a seeded fault model.

    Workers rebuild the :class:`~repro.sim.faults.FaultModel` from this
    spec — either :meth:`FaultModel.random` over the task's topology
    (seeded, hence deterministic) or a JSON outage file via ``path``.
    ``announced=False`` demotes every outage to a surprise.
    """

    outage_probability: float = 0.15
    mean_duration: float = 2.0
    announced: bool = True
    path: Optional[str] = None

    def build(self, topology: Topology, num_slots: int, seed: int) -> FaultModel:
        if self.path is not None:
            faults = FaultModel.from_file(self.path)
            return faults.as_surprise() if not self.announced else faults
        return FaultModel.random(
            topology,
            num_slots,
            outage_probability=self.outage_probability,
            mean_duration=self.mean_duration,
            seed=seed,
            announced=self.announced,
        )


@dataclass(frozen=True)
class RunTask:
    """One (run index, scheduler) cell of a comparison grid.

    Carries scheduler *names* resolved against the registry inside the
    worker; factories themselves are typically lambdas and unpicklable.
    """

    setting: ExperimentSetting
    scheduler: str
    run: int
    base_seed: int = 0
    backend: Optional[str] = None
    audit: bool = True
    faults: Optional[FaultSpec] = None
    topology: str = TOPOLOGY_PAPER

    def __post_init__(self):
        if self.topology not in (TOPOLOGY_PAPER, TOPOLOGY_COMPLETE):
            raise SimulationError(
                f"unknown topology family {self.topology!r} "
                f"(use {TOPOLOGY_PAPER!r} or {TOPOLOGY_COMPLETE!r})"
            )


def execute_task(task: RunTask) -> Tuple[str, int, SimulationResult]:
    """Run one grid cell from scratch (module-level: workers pickle it).

    Seeding mirrors :func:`~repro.sim.runner.run_comparison` exactly so
    parallel and sequential drivers produce identical per-run results.
    """
    # Resolved here, not at import time, to avoid a registry import
    # cycle (registry -> core -> ... -> sim).
    from repro.registry import scheduler_factory

    setting = task.setting
    seed = task.base_seed + task.run
    if task.topology == TOPOLOGY_PAPER:
        topology = paper_topology(
            capacity=setting.capacity,
            num_datacenters=setting.num_datacenters,
            seed=seed,
        )
    else:
        topology = complete_topology(
            setting.num_datacenters, capacity=setting.capacity, seed=seed
        )
    workload = PaperWorkload(
        topology,
        max_deadline=setting.max_deadline,
        min_files=setting.min_files,
        max_files=setting.max_files,
        min_size=setting.min_size,
        max_size=setting.max_size,
        seed=task.base_seed + 1000 + task.run,
        deadline_distribution=setting.deadline_distribution,
        min_deadline=setting.min_deadline,
    )
    horizon = setting.num_slots + setting.max_deadline
    factory = scheduler_factory(task.scheduler)
    if task.backend is not None:
        scheduler = factory(topology, horizon, backend=task.backend)
    else:
        scheduler = factory(topology, horizon)
    if task.faults is not None:
        scheduler.state.fault_model = task.faults.build(
            topology, setting.num_slots, seed
        )
    result = Simulation(scheduler, workload, setting.num_slots).run(
        audit=task.audit
    )
    return task.scheduler, task.run, result


def _pool_context():
    """Fork when the platform has it (cheap, inherits the warmed-up
    interpreter); otherwise the default start method — every task is
    rebuilt from picklable specs, so spawn works identically."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_tasks(
    tasks: Sequence[RunTask], jobs: int = 1
) -> List[Tuple[str, int, SimulationResult]]:
    """Execute tasks, preserving input order in the returned list.

    ``jobs <= 1`` runs in-process; otherwise a process pool of ``jobs``
    workers.  ``Executor.map`` yields in submission order however the
    cells actually interleave, which is what makes downstream
    aggregation independent of scheduling noise.
    """
    if jobs < 0:
        raise SimulationError(f"jobs must be >= 0, got {jobs}")
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [execute_task(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context()
    ) as pool:
        return list(pool.map(execute_task, tasks))


def comparison_tasks(
    setting: ExperimentSetting,
    schedulers: Sequence[str],
    runs: int = 10,
    base_seed: int = 0,
    backend: Optional[str] = None,
    audit: bool = True,
    faults: Optional[FaultSpec] = None,
    topology: str = TOPOLOGY_PAPER,
) -> List[RunTask]:
    """The full grid in the sequential driver's iteration order
    (run-major, scheduler-minor)."""
    return [
        RunTask(
            setting=setting,
            scheduler=name,
            run=run,
            base_seed=base_seed,
            backend=backend,
            audit=audit,
            faults=faults,
            topology=topology,
        )
        for run in range(runs)
        for name in schedulers
    ]


def run_comparison_parallel(
    setting: ExperimentSetting,
    schedulers: Sequence[str],
    runs: int = 10,
    base_seed: int = 0,
    jobs: int = 1,
    backend: Optional[str] = None,
    audit: bool = True,
    faults: Optional[FaultSpec] = None,
    topology: str = TOPOLOGY_PAPER,
) -> SchedulerComparison:
    """Parallel counterpart of :func:`~repro.sim.runner.run_comparison`.

    Takes registry scheduler *names* instead of factories (tasks must
    pickle) and an optional :class:`FaultSpec` instead of a fault
    factory.  With default factories and the same seeds, the returned
    comparison carries cost lists identical to the sequential driver's
    for any job count.
    """
    tasks = comparison_tasks(
        setting,
        schedulers,
        runs=runs,
        base_seed=base_seed,
        backend=backend,
        audit=audit,
        faults=faults,
        topology=topology,
    )
    comparison = SchedulerComparison(setting=setting, runs=runs)
    for name, _run, result in run_tasks(tasks, jobs=jobs):
        comparison.costs.setdefault(name, []).append(result.final_cost_per_slot)
        comparison.results.setdefault(name, []).append(result)
    return comparison
