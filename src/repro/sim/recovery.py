"""Salvage-and-replan recovery from surprise link failures.

The paper's commit-once model plans on the network it can see; a
*surprise* outage (see :mod:`repro.sim.faults`) invalidates committed
transit at execution time.  This module is the machinery that turns
such an event into accounting instead of a crash:

1. **Detect**: every executed slot, committed transit entries riding a
   link-slot that is actually dead (``FaultModel.is_surprise_down``)
   are identified, and the covering outage is revealed so subsequent
   planning sees the broken circuit.
2. **Void**: the dead entries — and the disrupted file's entire
   not-yet-executed future plan, which was derived under assumptions
   that no longer hold — are refunded from the ledger and the charged
   peaks re-derived (:meth:`NetworkState.void_traffic`).
3. **Salvage**: the file's remaining supply distribution is
   reconstructed from its surviving executed entries (data parked at
   intermediate datacenters survives; data "on the wire" of the failed
   link-slot returns to its tail node) and re-admitted through the
   multi-source replan LP against its *original* deadline.  On
   infeasibility or solver failure the manager degrades to greedy
   direct routing from each supply node, and finally records an SLO
   violation (``lost_gb`` + a deadline miss) rather than raising.

Per run, ``salvaged_gb + lost_gb`` equals the total disrupted volume.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import InfeasibleError, RecoveryError, SolverError
from repro.core.replan import ActiveFile, solve_multisource_plan
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.obs import registry as obs
from repro.timeexp.graph import ArcKind
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL


@dataclass
class SlotDisruption:
    """What surprise failures did to one executed slot."""

    slot: int
    #: Undelivered GB of all files hit by a failure this slot.
    disrupted_gb: float = 0.0
    #: Of that, GB re-admitted and (re-)routed within the deadline.
    salvaged_gb: float = 0.0
    #: GB that no recovery strategy could deliver in time.
    lost_gb: float = 0.0
    #: Files whose SLO was violated this slot.
    deadline_misses: int = 0
    #: LP replans attempted this slot.
    replans: int = 0
    #: request ids of the disrupted files.
    files: List[int] = field(default_factory=list)

    @property
    def any(self) -> bool:
        return bool(self.files)


class RecoveryManager:
    """Execution-time failure detection and per-file salvage.

    The manager shadows the run: the engine feeds it every released
    request and every committed schedule (:meth:`observe`), and after
    each slot's commitment asks it to execute the slot against the
    ground-truth fault model (:meth:`execute_slot`).  All ledger
    surgery happens through the scheduler's own
    :class:`~repro.core.state.NetworkState`, so the post-run audit and
    billing see exactly what physically flowed.

    Schedulers that keep their own in-flight picture (the replanning
    scheduler) can expose a ``resupply(request, supplies, delivered)``
    hook; when present, the manager hands the reconstructed ground
    truth back to the scheduler instead of replanning itself, since the
    scheduler will re-derive a plan on its next slot anyway.
    """

    def __init__(self, scheduler, fault_model, backend: Optional[str] = None):
        self.scheduler = scheduler
        self.state = scheduler.state
        self.faults = fault_model
        self.backend = backend or getattr(scheduler, "backend", "highs")
        self._requests: Dict[int, TransferRequest] = {}
        #: Committed transit entries per file, including recovered ones.
        self._entries: Dict[int, List[ScheduleEntry]] = defaultdict(list)
        #: Transit entries indexed by execution slot (detection index).
        self._by_slot: Dict[int, List[ScheduleEntry]] = defaultdict(list)
        #: (request_id, src, dst, slot) of voided entries.
        self._voided: Set[tuple] = set()
        # Run totals (mirrored onto SimulationResult by the engine).
        self.disrupted_gb = 0.0
        self.salvaged_gb = 0.0
        self.lost_gb = 0.0
        self.deadline_misses = 0
        self.replans = 0
        self.slo_violations: List[int] = []

    # -- shadowing the run -------------------------------------------------

    def observe(
        self, slot: int, requests: List[TransferRequest], schedule: TransferSchedule
    ) -> None:
        """Log a slot's released files and committed transit entries."""
        for request in requests:
            self._requests[request.request_id] = request
        self._log_entries(schedule.transit_entries())

    def _log_entries(self, entries: List[ScheduleEntry]) -> None:
        for e in entries:
            self._entries[e.request_id].append(e)
            self._by_slot[e.slot].append(e)

    # -- the per-slot drill ------------------------------------------------

    def execute_slot(self, slot: int) -> SlotDisruption:
        """Detect, void, and salvage surprise failures hitting ``slot``."""
        report = SlotDisruption(slot=slot)
        # Ground-truth is_down, not is_surprise_down: an entry committed
        # *before* a reveal can ride a *later* slot of the same outage,
        # which is no longer "surprise" but still physically dead.
        # (Schedulers cannot commit onto visibly-down slots, so every
        # hit here was invisible at its own commit time.)
        dead = [
            e
            for e in self._by_slot.get(slot, ())
            if self._key(e) not in self._voided
            and self.faults.is_down(e.src, e.dst, e.slot)
        ]
        if not dead:
            return report

        with obs.span("sim.recovery", slot=slot, entries=len(dead)):
            for e in dead:
                self.faults.reveal(e.src, e.dst, e.slot)
            for rid in sorted({e.request_id for e in dead}):
                self._salvage_file(slot, rid, report)

        self.disrupted_gb += report.disrupted_gb
        self.salvaged_gb += report.salvaged_gb
        self.lost_gb += report.lost_gb
        self.deadline_misses += report.deadline_misses
        self.replans += report.replans
        return report

    def _key(self, e: ScheduleEntry) -> tuple:
        return (e.request_id, e.src, e.dst, e.slot)

    def _salvage_file(self, slot: int, rid: int, report: SlotDisruption) -> None:
        request = self._requests.get(rid)
        if request is None:
            raise RecoveryError(f"disrupted file {rid} was never released")

        # Void: this slot's dead arcs, plus the whole not-yet-executed
        # tail of the file's plan (it was derived pre-failure).
        kept: List[ScheduleEntry] = []
        for e in self._entries[rid]:
            if self._key(e) in self._voided:
                continue
            # Ground-truth is_down, not is_surprise_down: the covering
            # outage was already revealed by execute_slot, which would
            # make the dead arc look healthy again here.
            if e.slot > slot or (
                e.slot == slot and self.faults.is_down(e.src, e.dst, e.slot)
            ):
                self.state.void_traffic(e.src, e.dst, e.slot, e.volume)
                self._voided.add(self._key(e))
            else:
                kept.append(e)

        supplies, delivered = self._reconstruct(request, kept)
        remaining = max(0.0, request.size_gb - delivered)
        report.files.append(rid)
        if remaining <= max(VOLUME_ATOL, 1e-9 * request.size_gb):
            # The voided arcs carried only redundant tail volume; the
            # delivery already on record stands.
            return
        report.disrupted_gb += remaining
        self.state.completions.pop(rid, None)

        resupply = getattr(self.scheduler, "resupply", None)
        if resupply is not None:
            # The scheduler re-derives its whole plan next slot; handing
            # it the ground truth *is* the replan.
            resupply(request, supplies, delivered)
            report.salvaged_gb += remaining
            report.replans += 1
            obs.counter("recovery.replans")
            return

        if self._replan(slot, request, supplies, delivered, report):
            return
        self._greedy_direct(slot, request, supplies, delivered, report)

    def _reconstruct(self, request: TransferRequest, kept: List[ScheduleEntry]):
        """Where the file's data really sits after the void.

        Executed arcs move data tail -> head; everything else is still
        where an earlier slot left it (intermediate parking survives a
        failure elsewhere, and data "on the wire" of a voided arc never
        left its tail node).
        """
        supplies: Dict[int, float] = defaultdict(float)
        supplies[request.source] += request.size_gb
        for e in kept:
            supplies[e.src] -= e.volume
            supplies[e.dst] += e.volume
        tol = max(VOLUME_ATOL, 1e-9 * request.size_gb)
        for node, volume in supplies.items():
            if volume < -tol:
                raise RecoveryError(
                    f"file {request.request_id}: reconstructed supply at "
                    f"node {node} is negative ({volume:.6f} GB)"
                )
        delivered = supplies.pop(request.destination, 0.0)
        supplies = {n: v for n, v in supplies.items() if v > tol}
        return supplies, max(0.0, delivered)

    # -- recovery strategies, in degradation order --------------------------

    def _replan(self, slot, request, supplies, delivered, report) -> bool:
        """Multi-source LP replan against the original deadline."""
        start = slot + 1
        if start > request.last_slot or not supplies:
            return False
        file = ActiveFile(request, supplies=dict(supplies), delivered=delivered)
        report.replans += 1
        obs.counter("recovery.replans")
        try:
            plan, _ = solve_multisource_plan(
                self.state,
                start,
                [file],
                backend=self.backend,
                capacity_fn=self.state.residual_capacity,
                history_peak_fn=self.state.charged_volume,
                committed_fn=self.state.committed_volume,
                model_name=f"recover[{request.request_id}]",
            )
        except (InfeasibleError, SolverError):
            return False
        entries = []
        storage = 0.0
        for (rid, arc), volume in plan.items():
            if arc.kind is ArcKind.TRANSIT:
                entries.append(
                    ScheduleEntry(rid, arc.src, arc.dst, arc.slot, volume)
                )
            else:
                storage += volume
        self._commit(entries)
        self.state.storage_used += storage
        self._complete(request, delivered, entries)
        report.salvaged_gb += file.remaining
        return True

    def _greedy_direct(self, slot, request, supplies, delivered, report) -> None:
        """Last-resort routing: push each stranded supply straight to
        the destination over whatever residual capacity the remaining
        slots offer, deliberately ignoring cost.  Whatever does not fit
        is recorded as an SLO violation, never raised."""
        remaining = sum(supplies.values())
        entries: List[ScheduleEntry] = []
        moved = 0.0
        dest = request.destination
        for node in sorted(supplies):
            left = supplies[node]
            if not self.state.topology.has_link(node, dest):
                continue
            for n in range(slot + 1, request.last_slot + 1):
                if left <= VOLUME_ATOL:
                    break
                room = self.state.residual_capacity(node, dest, n)
                take = min(left, room)
                if take > VOLUME_ATOL:
                    entries.append(
                        ScheduleEntry(request.request_id, node, dest, n, take)
                    )
                    left -= take
                    moved += take
        self._commit(entries)
        shortfall = remaining - moved
        if shortfall <= max(VOLUME_ATOL, 1e-9 * request.size_gb):
            obs.counter("recovery.greedy_salvages")
            self._complete(request, delivered, entries)
            report.salvaged_gb += remaining
        else:
            obs.counter("recovery.slo_violations")
            report.salvaged_gb += moved
            report.lost_gb += shortfall
            report.deadline_misses += 1
            self.slo_violations.append(request.request_id)

    # -- committing recovered traffic ---------------------------------------

    def _commit(self, entries: List[ScheduleEntry]) -> None:
        """Record recovered transit in the ledger and raise the charged
        peaks, exactly as a scheduler commit would; the entries also
        join the shadow log so a *second* outage can disrupt them."""
        for e in entries:
            self.state.ledger.record(e.src, e.dst, e.slot, e.volume)
            level = self.state.ledger.volume(e.src, e.dst, e.slot)
            if level > self.state.charged_volume(e.src, e.dst):
                self.state._charged[(e.src, e.dst)] = level
        self._log_entries(entries)

    def _complete(self, request, delivered, entries) -> None:
        """Record the recovered file's new completion slot."""
        arrivals: Dict[int, float] = defaultdict(float)
        for e in entries:
            if e.dst == request.destination:
                arrivals[e.slot] += e.volume
            elif e.src == request.destination:
                arrivals[e.slot] -= e.volume
        cumulative = delivered
        tol = max(VOLUME_ATOL, 1e-9 * request.size_gb)
        for n in sorted(arrivals):
            cumulative += arrivals[n]
            if cumulative >= request.size_gb - tol:
                self.state.completions[request.request_id] = n
                return
        raise RecoveryError(
            f"file {request.request_id}: recovered plan delivers only "
            f"{cumulative:.6f} of {request.size_gb:.6f} GB"
        )
