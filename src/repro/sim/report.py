"""Assemble benchmark result records into a readable report.

Every figure benchmark appends a JSON line to
``benchmarks/results/<scale>.jsonl``; this module renders those records
as a Markdown document (the raw material for EXPERIMENTS.md) so that a
full paper-scale run can be turned into a results section with one
command: ``python -m repro report benchmarks/results/paper.jsonl``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import SimulationError

PathLike = Union[str, Path]


def load_records(path: PathLike) -> List[dict]:
    """Parse one results .jsonl file; skips blank lines, rejects junk."""
    records = []
    text = Path(path).read_text()
    for line_number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SimulationError(
                f"{path}:{line_number}: not valid JSON: {exc}"
            ) from exc
        if "figure" not in record or "means" not in record:
            raise SimulationError(
                f"{path}:{line_number}: not a benchmark record"
            )
        records.append(record)
    return records


def latest_per_figure(records: List[dict]) -> Dict[str, dict]:
    """Keep only each figure's last record (reruns overwrite)."""
    out: Dict[str, dict] = {}
    for record in records:
        out[record["figure"]] = record
    return out


def render_markdown(records: List[dict], title: str = "Benchmark results") -> str:
    """A Markdown report: one section per figure, means ± CI tables."""
    if not records:
        return f"# {title}\n\n(no records)\n"
    latest = latest_per_figure(records)
    lines = [f"# {title}", ""]
    for figure in sorted(latest):
        record = latest[figure]
        lines.append(f"## {figure}")
        lines.append("")
        lines.append(f"*Setting:* {record.get('setting', '(unknown)')}  ")
        lines.append(f"*Runs:* {record.get('runs', '?')}, scale `{record.get('scale', '?')}`")
        lines.append("")
        means = record["means"]
        half_widths = record.get("half_widths", {})
        rejected = record.get("rejected", {})
        salvaged = record.get("salvaged", {})
        lost = record.get("lost", {})
        chaos = bool(salvaged) or bool(lost)
        if chaos:
            lines.append(
                "| scheduler | cost/slot | 95% CI ± | rejected | salvaged GB | lost GB |"
            )
            lines.append(
                "|-----------|-----------|----------|----------|-------------|---------|"
            )
        else:
            lines.append("| scheduler | cost/slot | 95% CI ± | rejected |")
            lines.append("|-----------|-----------|----------|----------|")
        winner = min(means, key=means.get)
        for name in sorted(means, key=means.get):
            mark = " **(best)**" if name == winner else ""
            row = (
                f"| {name}{mark} | {means[name]:.2f} | "
                f"{half_widths.get(name, 0.0):.2f} | {rejected.get(name, 0)} |"
            )
            if chaos:
                row += (
                    f" {salvaged.get(name, 0.0):.1f} |"
                    f" {lost.get(name, 0.0):.1f} |"
                )
            lines.append(row)
        lines.append("")
    return "\n".join(lines)


def write_report(results_path: PathLike, output_path: PathLike) -> int:
    """Render a results file to Markdown; returns the record count."""
    records = load_records(results_path)
    Path(output_path).write_text(render_markdown(records))
    return len(records)
