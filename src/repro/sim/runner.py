"""The experiment driver regenerating the paper's figures.

Each of Figs. 4-7 is one :class:`ExperimentSetting` — a (capacity,
max-deadline) pair over the Sec. VII workload — run ``runs`` times with
different seeds for every scheduler under comparison, all schedulers
seeing identical topologies and traffic.  Results are aggregated as
mean cost per slot with 95% confidence intervals, exactly as the paper
reports them.

History: the seed PR introduced the sequential loop; PR 3 added the
``jobs=`` fan-out through :mod:`repro.sim.parallel`; PR 4 grew the
comparison table's on-demand columns for the heuristic/hybrid
schedulers (LP escalations vs. fast-lane slots).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.analysis.stats import ConfidenceInterval, mean_ci
from repro.analysis.tables import format_table
from repro.core.interfaces import Scheduler
from repro.net.generators import paper_topology
from repro.net.topology import Topology
from repro.sim.engine import Simulation
from repro.sim.metrics import SimulationResult
from repro.traffic.workload import PaperWorkload

SchedulerFactory = Callable[[Topology, int], Scheduler]


@dataclass(frozen=True)
class ExperimentSetting:
    """One evaluation setting of Sec. VII.

    Defaults are the paper's parameters; benches override
    ``num_datacenters``/``num_slots``/``max_files`` to laptop scale (the
    EXPERIMENTS.md notes record both scales).
    """

    name: str
    capacity: float
    max_deadline: int
    num_datacenters: int = 20
    num_slots: int = 100
    min_files: int = 1
    max_files: int = 20
    min_size: float = 10.0
    max_size: float = 100.0
    deadline_distribution: str = "fixed"
    min_deadline: int = 1

    def describe(self) -> str:
        return (
            f"{self.name}: c={self.capacity:g} GB/slot, max T={self.max_deadline}, "
            f"{self.num_datacenters} DCs, {self.num_slots} slots"
        )


#: The paper's four settings (Figs. 4-7).
FIG4 = ExperimentSetting("fig4", capacity=100.0, max_deadline=3)
FIG5 = ExperimentSetting("fig5", capacity=100.0, max_deadline=8)
FIG6 = ExperimentSetting("fig6", capacity=30.0, max_deadline=3)
FIG7 = ExperimentSetting("fig7", capacity=30.0, max_deadline=8)


@dataclass
class SchedulerComparison:
    """Aggregated comparison of several schedulers on one setting."""

    setting: ExperimentSetting
    runs: int
    #: scheduler name -> per-run final cost per slot.
    costs: Dict[str, List[float]] = field(default_factory=dict)
    #: scheduler name -> per-run results (for deeper inspection).
    results: Dict[str, List[SimulationResult]] = field(default_factory=dict)

    def interval(self, name: str, confidence: float = 0.95) -> ConfidenceInterval:
        return mean_ci(self.costs[name], confidence)

    def winner(self) -> str:
        """Scheduler with the lowest mean cost per slot."""
        return min(self.costs, key=lambda name: mean_ci(self.costs[name]).mean)

    def ratio(self, name_a: str, name_b: str) -> float:
        """mean(cost_a) / mean(cost_b)."""
        return mean_ci(self.costs[name_a]).mean / mean_ci(self.costs[name_b]).mean

    def to_table(self) -> str:
        """Paper-style comparison table.

        Columns appear on demand: salvage accounting columns when any
        run saw surprise-outage disruption, and an ``escalated`` column
        (LP-escalated slots / fast-lane slots, summed over runs) when a
        hybrid scheduler is in the comparison.
        """
        disrupted = any(
            r.disrupted_gb > 0
            for results in self.results.values()
            for r in results
        )
        hybrid = any(
            r.escalations + r.fast_slots > 0
            for results in self.results.values()
            for r in results
        )
        rows = []
        for name in self.costs:
            ci = self.interval(name)
            rejected = sum(r.total_rejected for r in self.results[name])
            row = [name, ci.mean, ci.half_width, rejected,
                   sum(r.solve_seconds_total for r in self.results[name])]
            if disrupted:
                row.extend(
                    [
                        f"{sum(r.salvaged_gb for r in self.results[name]):.1f}",
                        f"{sum(r.lost_gb for r in self.results[name]):.1f}",
                        sum(r.deadline_misses for r in self.results[name]),
                    ]
                )
            if hybrid:
                escalated = sum(r.escalations for r in self.results[name])
                fast = sum(r.fast_slots for r in self.results[name])
                row.append(f"{escalated}/{fast}" if escalated + fast else "-")
            rows.append(row)
        headers = ["scheduler", "cost/slot", "95% CI +/-", "rejected", "solve s"]
        if disrupted:
            headers.extend(["salvaged", "lost", "misses"])
        if hybrid:
            headers.append("esc/fast")
        return format_table(headers, rows)


def run_comparison(
    setting: ExperimentSetting,
    factories: Dict[str, SchedulerFactory],
    runs: int = 10,
    base_seed: int = 0,
    audit: bool = True,
    topology_factory=None,
    workload_factory=None,
    fault_factory=None,
    jobs: int = 1,
) -> SchedulerComparison:
    """Run every scheduler on ``runs`` seeded instances of a setting.

    Within one run index, all schedulers face the *same* topology and
    the *same* file arrivals; the charging horizon covers the simulated
    slots plus the longest deadline so period-straddling transfers are
    billed.

    ``topology_factory(setting, seed)`` and
    ``workload_factory(topology, setting, seed)`` override the default
    Sec. VII topology/workload, letting the same harness sweep other
    shapes (rings, geo presets, flash crowds, ...).

    ``fault_factory(topology, setting, seed)`` attaches a
    :class:`~repro.sim.faults.FaultModel` to every scheduler's state —
    one fresh instance per scheduler, so execution-time reveals of
    surprise outages never leak between competitors.  With surprise
    outages present, :meth:`SchedulerComparison.to_table` grows
    salvage columns.

    ``jobs > 1`` fans the grid out to worker processes through
    :mod:`repro.sim.parallel`.  Worker tasks must be rebuildable from
    seeds, so the parallel path requires every ``factories`` key to be
    a registered scheduler name and rejects the ``*_factory``
    overrides (use :class:`~repro.sim.parallel.FaultSpec` via
    :func:`~repro.sim.parallel.run_comparison_parallel` for seeded
    faults).  Results are bit-identical to the sequential loop.
    """
    if jobs > 1:
        from repro.errors import SimulationError
        from repro.sim.parallel import run_comparison_parallel

        if topology_factory or workload_factory or fault_factory:
            raise SimulationError(
                "jobs > 1 cannot ship factory callables to workers; "
                "run sequentially or use repro.sim.parallel directly"
            )
        from repro.registry import scheduler_names

        unknown = sorted(set(factories) - set(scheduler_names()))
        if unknown:
            raise SimulationError(
                f"jobs > 1 resolves schedulers by registry name; "
                f"unknown: {', '.join(unknown)}"
            )
        return run_comparison_parallel(
            setting,
            list(factories),
            runs=runs,
            base_seed=base_seed,
            jobs=jobs,
            audit=audit,
        )

    comparison = SchedulerComparison(setting=setting, runs=runs)
    horizon = setting.num_slots + setting.max_deadline

    for run in range(runs):
        if topology_factory is not None:
            topology = topology_factory(setting, base_seed + run)
        else:
            topology = paper_topology(
                capacity=setting.capacity,
                num_datacenters=setting.num_datacenters,
                seed=base_seed + run,
            )
        for name, factory in factories.items():
            if workload_factory is not None:
                workload = workload_factory(topology, setting, base_seed + 1000 + run)
            else:
                workload = PaperWorkload(
                    topology,
                    max_deadline=setting.max_deadline,
                    min_files=setting.min_files,
                    max_files=setting.max_files,
                    min_size=setting.min_size,
                    max_size=setting.max_size,
                    seed=base_seed + 1000 + run,
                    deadline_distribution=setting.deadline_distribution,
                    min_deadline=setting.min_deadline,
                )
            scheduler = factory(topology, horizon)
            if fault_factory is not None:
                scheduler.state.fault_model = fault_factory(
                    topology, setting, base_seed + run
                )
            result = Simulation(scheduler, workload, setting.num_slots).run(audit=audit)
            comparison.costs.setdefault(name, []).append(result.final_cost_per_slot)
            comparison.results.setdefault(name, []).append(result)

    return comparison
