"""Time-expanded graphs (Ford & Fulkerson, 1958; Sec. V of the paper).

A dynamic flow problem over slots ``[t, t + H]`` becomes a static flow
problem on a layered DAG: one copy of every datacenter per slot
boundary, a *transit arc* ``i^n -> j^{n+1}`` per overlay link and slot
(same capacity and price as the link), and a *holdover arc*
``i^n -> i^{n+1}`` per datacenter and slot with infinite capacity and
zero price — holding data at a datacenter is free.
"""

from repro.timeexp.cache import GraphCache
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph, TimeNode
from repro.timeexp.export import to_dot

__all__ = ["Arc", "ArcKind", "GraphCache", "TimeExpandedGraph", "TimeNode", "to_dot"]
