"""Incremental construction of consecutive time-expanded graphs.

The online controller rebuilds a :class:`TimeExpandedGraph` every slot,
but consecutive windows overlap in all but one layer: slot ``t``'s graph
spans ``[t, t + maxT)`` and slot ``t+1``'s spans ``[t+1, t+1 + maxT)``.
Worse, most per-slot arc sets are *identical* between builds — a
transit arc changes only when earlier commitments consumed residual
capacity on exactly that link-slot, and holdover arcs never change.

:class:`GraphCache` exploits this: it keeps the per-slot arc lists of
the last build and, on the next one, re-validates each cached transit
arc's capacity against the caller's ``capacity_fn``.  Unchanged arcs
are reused as-is (no allocation); changed ones are re-created with the
fresh capacity.  The resulting graph is **equal arc-for-arc** to a
from-scratch :class:`TimeExpandedGraph` over the same window — the
equivalence suite (``tests/test_compile_equivalence.py``) pins this.

Cache reuse is observable through the ``timeexp.cache.hit`` /
``timeexp.cache.refresh`` counters (arcs reused vs. rebuilt).

With a :class:`repro.net.schedule.LinkSchedule` attached, the cache
additionally tracks each scheduled link's **window epoch**: between
builds, only links whose windows actually changed are re-gated —
static schedules ride the bit-identical fast path at zero extra cost,
and a schedule mutation invalidates exactly the mutated links' arcs
(``timeexp.cache.window_invalidations`` counts them per build).

History: introduced in PR 3 (fast-path scheduling).  Because every
build re-validates each cached arc's capacity, the cache is also
correct under PR 4's hybrid scheduler, whose LP lane builds graphs
*sporadically* — only on escalated slots, with fast-lane commits
consuming capacity in between — rather than every slot.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import TopologyError
from repro.net.schedule import LinkSchedule
from repro.net.topology import LinkKey, Topology
from repro.obs import registry as obs
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph

CapacityFn = Callable[[int, int, int], float]


class GraphCache:
    """Builds time-expanded graphs, reusing arcs across consecutive calls.

    One cache serves one ``(topology, storage_capacity, include_holdover)``
    configuration — the same invariants a single scheduler holds for its
    whole run.  ``build`` is a drop-in replacement for the
    :class:`TimeExpandedGraph` constructor.
    """

    def __init__(
        self,
        topology: Topology,
        storage_capacity: float = float("inf"),
        include_holdover: bool = True,
        link_schedule: Optional[LinkSchedule] = None,
    ):
        self.topology = topology
        self.storage_capacity = storage_capacity
        self.include_holdover = include_holdover
        self.link_schedule = link_schedule
        #: Per scheduled link: its window epoch as of the previous
        #: build.  A link whose epoch is unchanged (and with no
        #: capacity_fn in play) keeps its cached arcs without even
        #: re-gating them; a mutated link is re-gated arc by arc.
        self._window_epochs: Dict[LinkKey, int] = {}
        self._prev_used_capacity_fn = False
        #: slot -> arc list in construction order (transit arcs in link
        #: order, then holdover arcs), as of the most recent build.
        self._slot_arcs: Dict[int, List[Arc]] = {}
        #: slot -> fast-assembler prepared tuples, valid exactly as long
        #: as the slot's arc list above is reused unchanged.  Handed to
        #: every built graph (see TimeExpandedGraph.assembly_prep).
        self._slot_prep: Dict[int, list] = {}
        #: Lifetime tallies (also mirrored to obs counters).
        self.reused_arcs = 0
        self.refreshed_arcs = 0

    def build(
        self,
        start_slot: int,
        horizon: int,
        capacity_fn: Optional[CapacityFn] = None,
    ) -> TimeExpandedGraph:
        """A graph over ``[start_slot, start_slot + horizon)`` slots.

        Equivalent to ``TimeExpandedGraph(topology, start_slot, horizon,
        capacity_fn, storage_capacity, include_holdover)`` — only faster
        when windows overlap with earlier builds.
        """
        if horizon < 1:
            raise TopologyError(f"horizon must be >= 1 slot, got {horizon}")
        if start_slot < 0:
            raise TopologyError(f"start_slot must be non-negative, got {start_slot}")
        changed_links = self._changed_window_links(capacity_fn)
        reused = refreshed = 0
        slot_arcs: Dict[int, List[Arc]] = {}
        for slot in range(start_slot, start_slot + horizon):
            cached = self._slot_arcs.get(slot)
            if cached is None:
                arcs = self._build_slot(slot, capacity_fn)
                refreshed += len(arcs)
            else:
                arcs, hits = self._refresh_slot(
                    slot, cached, capacity_fn, changed_links
                )
                reused += hits
                refreshed += len(arcs) - hits
            if arcs is not cached:
                self._slot_prep.pop(slot, None)
            slot_arcs[slot] = arcs
            self._slot_arcs[slot] = arcs
        # Drop slots that slid out of every plausible future window so a
        # long online run does not accumulate stale layers.
        for slot in [s for s in self._slot_arcs if s < start_slot]:
            del self._slot_arcs[slot]
            self._slot_prep.pop(slot, None)

        if self.link_schedule is not None:
            for link in self.topology.links:
                epoch = self.link_schedule.link_epoch(link.src, link.dst)
                if epoch:
                    self._window_epochs[link.key] = epoch
            if changed_links is not None:
                obs.counter(
                    "timeexp.cache.window_invalidations", len(changed_links)
                )
        self._prev_used_capacity_fn = capacity_fn is not None

        self.reused_arcs += reused
        self.refreshed_arcs += refreshed
        obs.counter("timeexp.cache.hit", reused)
        obs.counter("timeexp.cache.refresh", refreshed)
        graph = TimeExpandedGraph(
            self.topology,
            start_slot=start_slot,
            horizon=horizon,
            capacity_fn=capacity_fn,
            storage_capacity=self.storage_capacity,
            include_holdover=self.include_holdover,
            link_schedule=self.link_schedule,
            _slot_arcs=slot_arcs,
        )
        graph.assembly_prep = self._slot_prep
        return graph

    def _changed_window_links(
        self, capacity_fn: Optional[CapacityFn]
    ) -> Optional[frozenset]:
        """Links whose availability windows changed since the last build.

        Returns None when no schedule is attached (nothing to gate).
        The result feeds :meth:`_refresh_slot`'s fast path: with no
        ``capacity_fn`` in play, a cached arc of an *unchanged* link is
        reused without even re-deriving its gated capacity.  That skip
        is only sound when the previous build also ran without a
        ``capacity_fn`` (otherwise cached caps are residuals, not gated
        statics), so after a capacity_fn build every link counts as
        changed once.
        """
        if self.link_schedule is None:
            return None
        if capacity_fn is None and self._prev_used_capacity_fn:
            return frozenset(link.key for link in self.topology.links)
        return frozenset(
            link.key
            for link in self.topology.links
            if self.link_schedule.link_epoch(link.src, link.dst)
            != self._window_epochs.get(link.key, 0)
        )

    def invalidate(self) -> None:
        """Forget every cached arc (e.g. after a topology-level change
        such as a revealed outage making capacities jump discontinuously
        outside ``capacity_fn``'s own accounting)."""
        self._slot_arcs.clear()
        self._slot_prep.clear()
        self._window_epochs.clear()

    # -- internals -------------------------------------------------------

    def _transit_cap(
        self,
        src: int,
        dst: int,
        slot: int,
        capacity_fn: Optional[CapacityFn],
        static_cap: float,
    ) -> float:
        """Effective per-slot transit capacity, window-gated first."""
        if self.link_schedule is not None and not self.link_schedule.is_up(
            src, dst, slot
        ):
            return 0.0
        if capacity_fn is not None:
            return capacity_fn(src, dst, slot)
        return static_cap

    def _build_slot(self, slot: int, capacity_fn: Optional[CapacityFn]) -> List[Arc]:
        """Fresh arcs for one slot, in the canonical construction order."""
        arcs: List[Arc] = []
        for link in self.topology.links:
            cap = self._transit_cap(
                link.src, link.dst, slot, capacity_fn, link.capacity
            )
            if cap < 0:
                raise TopologyError(
                    f"negative residual capacity on ({link.src},{link.dst}) "
                    f"at slot {slot}"
                )
            arcs.append(
                Arc(link.src, link.dst, slot, ArcKind.TRANSIT, cap, link.price)
            )
        if self.include_holdover:
            for node_id in self.topology.node_ids():
                arcs.append(
                    Arc(node_id, node_id, slot, ArcKind.HOLDOVER,
                        self.storage_capacity, 0.0)
                )
        return arcs

    def _refresh_slot(
        self,
        slot: int,
        cached: List[Arc],
        capacity_fn: Optional[CapacityFn],
        changed_links: Optional[frozenset] = None,
    ) -> tuple:
        """Re-validate one cached slot; returns (arcs, reused_count).

        ``changed_links`` is the window-epoch delta from
        :meth:`_changed_window_links`: when no ``capacity_fn`` is in
        play, arcs of links *not* in the set are reused verbatim —
        their gated capacity cannot have moved since the last build.
        """
        hits = 0
        arcs = cached
        skip_unchanged = capacity_fn is None and changed_links is not None
        for i, arc in enumerate(cached):
            if arc.kind is ArcKind.HOLDOVER:
                hits += 1
                continue
            if skip_unchanged and arc.link_key not in changed_links:
                hits += 1
                continue
            cap = self._transit_cap(
                arc.src,
                arc.dst,
                slot,
                capacity_fn,
                self.topology.link(arc.src, arc.dst).capacity,
            )
            if cap == arc.capacity:
                hits += 1
                continue
            if cap < 0:
                raise TopologyError(
                    f"negative residual capacity on ({arc.src},{arc.dst}) "
                    f"at slot {slot}"
                )
            if arcs is cached:
                arcs = list(cached)
            arcs[i] = Arc(arc.src, arc.dst, slot, ArcKind.TRANSIT, cap, arc.price)
        return arcs, hits
