"""Incremental construction of consecutive time-expanded graphs.

The online controller rebuilds a :class:`TimeExpandedGraph` every slot,
but consecutive windows overlap in all but one layer: slot ``t``'s graph
spans ``[t, t + maxT)`` and slot ``t+1``'s spans ``[t+1, t+1 + maxT)``.
Worse, most per-slot arc sets are *identical* between builds — a
transit arc changes only when earlier commitments consumed residual
capacity on exactly that link-slot, and holdover arcs never change.

:class:`GraphCache` exploits this: it keeps the per-slot arc lists of
the last build and, on the next one, re-validates each cached transit
arc's capacity against the caller's ``capacity_fn``.  Unchanged arcs
are reused as-is (no allocation); changed ones are re-created with the
fresh capacity.  The resulting graph is **equal arc-for-arc** to a
from-scratch :class:`TimeExpandedGraph` over the same window — the
equivalence suite (``tests/test_compile_equivalence.py``) pins this.

Cache reuse is observable through the ``timeexp.cache.hit`` /
``timeexp.cache.refresh`` counters (arcs reused vs. rebuilt).

History: introduced in PR 3 (fast-path scheduling).  Because every
build re-validates each cached arc's capacity, the cache is also
correct under PR 4's hybrid scheduler, whose LP lane builds graphs
*sporadically* — only on escalated slots, with fast-lane commits
consuming capacity in between — rather than every slot.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import TopologyError
from repro.net.topology import Topology
from repro.obs import registry as obs
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph

CapacityFn = Callable[[int, int, int], float]


class GraphCache:
    """Builds time-expanded graphs, reusing arcs across consecutive calls.

    One cache serves one ``(topology, storage_capacity, include_holdover)``
    configuration — the same invariants a single scheduler holds for its
    whole run.  ``build`` is a drop-in replacement for the
    :class:`TimeExpandedGraph` constructor.
    """

    def __init__(
        self,
        topology: Topology,
        storage_capacity: float = float("inf"),
        include_holdover: bool = True,
    ):
        self.topology = topology
        self.storage_capacity = storage_capacity
        self.include_holdover = include_holdover
        #: slot -> arc list in construction order (transit arcs in link
        #: order, then holdover arcs), as of the most recent build.
        self._slot_arcs: Dict[int, List[Arc]] = {}
        #: slot -> fast-assembler prepared tuples, valid exactly as long
        #: as the slot's arc list above is reused unchanged.  Handed to
        #: every built graph (see TimeExpandedGraph.assembly_prep).
        self._slot_prep: Dict[int, list] = {}
        #: Lifetime tallies (also mirrored to obs counters).
        self.reused_arcs = 0
        self.refreshed_arcs = 0

    def build(
        self,
        start_slot: int,
        horizon: int,
        capacity_fn: Optional[CapacityFn] = None,
    ) -> TimeExpandedGraph:
        """A graph over ``[start_slot, start_slot + horizon)`` slots.

        Equivalent to ``TimeExpandedGraph(topology, start_slot, horizon,
        capacity_fn, storage_capacity, include_holdover)`` — only faster
        when windows overlap with earlier builds.
        """
        if horizon < 1:
            raise TopologyError(f"horizon must be >= 1 slot, got {horizon}")
        if start_slot < 0:
            raise TopologyError(f"start_slot must be non-negative, got {start_slot}")
        reused = refreshed = 0
        slot_arcs: Dict[int, List[Arc]] = {}
        for slot in range(start_slot, start_slot + horizon):
            cached = self._slot_arcs.get(slot)
            if cached is None:
                arcs = self._build_slot(slot, capacity_fn)
                refreshed += len(arcs)
            else:
                arcs, hits = self._refresh_slot(slot, cached, capacity_fn)
                reused += hits
                refreshed += len(arcs) - hits
            if arcs is not cached:
                self._slot_prep.pop(slot, None)
            slot_arcs[slot] = arcs
            self._slot_arcs[slot] = arcs
        # Drop slots that slid out of every plausible future window so a
        # long online run does not accumulate stale layers.
        for slot in [s for s in self._slot_arcs if s < start_slot]:
            del self._slot_arcs[slot]
            self._slot_prep.pop(slot, None)

        self.reused_arcs += reused
        self.refreshed_arcs += refreshed
        obs.counter("timeexp.cache.hit", reused)
        obs.counter("timeexp.cache.refresh", refreshed)
        graph = TimeExpandedGraph(
            self.topology,
            start_slot=start_slot,
            horizon=horizon,
            capacity_fn=capacity_fn,
            storage_capacity=self.storage_capacity,
            include_holdover=self.include_holdover,
            _slot_arcs=slot_arcs,
        )
        graph.assembly_prep = self._slot_prep
        return graph

    def invalidate(self) -> None:
        """Forget every cached arc (e.g. after a topology-level change
        such as a revealed outage making capacities jump discontinuously
        outside ``capacity_fn``'s own accounting)."""
        self._slot_arcs.clear()
        self._slot_prep.clear()

    # -- internals -------------------------------------------------------

    def _build_slot(self, slot: int, capacity_fn: Optional[CapacityFn]) -> List[Arc]:
        """Fresh arcs for one slot, in the canonical construction order."""
        arcs: List[Arc] = []
        for link in self.topology.links:
            cap = (
                capacity_fn(link.src, link.dst, slot)
                if capacity_fn is not None
                else link.capacity
            )
            if cap < 0:
                raise TopologyError(
                    f"negative residual capacity on ({link.src},{link.dst}) "
                    f"at slot {slot}"
                )
            arcs.append(
                Arc(link.src, link.dst, slot, ArcKind.TRANSIT, cap, link.price)
            )
        if self.include_holdover:
            for node_id in self.topology.node_ids():
                arcs.append(
                    Arc(node_id, node_id, slot, ArcKind.HOLDOVER,
                        self.storage_capacity, 0.0)
                )
        return arcs

    def _refresh_slot(
        self,
        slot: int,
        cached: List[Arc],
        capacity_fn: Optional[CapacityFn],
    ) -> tuple:
        """Re-validate one cached slot; returns (arcs, reused_count)."""
        hits = 0
        arcs = cached
        for i, arc in enumerate(cached):
            if arc.kind is ArcKind.HOLDOVER:
                hits += 1
                continue
            cap = (
                capacity_fn(arc.src, arc.dst, slot)
                if capacity_fn is not None
                else self.topology.link(arc.src, arc.dst).capacity
            )
            if cap == arc.capacity:
                hits += 1
                continue
            if cap < 0:
                raise TopologyError(
                    f"negative residual capacity on ({arc.src},{arc.dst}) "
                    f"at slot {slot}"
                )
            if arcs is cached:
                arcs = list(cached)
            arcs[i] = Arc(arc.src, arc.dst, slot, ArcKind.TRANSIT, cap, arc.price)
        return arcs, hits
