"""Graphviz (DOT) export of time-expanded graphs and schedules.

``to_dot`` renders the layered structure the way the paper's Fig. 3
draws it: one column of datacenter nodes per time layer, transit arcs
between columns, dashed holdover arcs along each row.  Passing a
schedule highlights the arcs it uses and annotates volumes, which makes
optimizer output reviewable by eye (``dot -Tsvg graph.dot``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.schedule import TransferSchedule
from repro.timeexp.graph import ArcKind, TimeExpandedGraph


def _node_id(datacenter: int, layer: int) -> str:
    return f"n{datacenter}_{layer}"


def to_dot(
    graph: TimeExpandedGraph,
    schedule: Optional[TransferSchedule] = None,
    title: str = "time-expanded graph",
    include_idle_arcs: bool = True,
) -> str:
    """Render the graph (and optionally a schedule) as a DOT document.

    ``include_idle_arcs=False`` draws only arcs the schedule uses,
    which keeps large graphs legible.
    """
    used: Dict[Tuple[int, int, int], float] = {}
    held: Dict[Tuple[int, int], float] = {}
    if schedule is not None:
        used = schedule.link_slot_volumes()
        held = schedule.storage_slot_volumes()

    lines = [
        "digraph timeexp {",
        "  rankdir=LR;",
        f'  label="{title}";',
        "  node [shape=circle, fontsize=10, width=0.45, fixedsize=true];",
    ]

    # One subgraph per layer pins the columns.
    for layer in graph.layers():
        lines.append(f"  subgraph cluster_t{layer} {{")
        lines.append(f'    label="t={layer}"; style=dashed; color=gray;')
        for node_id in graph.topology.node_ids():
            lines.append(f'    {_node_id(node_id, layer)} [label="{node_id}"];')
        lines.append("  }")

    for arc in graph.arcs:
        tail = _node_id(arc.src, arc.slot)
        head = _node_id(arc.dst, arc.slot + 1)
        if arc.kind is ArcKind.HOLDOVER:
            volume = held.get((arc.src, arc.slot), 0.0)
            if volume > 0:
                lines.append(
                    f'  {tail} -> {head} [style=dashed, color=blue, '
                    f'label="{volume:g}"];'
                )
            elif include_idle_arcs:
                lines.append(f"  {tail} -> {head} [style=dotted, color=gray];")
        else:
            volume = used.get((arc.src, arc.dst, arc.slot), 0.0)
            if volume > 0:
                lines.append(
                    f'  {tail} -> {head} [color=red, penwidth=2, '
                    f'label="{volume:g}@{arc.price:g}"];'
                )
            elif include_idle_arcs:
                lines.append(
                    f'  {tail} -> {head} [color=gray, label="{arc.price:g}"];'
                )

    lines.append("}")
    return "\n".join(lines)
