"""Construction and queries of the time-expanded graph."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import TopologyError
from repro.net.topology import Topology
from repro.obs import registry as obs
from repro.traffic.spec import TransferRequest

#: A time-expanded node: (datacenter id, layer index).  Layer ``n`` is
#: the instant at the *beginning* of slot ``n``; data moving during slot
#: ``n`` traverses an arc from layer ``n`` to layer ``n+1``.
TimeNode = Tuple[int, int]


class ArcKind(enum.Enum):
    """Transit arcs move data between datacenters; holdover arcs store it."""

    TRANSIT = "transit"
    HOLDOVER = "holdover"


@dataclass(frozen=True)
class Arc:
    """One arc of the time-expanded graph.

    ``slot`` is the time slot during which the arc carries data (the
    arc runs from layer ``slot`` to layer ``slot + 1``).  For transit
    arcs, ``capacity`` and ``price`` mirror the underlying overlay
    link; holdover arcs have infinite capacity and zero price.
    """

    src: int
    dst: int
    slot: int
    kind: ArcKind
    capacity: float
    price: float

    @property
    def tail(self) -> TimeNode:
        return (self.src, self.slot)

    @property
    def head(self) -> TimeNode:
        return (self.dst, self.slot + 1)

    @property
    def link_key(self) -> Tuple[int, int]:
        """The overlay-link key (src, dst); for holdover arcs src == dst."""
        return (self.src, self.dst)

    def __repr__(self) -> str:
        tag = "hold" if self.kind is ArcKind.HOLDOVER else "move"
        return f"Arc({self.src}^{self.slot} -> {self.dst}^{self.slot + 1}, {tag})"


class TimeExpandedGraph:
    """The layered DAG over slots ``[start_slot, start_slot + horizon]``.

    ``capacity_fn(src, dst, slot)`` optionally overrides per-slot transit
    capacities — the online controller passes residual capacities here
    so that previously committed traffic is respected.  Holdover
    storage is uncapacitated, matching the paper (datacenters have disk
    to spare relative to WAN bandwidth); pass ``storage_capacity`` to
    study the capacitated variant.

    ``link_schedule`` (a :class:`repro.net.schedule.LinkSchedule`)
    zeroes a transit arc's capacity whenever the underlying link is
    outside its availability windows, *before* any ``capacity_fn``
    override — a dark link has no capacity regardless of what the
    residual accounting says.  Holdover arcs are never gated: a dark
    window is precisely when store-and-forward holds data.
    """

    def __init__(
        self,
        topology: Topology,
        start_slot: int,
        horizon: int,
        capacity_fn: Optional[Callable[[int, int, int], float]] = None,
        storage_capacity: float = float("inf"),
        include_holdover: bool = True,
        link_schedule=None,
        _slot_arcs: Optional[Dict[int, List[Arc]]] = None,
    ):
        if horizon < 1:
            raise TopologyError(f"horizon must be >= 1 slot, got {horizon}")
        if start_slot < 0:
            raise TopologyError(f"start_slot must be non-negative, got {start_slot}")
        self.topology = topology
        self.start_slot = start_slot
        self.horizon = horizon
        self.include_holdover = include_holdover
        self.storage_capacity = storage_capacity
        self.link_schedule = link_schedule

        self.arcs: List[Arc] = []
        self._out: Dict[TimeNode, List[Arc]] = {}
        self._in: Dict[TimeNode, List[Arc]] = {}
        #: Arcs carrying data during each slot, in construction order
        #: (transit arcs in link order, then holdover arcs).  Lets
        #: per-request admissibility queries touch only the slots of the
        #: request's window instead of filtering every arc.
        self._by_slot: Dict[int, List[Arc]] = {}

        #: Per-slot scratch for the fast assembler's prepared-arc tuples
        #: (see ``repro.core.formulation``).  A :class:`GraphCache`
        #: replaces this with its own persistent dict so prepared slots
        #: survive across consecutive builds; entries are dropped there
        #: whenever a slot's arc list is refreshed.
        self.assembly_prep: Dict[int, list] = {}

        if _slot_arcs is not None:
            # Construction from a GraphCache's per-slot arc lists; the
            # cache has already validated capacities against capacity_fn.
            with obs.span("timeexp.build", horizon=horizon, cached=True):
                for slot in range(start_slot, start_slot + horizon):
                    for arc in _slot_arcs[slot]:
                        self._add_arc(arc)
                obs.counter("timeexp.nodes", self.num_nodes)
                obs.counter("timeexp.arcs", len(self.arcs))
            return

        with obs.span("timeexp.build", horizon=horizon):
            for slot in range(start_slot, start_slot + horizon):
                for link in topology.links:
                    if link_schedule is not None and not link_schedule.is_up(
                        link.src, link.dst, slot
                    ):
                        cap = 0.0
                    else:
                        cap = (
                            capacity_fn(link.src, link.dst, slot)
                            if capacity_fn is not None
                            else link.capacity
                        )
                    if cap < 0:
                        raise TopologyError(
                            f"negative residual capacity on ({link.src},{link.dst}) "
                            f"at slot {slot}"
                        )
                    self._add_arc(
                        Arc(link.src, link.dst, slot, ArcKind.TRANSIT, cap, link.price)
                    )
                if include_holdover:
                    for node_id in topology.node_ids():
                        self._add_arc(
                            Arc(node_id, node_id, slot, ArcKind.HOLDOVER, storage_capacity, 0.0)
                        )
            obs.counter("timeexp.nodes", self.num_nodes)
            obs.counter("timeexp.arcs", len(self.arcs))

    def _add_arc(self, arc: Arc) -> None:
        self.arcs.append(arc)
        self._out.setdefault(arc.tail, []).append(arc)
        self._in.setdefault(arc.head, []).append(arc)
        self._by_slot.setdefault(arc.slot, []).append(arc)

    # -- structure queries -------------------------------------------------

    @property
    def end_slot(self) -> int:
        """Index of the final layer."""
        return self.start_slot + self.horizon

    @property
    def num_layers(self) -> int:
        return self.horizon + 1

    def layers(self) -> range:
        """All layer indices, ``start_slot .. end_slot`` inclusive."""
        return range(self.start_slot, self.end_slot + 1)

    def slots(self) -> range:
        """All slot indices during which arcs carry data."""
        return range(self.start_slot, self.end_slot)

    def nodes(self) -> Iterator[TimeNode]:
        """All (datacenter, layer) nodes, layer by layer."""
        for layer in self.layers():
            for node_id in self.topology.node_ids():
                yield (node_id, layer)

    @property
    def num_nodes(self) -> int:
        return self.topology.num_datacenters * self.num_layers

    @property
    def num_arcs(self) -> int:
        return len(self.arcs)

    def out_arcs(self, node: TimeNode) -> List[Arc]:
        return list(self._out.get(node, []))

    def in_arcs(self, node: TimeNode) -> List[Arc]:
        return list(self._in.get(node, []))

    def transit_arcs(self) -> List[Arc]:
        return [a for a in self.arcs if a.kind is ArcKind.TRANSIT]

    def holdover_arcs(self) -> List[Arc]:
        return [a for a in self.arcs if a.kind is ArcKind.HOLDOVER]

    # -- per-request views ----------------------------------------------------

    def request_window(self, request: TransferRequest) -> Tuple[int, int]:
        """(first slot, last slot + 1) during which the file may move.

        Clipped to the graph's own span; raises if the request's window
        falls outside the graph entirely.
        """
        first = max(request.release_slot, self.start_slot)
        last_exclusive = min(request.release_slot + request.deadline_slots, self.end_slot)
        if first >= last_exclusive:
            raise TopologyError(
                f"request {request.request_id} window "
                f"[{request.release_slot}, {request.last_slot}] does not "
                f"intersect graph slots [{self.start_slot}, {self.end_slot - 1}]"
            )
        return first, last_exclusive

    def arcs_for_request(self, request: TransferRequest) -> List[Arc]:
        """Arcs admissible for a file: anything inside its time window
        (constraint (10) of the paper — no arcs after ``t + T_k``).

        Early arrivals reach the sink layer by riding the destination's
        free holdover arcs inside the window, so a file delivered ahead
        of its deadline incurs no extra cost.
        """
        first, last_exclusive = self.request_window(request)
        arcs: List[Arc] = []
        for slot in range(first, last_exclusive):
            arcs.extend(self._by_slot.get(slot, ()))
        return arcs

    def source_node(self, request: TransferRequest) -> TimeNode:
        first, _ = self.request_window(request)
        return (request.source, first)

    def sink_node(self, request: TransferRequest) -> TimeNode:
        """The delivery node ``d_k^{t + T_k}`` (clipped to the graph)."""
        _, last_exclusive = self.request_window(request)
        return (request.destination, last_exclusive)

    def __repr__(self) -> str:
        return (
            f"TimeExpandedGraph(slots=[{self.start_slot},{self.end_slot}), "
            f"nodes={self.num_nodes}, arcs={self.num_arcs})"
        )
