"""Transfer requests and workload generators."""

from repro.traffic.spec import TransferRequest, expand_multicast
from repro.traffic.workload import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    MergedWorkload,
    PaperWorkload,
    PoissonWorkload,
    TraceWorkload,
    Workload,
)
from repro.traffic.predictor import NoisyPreview

__all__ = [
    "TransferRequest",
    "expand_multicast",
    "Workload",
    "PaperWorkload",
    "DiurnalWorkload",
    "PoissonWorkload",
    "FlashCrowdWorkload",
    "MergedWorkload",
    "TraceWorkload",
    "NoisyPreview",
]
