"""Serialize workload traces and schedules to/from JSON.

Reproducibility glue: a simulation's exact file arrivals and the
schedule a solver produced can be written to disk, shared, and replayed
with :class:`~repro.traffic.workload.TraceWorkload`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.errors import WorkloadError
from repro.core.schedule import (
    SEMANTICS_FLUID,
    SEMANTICS_STORE_AND_FORWARD,
    ScheduleEntry,
    TransferSchedule,
)
from repro.timeexp.graph import ArcKind
from repro.traffic.spec import TransferRequest

PathLike = Union[str, Path]

_TRACE_VERSION = 1


def requests_to_json(requests: List[TransferRequest]) -> str:
    """Encode requests as a versioned JSON document."""
    payload = {
        "version": _TRACE_VERSION,
        "kind": "postcard-trace",
        "requests": [
            {
                "id": r.request_id,
                "source": r.source,
                "destination": r.destination,
                "size_gb": r.size_gb,
                "deadline_slots": r.deadline_slots,
                "release_slot": r.release_slot,
            }
            for r in requests
        ],
    }
    return json.dumps(payload, indent=2)


def requests_from_json(text: str) -> List[TransferRequest]:
    """Decode requests; fresh request ids are assigned (ids in the file
    are informational — uniqueness is owned by this process)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"trace is not valid JSON: {exc}") from exc
    if payload.get("kind") != "postcard-trace":
        raise WorkloadError("not a postcard trace document")
    if payload.get("version") != _TRACE_VERSION:
        raise WorkloadError(
            f"unsupported trace version {payload.get('version')!r}"
        )
    out = []
    for row in payload.get("requests", []):
        try:
            out.append(
                TransferRequest(
                    source=int(row["source"]),
                    destination=int(row["destination"]),
                    size_gb=float(row["size_gb"]),
                    deadline_slots=int(row["deadline_slots"]),
                    release_slot=int(row.get("release_slot", 0)),
                )
            )
        except KeyError as exc:
            raise WorkloadError(f"trace request missing field {exc}") from exc
    return out


def save_requests(requests: List[TransferRequest], path: PathLike) -> None:
    """Write a request trace to ``path`` as JSON."""
    Path(path).write_text(requests_to_json(requests))


def load_requests(path: PathLike) -> List[TransferRequest]:
    """Read a request trace from ``path`` (fresh ids are assigned)."""
    return requests_from_json(Path(path).read_text())


def schedule_to_json(schedule: TransferSchedule) -> str:
    """Encode a schedule (entries + semantics) as JSON."""
    payload = {
        "version": _TRACE_VERSION,
        "kind": "postcard-schedule",
        "semantics": schedule.semantics,
        "entries": [
            {
                "request_id": e.request_id,
                "src": e.src,
                "dst": e.dst,
                "slot": e.slot,
                "volume": e.volume,
                "kind": e.kind.value,
            }
            for e in schedule.entries
        ],
    }
    return json.dumps(payload, indent=2)


def schedule_from_json(text: str) -> TransferSchedule:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"schedule is not valid JSON: {exc}") from exc
    if payload.get("kind") != "postcard-schedule":
        raise WorkloadError("not a postcard schedule document")
    semantics = payload.get("semantics", SEMANTICS_STORE_AND_FORWARD)
    if semantics not in (SEMANTICS_STORE_AND_FORWARD, SEMANTICS_FLUID):
        raise WorkloadError(f"unknown schedule semantics {semantics!r}")
    entries = []
    for row in payload.get("entries", []):
        try:
            entries.append(
                ScheduleEntry(
                    request_id=int(row["request_id"]),
                    src=int(row["src"]),
                    dst=int(row["dst"]),
                    slot=int(row["slot"]),
                    volume=float(row["volume"]),
                    kind=ArcKind(row.get("kind", "transit")),
                )
            )
        except KeyError as exc:
            raise WorkloadError(f"schedule entry missing field {exc}") from exc
        except ValueError as exc:
            raise WorkloadError(str(exc)) from exc
    return TransferSchedule(entries, semantics=semantics)


def save_schedule(schedule: TransferSchedule, path: PathLike) -> None:
    """Write a schedule (entries + semantics) to ``path`` as JSON."""
    Path(path).write_text(schedule_to_json(schedule))


def load_schedule(path: PathLike) -> TransferSchedule:
    """Read a schedule previously written by :func:`save_schedule`."""
    return schedule_from_json(Path(path).read_text())


#: Generator family -> (class name, serialized parameter fields).  The
#: topology is *not* serialized — workloads are reconstructed against a
#: caller-supplied topology, mirroring how the generators are built.
_WORKLOAD_FAMILIES = {
    "paper": (
        "PaperWorkload",
        ("max_deadline", "min_files", "max_files", "min_size", "max_size",
         "seed", "deadline_distribution", "min_deadline"),
    ),
    "diurnal": (
        "DiurnalWorkload",
        ("max_deadline", "peak_files", "trough_files", "slots_per_day",
         "phase_slots", "min_size", "max_size", "seed"),
    ),
    "poisson": (
        "PoissonWorkload",
        ("max_deadline", "rate", "min_size", "max_size", "seed"),
    ),
    "flash_crowd": (
        "FlashCrowdWorkload",
        ("max_deadline", "base_rate", "burst_probability", "burst_files",
         "min_size", "max_size", "seed"),
    ),
}


def _workload_payload(workload) -> dict:
    from repro.traffic import workload as wl

    for family, (cls_name, params) in _WORKLOAD_FAMILIES.items():
        if type(workload) is getattr(wl, cls_name):
            return {
                "family": family,
                "params": {name: getattr(workload, name) for name in params},
            }
    if type(workload) is wl.MergedWorkload:
        return {
            "family": "merged",
            "components": [
                _workload_payload(c) for c in workload.components
            ],
        }
    raise WorkloadError(
        f"cannot serialize workload of type {type(workload).__name__}; "
        "supported: paper, diurnal, poisson, flash_crowd, merged"
    )


def workload_to_json(workload) -> str:
    """Encode a generator workload (family + parameters) as JSON.

    Covers the parametric families (and merges of them); an explicit
    :class:`~repro.traffic.workload.TraceWorkload` is a request list —
    serialize it with :func:`requests_to_json` instead.
    """
    payload = {
        "version": _TRACE_VERSION,
        "kind": "postcard-workload",
        **_workload_payload(workload),
    }
    return json.dumps(payload, indent=2)


def _workload_from_payload(payload: dict, topology):
    from repro.traffic import workload as wl

    family = payload.get("family")
    if family == "merged":
        return wl.MergedWorkload([
            _workload_from_payload(c, topology)
            for c in payload.get("components", [])
        ])
    if family not in _WORKLOAD_FAMILIES:
        raise WorkloadError(f"unknown workload family {family!r}")
    cls_name, params = _WORKLOAD_FAMILIES[family]
    given = payload.get("params", {})
    unknown = set(given) - set(params)
    if unknown:
        raise WorkloadError(
            f"workload family {family!r} has no parameters {sorted(unknown)}"
        )
    return getattr(wl, cls_name)(topology, **given)


def workload_from_json(text: str, topology):
    """Decode a workload document against ``topology``.

    The round-trip is exact: every serialized parameter (seed,
    seasonality period, phase) is restored, so the rebuilt generator
    releases bit-identical requests slot by slot.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"workload is not valid JSON: {exc}") from exc
    if payload.get("kind") != "postcard-workload":
        raise WorkloadError("not a postcard workload document")
    if payload.get("version") != _TRACE_VERSION:
        raise WorkloadError(
            f"unsupported workload version {payload.get('version')!r}"
        )
    return _workload_from_payload(payload, topology)


def save_workload(workload, path: PathLike) -> None:
    """Write a generator workload description to ``path`` as JSON."""
    Path(path).write_text(workload_to_json(workload))


def load_workload(path: PathLike, topology):
    """Read a workload written by :func:`save_workload`."""
    return workload_from_json(Path(path).read_text(), topology)
