"""Imperfect arrival predictors for lookahead scheduling.

:class:`~repro.core.lookahead.LookaheadPostcardScheduler` takes a
``preview(slot)`` oracle.  Feeding it the workload itself gives perfect
foresight; real predictors miss arrivals, hallucinate phantom ones, and
mis-estimate sizes.  :class:`NoisyPreview` wraps a workload with
exactly those error modes so robustness can be measured (the A6
ablation's perfect-oracle numbers are an upper bound on what prediction
can buy).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.net.topology import Topology
from repro.traffic.spec import TransferRequest
from repro.traffic.workload import Workload


class NoisyPreview:
    """A degraded view of a workload's future.

    Parameters
    ----------
    workload:
        The ground-truth arrival process.
    miss_rate:
        Probability that a real future file is absent from the preview.
    phantom_rate:
        Expected number of invented files per previewed slot (Poisson).
        Phantoms are drawn like the paper workload's files.
    size_noise:
        Relative standard deviation of multiplicative size error
        (e.g. 0.2 = sizes previewed within ~±20%).
    track_accuracy:
        Attach a :class:`~repro.forecast.ForecastScoreboard` so the
        synthetic preview reports the same rolling MAPE/bias numbers
        (and ``repro.obs`` counters) the learned predictors do; call
        :meth:`score` once per simulated slot to feed it.
    """

    def __init__(
        self,
        workload: Workload,
        topology: Topology,
        miss_rate: float = 0.0,
        phantom_rate: float = 0.0,
        size_noise: float = 0.0,
        max_deadline: int = 4,
        seed: Optional[int] = None,
        track_accuracy: bool = False,
        score_window: int = 96,
    ):
        if not 0.0 <= miss_rate <= 1.0:
            raise WorkloadError("miss_rate must be in [0, 1]")
        if phantom_rate < 0:
            raise WorkloadError("phantom_rate must be non-negative")
        if size_noise < 0:
            raise WorkloadError("size_noise must be non-negative")
        self.workload = workload
        self.topology = topology
        self.miss_rate = miss_rate
        self.phantom_rate = phantom_rate
        self.size_noise = size_noise
        self.max_deadline = max_deadline
        self.seed = seed if seed is not None else 0
        self._node_ids = topology.node_ids()
        self.scoreboard = None
        if track_accuracy:
            from repro.forecast import ForecastScoreboard

            self.scoreboard = ForecastScoreboard(
                window=score_window, name="preview"
            )

    def __call__(self, slot: int) -> List[TransferRequest]:
        """The degraded preview of ``slot``'s arrivals.

        Deterministic per (seed, slot), like the workloads themselves.
        Every returned request is a *fresh* object (fresh id): a
        preview must never alias the real file that later arrives.
        """
        rng = np.random.default_rng((self.seed, slot, 99))
        out: List[TransferRequest] = []
        for request in self.workload.requests_at(slot):
            if rng.random() < self.miss_rate:
                continue
            size = request.size_gb
            if self.size_noise > 0:
                size = max(0.1, size * float(rng.normal(1.0, self.size_noise)))
            out.append(
                TransferRequest(
                    request.source,
                    request.destination,
                    size,
                    request.deadline_slots,
                    release_slot=slot,
                )
            )
        if self.phantom_rate > 0:
            for _ in range(int(rng.poisson(self.phantom_rate))):
                src, dst = rng.choice(len(self._node_ids), size=2, replace=False)
                out.append(
                    TransferRequest(
                        self._node_ids[int(src)],
                        self._node_ids[int(dst)],
                        float(rng.uniform(10.0, 100.0)),
                        int(rng.integers(1, self.max_deadline + 1)),
                        release_slot=slot,
                    )
                )
        return out

    def score(self, slot: int):
        """Score ``slot``'s preview against the slot's real arrivals.

        Folds per-(source, destination) previewed vs actual GB into the
        shared scoreboard — misses show up as under-forecast bias,
        phantoms as over-forecast — and returns its summary dict.
        Requires ``track_accuracy=True``.
        """
        if self.scoreboard is None:
            raise WorkloadError(
                "construct NoisyPreview with track_accuracy=True to score"
            )
        predicted: dict = {}
        for request in self(slot):
            key = (request.source, request.destination)
            predicted[key] = predicted.get(key, 0.0) + request.size_gb
        actual: dict = {}
        for request in self.workload.requests_at(slot):
            key = (request.source, request.destination)
            actual[key] = actual.get(key, 0.0) + request.size_gb
        for key in sorted(set(predicted) | set(actual)):
            self.scoreboard.observe(
                key, predicted.get(key, 0.0), actual.get(key, 0.0)
            )
        return self.scoreboard.summary()
