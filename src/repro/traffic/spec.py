"""The paper's four-tuple file specification.

A *file* is any block of delay-tolerant inter-datacenter data — a
backup, a batch of MapReduce intermediates, a customer-data migration —
described by ``(s_k, d_k, F_k, T_k)``: source, destination, size in GB,
and maximum tolerable transfer time in whole slots.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.errors import WorkloadError

_request_ids = itertools.count()


def peek_next_request_id() -> int:
    """The id the next :class:`TransferRequest` will receive.

    Consumes nothing: the counter is advanced and immediately re-seeded.
    Checkpoint writers record this watermark so a restored process can
    keep its ids disjoint from the ones already in the snapshot.
    """
    global _request_ids
    value = next(_request_ids)
    _request_ids = itertools.count(value)
    return value


def ensure_request_ids_above(minimum: int) -> None:
    """Advance the process-local id counter to at least ``minimum``.

    Request ids are process-local; a state checkpoint restored into a
    fresh process carries completions keyed by the *old* process's ids.
    Restoring must bump the counter past the snapshot's watermark, or
    newly created requests would collide with restored accounting.
    """
    global _request_ids
    if peek_next_request_id() < minimum:
        _request_ids = itertools.count(minimum)


@dataclass(frozen=True)
class TransferRequest:
    """One inter-datacenter transfer: the paper's file ``k``.

    ``release_slot`` is the slot at which the file becomes known to the
    scheduler (the paper's time ``t``); the transfer must complete by
    the end of slot ``release_slot + deadline_slots - 1``, i.e. data may
    move during slots ``release_slot .. release_slot + deadline_slots - 1``.
    """

    source: int
    destination: int
    size_gb: float
    deadline_slots: int
    release_slot: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self):
        if self.source == self.destination:
            raise WorkloadError(
                f"request {self.request_id}: source equals destination ({self.source})"
            )
        if self.size_gb <= 0:
            raise WorkloadError(
                f"request {self.request_id}: size must be positive, got {self.size_gb}"
            )
        if self.deadline_slots < 1:
            raise WorkloadError(
                f"request {self.request_id}: deadline must be >= 1 slot, "
                f"got {self.deadline_slots}"
            )
        if self.release_slot < 0:
            raise WorkloadError(
                f"request {self.request_id}: release slot must be non-negative"
            )

    @property
    def last_slot(self) -> int:
        """Last slot during which this file's data may move."""
        return self.release_slot + self.deadline_slots - 1

    @property
    def desired_rate(self) -> float:
        """The flow-based model's rate: size spread evenly over the
        deadline (GB per slot)."""
        return self.size_gb / self.deadline_slots

    def with_release(self, release_slot: int) -> "TransferRequest":
        """Copy of this request released at a different slot."""
        return TransferRequest(
            source=self.source,
            destination=self.destination,
            size_gb=self.size_gb,
            deadline_slots=self.deadline_slots,
            release_slot=release_slot,
        )

    def __str__(self) -> str:
        return (
            f"file#{self.request_id} {self.source}->{self.destination} "
            f"{self.size_gb:g} GB within {self.deadline_slots} slots "
            f"(released t={self.release_slot})"
        )


def expand_multicast(
    source: int,
    destinations: Sequence[int],
    size_gb: float,
    deadline_slots: int,
    release_slot: int = 0,
) -> List[TransferRequest]:
    """One file to many destinations, as Sec. III prescribes: introduce a
    separate request per destination with identical size and deadline."""
    if not destinations:
        raise WorkloadError("multicast needs at least one destination")
    if len(set(destinations)) != len(destinations):
        raise WorkloadError("duplicate multicast destinations")
    return [
        TransferRequest(source, dst, size_gb, deadline_slots, release_slot)
        for dst in destinations
    ]


def split_oversized(
    request: TransferRequest, max_piece_gb: float
) -> List[TransferRequest]:
    """Split a file too large for one slot into same-deadline pieces.

    Implements the paper's note that files exceeding what a link can
    carry in one slot "can be divided into smaller pieces, each of which
    can be considered as a new file with the same four-tuple
    specification".
    """
    if max_piece_gb <= 0:
        raise WorkloadError("max piece size must be positive")
    if request.size_gb <= max_piece_gb:
        return [request]
    pieces: List[TransferRequest] = []
    remaining = request.size_gb
    while remaining > 1e-12:
        piece = min(max_piece_gb, remaining)
        pieces.append(
            TransferRequest(
                request.source,
                request.destination,
                piece,
                request.deadline_slots,
                request.release_slot,
            )
        )
        remaining -= piece
    return pieces
