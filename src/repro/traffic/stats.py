"""Offered-load statistics for workloads.

Benchmarks compare schedulers on the *same* traffic; these helpers
summarize what that traffic actually demands so tables can state load
alongside cost (GB per slot offered vs GB per slot of network
capacity, deadline mix, hottest pairs).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.net.topology import Topology
from repro.traffic.spec import TransferRequest
from repro.traffic.workload import Workload


@dataclass(frozen=True)
class WorkloadStats:
    """Summary of the files released during an observation window."""

    num_slots: int
    num_files: int
    total_gb: float
    #: Mean offered volume per slot (GB), counted at release time.
    offered_gb_per_slot: float
    #: Mean required rate per slot (GB/slot), size spread over deadline.
    required_rate_per_slot: float
    #: deadline (slots) -> file count.
    deadline_histogram: Dict[int, int]
    #: Most frequent (source, destination) pairs with their volumes.
    hottest_pairs: List[Tuple[Tuple[int, int], float]]

    def utilization_of(self, topology: Topology) -> float:
        """Required rate as a fraction of total network capacity."""
        capacity = sum(
            link.capacity for link in topology.links
            if link.capacity != float("inf")
        )
        if capacity <= 0:
            return 0.0
        return self.required_rate_per_slot / capacity

    def describe(self) -> str:
        deadline_text = ", ".join(
            f"T={t}: {count}" for t, count in sorted(self.deadline_histogram.items())
        )
        return (
            f"{self.num_files} files / {self.total_gb:.0f} GB over "
            f"{self.num_slots} slots ({self.offered_gb_per_slot:.1f} GB/slot "
            f"offered, {self.required_rate_per_slot:.1f} GB/slot required); "
            f"deadlines: {deadline_text}"
        )


def collect_stats(workload: Workload, num_slots: int) -> WorkloadStats:
    """Summarize ``workload`` over ``[0, num_slots)`` releases."""
    if num_slots < 1:
        raise WorkloadError("num_slots must be >= 1")
    requests = workload.all_requests(num_slots)
    total = sum(r.size_gb for r in requests)
    deadline_histogram: Counter = Counter(r.deadline_slots for r in requests)
    by_pair: Dict[Tuple[int, int], float] = defaultdict(float)
    rate = 0.0
    for request in requests:
        by_pair[(request.source, request.destination)] += request.size_gb
        rate += request.desired_rate
    hottest = sorted(by_pair.items(), key=lambda kv: -kv[1])[:5]
    return WorkloadStats(
        num_slots=num_slots,
        num_files=len(requests),
        total_gb=total,
        offered_gb_per_slot=total / num_slots,
        required_rate_per_slot=rate / num_slots,
        deadline_histogram=dict(deadline_histogram),
        hottest_pairs=hottest,
    )
