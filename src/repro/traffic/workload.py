"""Workload generators: which files arrive at which slot.

``PaperWorkload`` reproduces Sec. VII exactly: per slot, a uniform
1..20 files, each with uniform size 10..100 GB, uniform random distinct
source/destination, and a deadline drawn from 1..max_deadline slots.
The other generators exercise the system on more structured traffic.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.net.topology import Topology
from repro.traffic.spec import TransferRequest


class Workload(abc.ABC):
    """A source of transfer requests, indexed by slot."""

    @abc.abstractmethod
    def requests_at(self, slot: int) -> List[TransferRequest]:
        """Files released at the beginning of ``slot``."""

    def all_requests(self, num_slots: int) -> List[TransferRequest]:
        """All files released during ``[0, num_slots)``."""
        out: List[TransferRequest] = []
        for slot in range(num_slots):
            out.extend(self.requests_at(slot))
        return out


def _pick_pair(rng: np.random.Generator, node_ids: Sequence[int]) -> Tuple[int, int]:
    src, dst = rng.choice(len(node_ids), size=2, replace=False)
    return node_ids[int(src)], node_ids[int(dst)]


class PaperWorkload(Workload):
    """The Sec. VII synthetic workload.

    Per slot: ``U[min_files, max_files]`` files; each of size
    ``U[min_size, max_size]`` GB; source and destination uniform over
    distinct datacenters.  The paper parameterizes settings only by
    ``max_k T_k`` (3 or 8); ``deadline_distribution`` selects how the
    individual ``T_k`` relate to it:

    * ``"fixed"`` (default): every file gets ``T_k = max_deadline``.
      This keeps Postcard feasible in the limited-capacity settings (a
      100 GB file with ``T_k = 1`` cannot cross a 30 GB/slot network
      under store-and-forward semantics, where one slot means one hop).
    * ``"uniform"``: ``T_k ~ U[min_deadline, max_deadline]``.  The
      default ``min_deadline=1`` matches the paper's description most
      literally; the figure benchmarks use ``min_deadline=2`` so that
      the largest files stay deliverable under store-and-forward
      semantics in the limited-capacity settings (one slot = one hop,
      and a 100 GB file cannot cross a 30 GB/slot link in one slot).

    Deterministic per (seed, slot): asking for the same slot twice
    returns identical files, so schedulers under comparison see the
    same traffic.
    """

    def __init__(
        self,
        topology: Topology,
        max_deadline: int,
        min_files: int = 1,
        max_files: int = 20,
        min_size: float = 10.0,
        max_size: float = 100.0,
        seed: Optional[int] = None,
        deadline_distribution: str = "fixed",
        min_deadline: int = 1,
    ):
        if max_deadline < 1:
            raise WorkloadError("max_deadline must be >= 1")
        if not 1 <= min_deadline <= max_deadline:
            raise WorkloadError(
                f"need 1 <= min_deadline <= max_deadline, got {min_deadline}"
            )
        if deadline_distribution not in ("fixed", "uniform"):
            raise WorkloadError(
                f"unknown deadline distribution {deadline_distribution!r}"
            )
        if not 0 < min_files <= max_files:
            raise WorkloadError("need 0 < min_files <= max_files")
        if not 0 < min_size <= max_size:
            raise WorkloadError("need 0 < min_size <= max_size")
        if topology.num_datacenters < 2:
            raise WorkloadError("workload needs at least 2 datacenters")
        self.topology = topology
        self.max_deadline = max_deadline
        self.min_files = min_files
        self.max_files = max_files
        self.min_size = min_size
        self.max_size = max_size
        self.seed = seed if seed is not None else 0
        self.deadline_distribution = deadline_distribution
        self.min_deadline = min_deadline
        self._node_ids = topology.node_ids()

    def requests_at(self, slot: int) -> List[TransferRequest]:
        rng = np.random.default_rng((self.seed, slot))
        count = int(rng.integers(self.min_files, self.max_files + 1))
        requests = []
        for _ in range(count):
            src, dst = _pick_pair(rng, self._node_ids)
            size = float(rng.uniform(self.min_size, self.max_size))
            if self.deadline_distribution == "fixed":
                deadline = self.max_deadline
            else:
                deadline = int(
                    rng.integers(self.min_deadline, self.max_deadline + 1)
                )
            requests.append(
                TransferRequest(src, dst, size, deadline, release_slot=slot)
            )
        return requests


class DiurnalWorkload(Workload):
    """Traffic with the strong diurnal pattern of Chen et al. (2011).

    The per-slot file count follows a sinusoid with a 24-hour period:
    peak hours release ``peak_files`` files, troughs release
    ``trough_files``.  ``phase_slots`` shifts the peak, which lets two
    regions in different time zones be modeled with two workloads.
    """

    def __init__(
        self,
        topology: Topology,
        max_deadline: int,
        peak_files: int = 20,
        trough_files: int = 2,
        slots_per_day: int = 288,
        phase_slots: int = 0,
        min_size: float = 10.0,
        max_size: float = 100.0,
        seed: Optional[int] = None,
    ):
        if trough_files < 0 or peak_files < trough_files:
            raise WorkloadError("need 0 <= trough_files <= peak_files")
        if slots_per_day < 2:
            raise WorkloadError("slots_per_day must be >= 2")
        if max_deadline < 1:
            raise WorkloadError("max_deadline must be >= 1")
        self.topology = topology
        self.max_deadline = max_deadline
        self.peak_files = peak_files
        self.trough_files = trough_files
        self.slots_per_day = slots_per_day
        self.phase_slots = phase_slots
        self.min_size = min_size
        self.max_size = max_size
        self.seed = seed if seed is not None else 0
        self._node_ids = topology.node_ids()

    def intensity(self, slot: int) -> float:
        """Expected file count at ``slot`` (sinusoidal, period = 1 day)."""
        angle = 2.0 * np.pi * ((slot + self.phase_slots) % self.slots_per_day) / self.slots_per_day
        mid = (self.peak_files + self.trough_files) / 2.0
        amp = (self.peak_files - self.trough_files) / 2.0
        return mid + amp * np.sin(angle)

    def requests_at(self, slot: int) -> List[TransferRequest]:
        rng = np.random.default_rng((self.seed, slot))
        count = int(rng.poisson(self.intensity(slot)))
        requests = []
        for _ in range(count):
            src, dst = _pick_pair(rng, self._node_ids)
            size = float(rng.uniform(self.min_size, self.max_size))
            deadline = int(rng.integers(1, self.max_deadline + 1))
            requests.append(TransferRequest(src, dst, size, deadline, release_slot=slot))
        return requests


class PoissonWorkload(Workload):
    """Memoryless arrivals: Poisson(rate) files per slot."""

    def __init__(
        self,
        topology: Topology,
        max_deadline: int,
        rate: float = 5.0,
        min_size: float = 10.0,
        max_size: float = 100.0,
        seed: Optional[int] = None,
    ):
        if rate <= 0:
            raise WorkloadError("rate must be positive")
        if max_deadline < 1:
            raise WorkloadError("max_deadline must be >= 1")
        self.topology = topology
        self.max_deadline = max_deadline
        self.rate = rate
        self.min_size = min_size
        self.max_size = max_size
        self.seed = seed if seed is not None else 0
        self._node_ids = topology.node_ids()

    def requests_at(self, slot: int) -> List[TransferRequest]:
        rng = np.random.default_rng((self.seed, slot))
        count = int(rng.poisson(self.rate))
        requests = []
        for _ in range(count):
            src, dst = _pick_pair(rng, self._node_ids)
            size = float(rng.uniform(self.min_size, self.max_size))
            deadline = int(rng.integers(1, self.max_deadline + 1))
            requests.append(TransferRequest(src, dst, size, deadline, release_slot=slot))
        return requests


class FlashCrowdWorkload(Workload):
    """Quiet background traffic punctuated by correlated bursts.

    Most slots release ``Poisson(base_rate)`` ordinary files; with
    probability ``burst_probability`` a slot is a *flash crowd*: many
    files from many sources converge on one hot destination at once
    (a viral object being replicated, a failover re-sync).  Bursts are
    the adversarial case for percentile billing — they set link peaks
    that ordinary traffic then rides for free.
    """

    def __init__(
        self,
        topology: Topology,
        max_deadline: int,
        base_rate: float = 2.0,
        burst_probability: float = 0.1,
        burst_files: int = 10,
        min_size: float = 10.0,
        max_size: float = 100.0,
        seed: Optional[int] = None,
    ):
        if base_rate < 0:
            raise WorkloadError("base_rate must be non-negative")
        if not 0.0 <= burst_probability <= 1.0:
            raise WorkloadError("burst_probability must be in [0, 1]")
        if burst_files < 1:
            raise WorkloadError("burst_files must be >= 1")
        if max_deadline < 1:
            raise WorkloadError("max_deadline must be >= 1")
        self.topology = topology
        self.max_deadline = max_deadline
        self.base_rate = base_rate
        self.burst_probability = burst_probability
        self.burst_files = burst_files
        self.min_size = min_size
        self.max_size = max_size
        self.seed = seed if seed is not None else 0
        self._node_ids = topology.node_ids()

    def is_burst_slot(self, slot: int) -> bool:
        rng = np.random.default_rng((self.seed, slot, 1))
        return bool(rng.random() < self.burst_probability)

    def requests_at(self, slot: int) -> List[TransferRequest]:
        rng = np.random.default_rng((self.seed, slot, 2))
        requests = []
        for _ in range(int(rng.poisson(self.base_rate))):
            src, dst = _pick_pair(rng, self._node_ids)
            size = float(rng.uniform(self.min_size, self.max_size))
            deadline = int(rng.integers(1, self.max_deadline + 1))
            requests.append(TransferRequest(src, dst, size, deadline, release_slot=slot))
        if self.is_burst_slot(slot):
            hot = self._node_ids[int(rng.integers(0, len(self._node_ids)))]
            sources = [n for n in self._node_ids if n != hot]
            for _ in range(self.burst_files):
                src = sources[int(rng.integers(0, len(sources)))]
                size = float(rng.uniform(self.min_size, self.max_size))
                requests.append(
                    TransferRequest(
                        src, hot, size, self.max_deadline, release_slot=slot
                    )
                )
        return requests


class MergedWorkload(Workload):
    """Superimpose several arrival processes into one.

    Real networks carry mixtures — steady interactive traffic *plus*
    occasional flash crowds *plus* scheduled batch jobs.  Each slot's
    releases are the concatenation of every component's releases.
    """

    def __init__(self, components: List[Workload]):
        if not components:
            raise WorkloadError("MergedWorkload needs at least one component")
        self.components = list(components)

    def requests_at(self, slot: int) -> List[TransferRequest]:
        out: List[TransferRequest] = []
        for component in self.components:
            out.extend(component.requests_at(slot))
        return out


class TraceWorkload(Workload):
    """Replay an explicit list of requests (e.g. the paper's examples)."""

    def __init__(self, requests: Iterable[TransferRequest]):
        self._by_slot: Dict[int, List[TransferRequest]] = {}
        for req in requests:
            self._by_slot.setdefault(req.release_slot, []).append(req)

    def requests_at(self, slot: int) -> List[TransferRequest]:
        return list(self._by_slot.get(slot, []))

    @property
    def num_requests(self) -> int:
        return sum(len(v) for v in self._by_slot.values())
