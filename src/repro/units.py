"""Units and conventions used throughout the reproduction.

The paper measures traffic in gigabytes and time in 5-minute slots.  All
library code works in those units:

* volumes are in **GB**,
* per-slot link capacities are in **GB per slot** (the paper's
  ``c_ij * t_bar`` product),
* prices are in abstract **dollars per GB**, and
* time is an integer **slot index** (one slot = 5 minutes = 300 s).

This module centralizes the few conversion helpers so nothing else has
magic constants.
"""

from __future__ import annotations

#: Duration of one charging-scheme time interval, in seconds (the
#: paper's ``t_bar``; ISPs sample traffic every 5 minutes).
SLOT_SECONDS: float = 300.0

#: Number of slots in one day.
SLOTS_PER_DAY: int = 24 * 60 // 5

#: Number of slots in a 365-day charging period (the paper's example:
#: a one-year period has 105120 five-minute intervals).
SLOTS_PER_YEAR: int = 365 * SLOTS_PER_DAY

#: Absolute tolerance (in GB) below which traffic volumes are treated
#: as zero when auditing schedules.  LP solvers return values that are
#: only accurate to roughly this order.
VOLUME_ATOL: float = 1e-6


def gb_per_slot_from_gbps(gbps: float) -> float:
    """Convert a line rate in gigabits/second to GB per 5-minute slot.

    >>> round(gb_per_slot_from_gbps(9.6), 0)  # OC-192
    360.0
    """
    return gbps / 8.0 * SLOT_SECONDS


def gbps_from_gb_per_slot(gb_per_slot: float) -> float:
    """Convert a per-slot volume budget back to gigabits/second."""
    return gb_per_slot * 8.0 / SLOT_SECONDS


def slots_from_seconds(seconds: float) -> int:
    """Number of whole slots covering ``seconds`` (rounds up).

    >>> slots_from_seconds(900)   # the Fig. 1 example: 15 minutes
    3
    >>> slots_from_seconds(301)
    2
    """
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    whole, rem = divmod(seconds, SLOT_SECONDS)
    return int(whole) + (1 if rem > 0 else 0)


def percentile_slot_index(q: float, num_slots: int) -> int:
    """Index (0-based, in ascending sorted order) billed by a q-th
    percentile charging scheme over ``num_slots`` samples.

    Follows the ISP convention from Goldberg et al. (SIGCOMM'04) used in
    the paper: with q = 95 and a year of 5-minute samples the charged
    sample is the 99864-th (1-based) of 105120.

    >>> percentile_slot_index(95, 105120) + 1
    99864
    >>> percentile_slot_index(100, 100)
    99
    """
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    index = int(q / 100.0 * num_slots) - 1
    return max(0, min(index, num_slots - 1))
