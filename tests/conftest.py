"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.generators import (
    complete_topology,
    fig1_topology,
    fig3_topology,
    line_topology,
)
from repro.traffic.spec import TransferRequest


@pytest.fixture
def fig1():
    """The Fig. 1 motivating topology (3 DCs, infinite capacity)."""
    return fig1_topology()


@pytest.fixture
def fig3():
    """The Fig. 3 worked-example topology (4 DCs, capacity 5)."""
    return fig3_topology()


@pytest.fixture
def fig3_files():
    """The two files of the Fig. 3 example, released at t=3."""
    return [
        TransferRequest(2, 4, 8.0, 4, release_slot=3),
        TransferRequest(1, 4, 10.0, 2, release_slot=3),
    ]


@pytest.fixture
def small_complete():
    """A seeded 5-DC complete topology with moderate capacity."""
    return complete_topology(5, capacity=50.0, seed=42)


@pytest.fixture
def line3():
    """A 3-node bidirectional path A-B-C with capacity 10."""
    return line_topology(3, capacity=10.0)
