"""Hygiene tests on the public API surface."""

import importlib

import pytest

import repro


def test_all_names_are_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


def test_all_has_no_duplicates():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


SUBPACKAGES = [
    "repro.lp",
    "repro.lp.backends",
    "repro.net",
    "repro.charging",
    "repro.timeexp",
    "repro.traffic",
    "repro.core",
    "repro.flowbased",
    "repro.baselines",
    "repro.mcmf",
    "repro.extensions",
    "repro.sim",
    "repro.analysis",
    "repro.obs",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackages_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_every_public_symbol_documented():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not isinstance(obj, type):
            if not getattr(obj, "__doc__", None):
                undocumented.append(name)
        elif isinstance(obj, type):
            if not obj.__doc__:
                undocumented.append(name)
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_cli_reachable_via_dash_m(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["--help"])
    assert "simulate" in capsys.readouterr().out
