"""Unit + property tests for the subgradient dual lower bound."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import InfeasibleError, SchedulingError
from repro.core import build_postcard_model
from repro.core.bounds import dual_lower_bound, shortest_path_over_time
from repro.core.state import NetworkState
from repro.net.generators import complete_topology, fig1_topology, fig3_topology
from repro.timeexp import TimeExpandedGraph
from repro.traffic import TransferRequest


class TestShortestPathOverTime:
    def test_fig1_relay_path(self):
        topo = fig1_topology()
        graph = TimeExpandedGraph(topo, 0, 3)
        request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
        cost, arcs = shortest_path_over_time(
            graph, request, lambda a: a.price
        )
        # Cheapest per-GB route: 2 -> 1 -> 3 at 1 + 3 = 4.
        assert cost == pytest.approx(4.0)
        transit = [a for a in arcs if a.src != a.dst]
        assert [(a.src, a.dst) for a in transit] == [(2, 1), (1, 3)]

    def test_deadline_one_forces_direct(self):
        topo = fig1_topology()
        graph = TimeExpandedGraph(topo, 0, 3)
        request = TransferRequest(2, 3, 6.0, 1, release_slot=0)
        cost, _arcs = shortest_path_over_time(graph, request, lambda a: a.price)
        assert cost == pytest.approx(10.0)  # no time for the relay

    def test_unreachable_raises(self, line3):
        graph = TimeExpandedGraph(line3, 0, 4)
        request = TransferRequest(0, 2, 1.0, 1, release_slot=0)
        with pytest.raises(InfeasibleError):
            shortest_path_over_time(graph, request, lambda a: a.price)


class TestDualLowerBound:
    def test_validation(self, fig3):
        state = NetworkState(fig3, horizon=10)
        with pytest.raises(SchedulingError):
            dual_lower_bound(state, [])
        with pytest.raises(SchedulingError):
            dual_lower_bound(
                state, [TransferRequest(1, 4, 1.0, 2)], iterations=0
            )

    def test_bound_below_lp_optimum_fig3(self, fig3, fig3_files):
        state = NetworkState(fig3, horizon=100)
        result = dual_lower_bound(state, fig3_files, iterations=200)
        # The LP optimum is 98/3; the bound must stay below it and
        # climb meaningfully above the trivial 0.
        assert result.lower_bound <= 98.0 / 3.0 + 1e-6
        assert result.lower_bound > 0.3 * (98.0 / 3.0)

    def test_bound_improves_over_trivial_iterate(self, fig3, fig3_files):
        state = NetworkState(fig3, horizon=100)
        result = dual_lower_bound(state, fig3_files, iterations=100)
        assert result.lower_bound >= result.trajectory[0] - 1e-9

    def test_standing_cost_included(self, fig3):
        # With traffic already paid, even the first iterate includes it.
        state = NetworkState(fig3, horizon=100)
        from repro.core.schedule import ScheduleEntry, TransferSchedule

        r0 = TransferRequest(1, 4, 5.0, 1, release_slot=0)
        state.commit(
            TransferSchedule([ScheduleEntry(r0.request_id, 1, 4, 0, 5.0)]), [r0]
        )
        standing = state.current_cost_per_slot()
        request = TransferRequest(2, 4, 4.0, 3, release_slot=2)
        result = dual_lower_bound(state, [request], iterations=50)
        assert result.lower_bound >= standing - 1e-9


@st.composite
def instances(draw):
    num_dcs = draw(st.integers(3, 5))
    capacity = draw(st.sampled_from([20.0, 50.0]))
    seed = draw(st.integers(0, 20))
    count = draw(st.integers(1, 3))
    requests = []
    for _ in range(count):
        src = draw(st.integers(0, num_dcs - 1))
        dst = draw(st.integers(0, num_dcs - 1))
        if dst == src:
            dst = (src + 1) % num_dcs
        size = draw(st.integers(2, 30))
        deadline = draw(st.integers(2, 5))
        requests.append(TransferRequest(src, dst, float(size), deadline, release_slot=0))
    return num_dcs, capacity, seed, requests


@settings(max_examples=15, deadline=None)
@given(instances())
def test_weak_duality_always_holds(instance):
    """The certified bound never exceeds the LP optimum — on any
    instance, any iteration count."""
    num_dcs, capacity, seed, requests = instance
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)
    state = NetworkState(topo, horizon=30)
    try:
        _, solution = build_postcard_model(state, requests).solve()
    except InfeasibleError:
        assume(False)
        return
    result = dual_lower_bound(state, requests, iterations=60)
    assert result.lower_bound <= solution.objective + 1e-6
