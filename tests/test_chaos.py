"""Crash-fault injection drills and the recovery verifier."""

import pytest

from repro.errors import RecoveryVerifyError, ReproError, ServiceError
from repro.service import chaos
from repro.service.chaos import (
    DEFAULT_CRASH_POINTS,
    ChaosMonkey,
    InjectedCrash,
)
from repro.service.config import ServiceConfig
from repro.service.slotloop import TransferBroker
from repro.service.verify import verify_recovery


@pytest.fixture(autouse=True)
def disarm_everything():
    chaos.reset()
    yield
    chaos.reset()


# -- the monkey ------------------------------------------------------------


def test_injected_crash_is_not_a_repro_error():
    # An `except ReproError` handler must never swallow a drill crash.
    assert not issubclass(InjectedCrash, Exception)
    assert not issubclass(InjectedCrash, ReproError)


def test_arm_fires_on_nth_hit():
    monkey = ChaosMonkey()
    monkey.arm("p", action="raise", at=3)
    monkey.crashpoint("p")
    monkey.crashpoint("p")
    with pytest.raises(InjectedCrash, match="p"):
        monkey.crashpoint("p")
    assert monkey.fired("p") == 1
    monkey.crashpoint("p")  # past the trigger: quiet again
    monkey.disarm("p")
    assert not monkey.armed


def test_mangle_torn_and_enospc():
    monkey = ChaosMonkey()
    monkey.arm("w", action="torn", param=4)
    assert monkey.mangle("w", b"abcdefgh") == b"abcd"
    monkey.arm("w", action="enospc")
    with pytest.raises(OSError, match="No space left"):
        monkey.mangle("w", b"abcdefgh")
    # Unarmed points pass data through untouched.
    assert monkey.mangle("other", b"xy") == b"xy"


def test_configure_from_env(monkeypatch):
    monkey = ChaosMonkey()
    monkeypatch.setenv(
        "REPRO_CHAOS", "raise:wal.pre_fsync:2, hang:lp.escalate:1:0.5"
    )
    assert monkey.configure_from_env() == 2
    monkey.crashpoint("wal.pre_fsync")
    with pytest.raises(InjectedCrash):
        monkey.crashpoint("wal.pre_fsync")
    monkeypatch.setenv("REPRO_CHAOS", "justonepart")
    with pytest.raises(ServiceError, match="clause"):
        ChaosMonkey().configure_from_env()


def test_unknown_action_refused():
    with pytest.raises(ServiceError, match="unknown chaos action"):
        ChaosMonkey().arm("p", action="explode")


# -- the drills ------------------------------------------------------------


def test_crash_matrix_recovers_exactly(tmp_path):
    report = chaos.run_crash_matrix(str(tmp_path))
    assert report["ok"], report
    assert set(report["points"]) == set(DEFAULT_CRASH_POINTS)
    for point, entry in report["points"].items():
        assert entry["crashed"], f"{point} never fired"
        assert entry["books_equal"], f"{point} diverged: {entry}"
        assert entry["verifier"]["ok"]


def test_torn_and_corrupt_drill(tmp_path):
    report = chaos.run_torn_and_corrupt_drill(str(tmp_path))
    assert report["ok"], report
    assert report["cases"]["torn_wal_tail"]["recovery"]["torn_bytes"] > 0
    assert report["cases"]["corrupt_snapshot"]["recovery"]["fallbacks"] >= 1


def test_watchdog_drill_degrades_and_rearms(tmp_path):
    report = chaos.run_watchdog_drill(str(tmp_path))
    assert report["ok"], report
    assert report["degraded_slots"] >= 1
    assert report["first_slot_seconds"] < 0.5
    assert report["rearmed"]
    assert report["all_decided"]
    # The degrade is SLO-visible: budget 0 means the window breaches.
    assert report["slo"]["value"] >= 1.0
    assert report["slo"]["ok"] is False


# -- disk-full on the intake path ------------------------------------------


def _wal_broker(tmp_path):
    return TransferBroker(ServiceConfig(
        datacenters=4, capacity=50.0, seed=3, max_deadline=8,
        tick_seconds=0.0, checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_every=1, wal=True,
    ))


def test_disk_full_refuses_submission_cleanly(tmp_path):
    broker = _wal_broker(tmp_path)
    chaos.MONKEY.arm("wal.append", action="enospc")
    fields = {"id": "full-1", "source": 0, "destination": 2,
              "size_gb": 4.0, "deadline_slots": 3}
    with pytest.raises(ServiceError, match="cannot journal"):
        broker.submit(dict(fields))
    # The rollback is total: nothing queued, nothing counted.
    assert broker.queue.depth == 0
    assert broker.counts["submitted"] == 0
    chaos.reset()
    outcome, _ = broker.submit(dict(fields))
    assert outcome == "pending"
    broker.process_slot()
    assert broker.decisions["full-1"]["decision"] in ("admitted", "rejected")


# -- the verifier ----------------------------------------------------------


def test_verifier_passes_healthy_broker(tmp_path):
    broker = _wal_broker(tmp_path)
    broker.submit({"id": "v-1", "source": 0, "destination": 2,
                   "size_gb": 4.0, "deadline_slots": 3})
    broker.process_slot()
    report = verify_recovery(broker)
    assert report["ok"]
    assert set(report["checks"]) == {
        "ledger_conservation", "no_double_charge", "watermark_monotonic",
        "next_slot_consistent", "queue_bounded",
    }


def test_verifier_catches_double_charge(tmp_path):
    broker = _wal_broker(tmp_path)
    broker.submit({"id": "v-1", "source": 0, "destination": 2,
                   "size_gb": 4.0, "deadline_slots": 3})
    broker.process_slot()
    broker.counts["admitted"] += 1  # cook the books
    report = verify_recovery(broker, strict=False)
    assert not report["ok"]
    assert not report["checks"]["no_double_charge"]["ok"]
    with pytest.raises(RecoveryVerifyError, match="no_double_charge"):
        verify_recovery(broker, strict=True)


def test_verifier_catches_rewound_clock(tmp_path):
    broker = _wal_broker(tmp_path)
    broker.submit({"id": "v-1", "source": 0, "destination": 2,
                   "size_gb": 4.0, "deadline_slots": 3})
    broker.process_slot()
    broker.next_slot = 0  # a rewound clock would re-bill slot 0
    report = verify_recovery(broker, strict=False)
    assert not report["checks"]["next_slot_consistent"]["ok"]


def test_verifier_catches_ledger_drift(tmp_path):
    broker = _wal_broker(tmp_path)
    broker.submit({"id": "v-1", "source": 0, "destination": 2,
                   "size_gb": 4.0, "deadline_slots": 3})
    broker.process_slot()
    link = next(iter(broker.state.ledger.used_links()))
    broker.state._charged[link] = broker.state._charged.get(link, 0.0) + 5.0
    report = verify_recovery(broker, strict=False)
    assert not report["checks"]["ledger_conservation"]["ok"]
