"""Unit tests for NetworkState checkpointing."""

import pytest

from repro.errors import SchedulingError
from repro.core import PostcardScheduler
from repro.core.checkpoint import (
    load_state,
    save_state,
    state_from_json,
    state_to_json,
)
from repro.core.state import NetworkState
from repro.net.generators import complete_topology, line_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TransferRequest


def warmed_state():
    topo = complete_topology(5, capacity=30.0, seed=19)
    scheduler = PostcardScheduler(topo, horizon=30, on_infeasible="drop")
    workload = PaperWorkload(topo, max_deadline=4, max_files=3, seed=9)
    Simulation(scheduler, workload, num_slots=5).run()
    return topo, scheduler.state


def test_round_trip_preserves_accounting():
    topo, original = warmed_state()
    restored = state_from_json(state_to_json(original), topo)

    assert restored.horizon == original.horizon
    assert restored.charged_snapshot() == original.charged_snapshot()
    assert restored.completions == original.completions
    assert restored.storage_used == pytest.approx(original.storage_used)
    assert restored.current_cost_per_slot() == pytest.approx(
        original.current_cost_per_slot()
    )
    for link in topo.links:
        for slot in range(10):
            assert restored.ledger.volume(
                link.src, link.dst, slot
            ) == pytest.approx(original.ledger.volume(link.src, link.dst, slot))


def test_resume_scheduling_after_restore():
    """A restored state accepts new rounds exactly like the original:
    same residuals, same paid headroom, same resulting cost."""
    topo, original = warmed_state()
    restored = state_from_json(state_to_json(original), topo)

    request = TransferRequest(0, 1, 12.0, 3, release_slot=10)
    from repro.core import build_postcard_model

    _, sol_orig = build_postcard_model(original, [request.with_release(10)]).solve()
    _, sol_rest = build_postcard_model(restored, [request.with_release(10)]).solve()
    assert sol_orig.objective == pytest.approx(sol_rest.objective)


def test_file_round_trip(tmp_path):
    topo, original = warmed_state()
    path = tmp_path / "state.json"
    save_state(original, path)
    restored = load_state(path, topo)
    assert restored.current_cost_per_slot() == pytest.approx(
        original.current_cost_per_slot()
    )


def test_topology_mismatch_rejected(line3):
    topo, original = warmed_state()
    text = state_to_json(original)
    with pytest.raises(SchedulingError, match="topology"):
        state_from_json(text, line3)


def test_garbage_rejected(line3):
    with pytest.raises(SchedulingError, match="JSON"):
        state_from_json("{oops", line3)
    with pytest.raises(SchedulingError, match="not a postcard state"):
        state_from_json('{"kind": "postcard-trace"}', line3)
    with pytest.raises(SchedulingError, match="version"):
        state_from_json(
            '{"kind": "postcard-state", "version": 9}', line3
        )


def test_period_bookkeeping_survives():
    topo, state = warmed_state()
    state.start_new_period(8)
    restored = state_from_json(state_to_json(state), topo)
    assert restored.period_start == 8
    assert restored.banked_period_bills == pytest.approx(state.banked_period_bills)


def test_mid_run_resume_under_active_faults():
    """Checkpoint/restore in the middle of a run with a surprise outage
    in the resumed half: bills, completions, and salvage counters all
    match the uninterrupted run.

    The outage is confined to the resumed window and disrupts a file
    *released* there (the recovery shadow log is in-memory state, not
    part of a checkpoint, so only post-resume commitments can be
    salvaged after a restore).
    """
    from repro.core.scheduler import PostcardScheduler as PS
    from repro.sim import FaultModel, Outage
    from repro.traffic.workload import TraceWorkload

    topo = line_topology(3, capacity=10.0)
    # Shared request objects: both runs see identical request_ids.
    early = TransferRequest(0, 1, 6.0, 3, release_slot=0)
    late = TransferRequest(0, 1, 6.0, 4, release_slot=4)
    workload = TraceWorkload([early, late])
    faults = FaultModel([Outage(0, 1, 4, 5, announced=False)])
    split = 4

    def fresh(state=None):
        scheduler = PS(topo, horizon=14, on_infeasible="drop")
        if state is not None:
            scheduler._state = state
        scheduler.state.fault_model = faults.copy()
        return scheduler

    # Uninterrupted reference run.
    full_sched = fresh()
    full = Simulation(full_sched, workload, num_slots=10).run()
    assert full.disrupted_gb > 0  # the outage really bites

    # Interrupted run: first half, checkpoint, restore, second half.
    first_sched = fresh()
    Simulation(first_sched, workload, num_slots=split).run()
    restored = state_from_json(state_to_json(first_sched.state), topo)
    second_sched = fresh(state=restored)
    second = Simulation(
        second_sched, workload, num_slots=10, start_slot=split
    ).run()

    assert second_sched.state.completions == full_sched.state.completions
    assert second_sched.state.charged_snapshot() == pytest.approx(
        full_sched.state.charged_snapshot()
    )
    assert second_sched.state.current_cost_per_slot() == pytest.approx(
        full_sched.state.current_cost_per_slot()
    )
    for link in topo.links:
        for slot in range(14):
            assert second_sched.state.ledger.volume(
                link.src, link.dst, slot
            ) == pytest.approx(
                full_sched.state.ledger.volume(link.src, link.dst, slot)
            )
    # Salvage accounting of the resumed half equals the full run's.
    assert second.disrupted_gb == pytest.approx(full.disrupted_gb)
    assert second.salvaged_gb == pytest.approx(full.salvaged_gb)
    assert second.lost_gb == pytest.approx(full.lost_gb)
    assert second.deadline_misses == full.deadline_misses


def test_mid_period_resume_with_in_flight_holdover():
    """Checkpoint while store-and-forward volume is parked mid-path.

    A 0->2 transfer on a line topology must hold over at datacenter 1:
    hop 0->1 moves in slot 0, the file sits in storage across the slot
    boundary, hop 1->2 moves later.  Snapshotting *between* the hops is
    the case the service daemon lives or dies by — the restored state
    must carry the future ledger commitment, the holdover storage, and
    the charged volume, so the second hop happens (and bills) exactly
    as if the process had never died.
    """
    topo = line_topology(3, capacity=10.0)
    request = TransferRequest(0, 2, 6.0, 3, release_slot=0)
    scheduler = PostcardScheduler(topo, horizon=10, on_infeasible="drop")
    scheduler.on_slot(0, [request])
    original = scheduler.state

    # The plan really is in flight: hop 2 is committed beyond slot 0.
    later_volume = sum(
        original.ledger.volume(1, 2, slot) for slot in range(1, 10)
    )
    assert later_volume == pytest.approx(6.0)
    assert original.completions[request.request_id] >= 1

    restored = state_from_json(state_to_json(original), topo)
    assert restored.charged_snapshot() == pytest.approx(
        original.charged_snapshot()
    )
    assert restored.storage_used == pytest.approx(original.storage_used)
    for slot in range(10):
        assert restored.ledger.volume(1, 2, slot) == pytest.approx(
            original.ledger.volume(1, 2, slot)
        )
    # The resumed process keeps scheduling on top of the in-flight
    # volume with the same marginal costs as the uninterrupted one.
    follow_up = TransferRequest(0, 2, 4.0, 3, release_slot=2)
    resumed = PostcardScheduler(topo, horizon=10, on_infeasible="drop")
    resumed.adopt_state(restored)
    resumed.on_slot(2, [follow_up.with_release(2)])
    reference = PostcardScheduler(topo, horizon=10, on_infeasible="drop")
    reference.adopt_state(original)
    reference.on_slot(2, [follow_up.with_release(2)])
    assert resumed.state.charged_snapshot() == pytest.approx(
        reference.state.charged_snapshot()
    )
    assert resumed.state.current_cost_per_slot() == pytest.approx(
        reference.state.current_cost_per_slot()
    )


def test_service_snapshot_round_trip(tmp_path):
    """The daemon's snapshot carries queue + clock + id watermark."""
    from repro.core.checkpoint import load_snapshot, save_snapshot
    from repro.traffic.spec import peek_next_request_id

    topo = line_topology(3, capacity=10.0)
    scheduler = PostcardScheduler(topo, horizon=10, on_infeasible="drop")
    request = TransferRequest(0, 2, 6.0, 3, release_slot=0)
    scheduler.on_slot(0, [request])
    pending = [
        {"id": "c-7", "source": 0, "destination": 2, "size_gb": 2.5,
         "deadline_slots": 4}
    ]
    path = tmp_path / "snapshot.json"
    save_snapshot(
        scheduler.state, path, pending, next_slot=1, meta={"counts": {"slots": 1}}
    )
    snapshot = load_snapshot(path, topo)
    assert snapshot.next_slot == 1
    assert snapshot.pending == pending
    assert snapshot.meta["counts"]["slots"] == 1
    assert snapshot.state.charged_snapshot() == pytest.approx(
        scheduler.state.charged_snapshot()
    )
    # Restore advanced the process-local id counter past every id the
    # snapshot's completions reference — new requests cannot collide.
    assert peek_next_request_id() > max(scheduler.state.completions)


def test_snapshot_rejects_garbage(line3):
    from repro.errors import SchedulingError
    from repro.core.checkpoint import snapshot_from_json

    with pytest.raises(SchedulingError, match="JSON"):
        snapshot_from_json("{oops", line3)
    with pytest.raises(SchedulingError, match="service snapshot"):
        snapshot_from_json('{"kind": "postcard-state"}', line3)
    with pytest.raises(SchedulingError, match="version"):
        snapshot_from_json('{"kind": "postcard-snapshot", "version": 9}', line3)


def test_rejections_survive_with_fresh_ids():
    topo = line_topology(3, capacity=10.0)
    state = NetworkState(topo, horizon=10)
    state.reject(TransferRequest(0, 2, 1.0, 1, release_slot=0))
    restored = state_from_json(state_to_json(state), topo)
    assert len(restored.rejected) == 1
    assert restored.rejected[0].source == 0
    assert restored.rejected[0].request_id != state.rejected[0].request_id


def test_snapshot_header_carries_version_and_checksum():
    """Version-2 snapshots self-describe and self-verify (PR 7)."""
    import json

    from repro.core.checkpoint import snapshot_to_json

    topo = line_topology(3, capacity=10.0)
    payload = json.loads(snapshot_to_json(NetworkState(topo, horizon=10)))
    assert payload["version"] == 2
    assert isinstance(payload["checksum"], int)


def test_snapshot_checksum_mismatch_rejected(line3):
    import json

    from repro.core.checkpoint import snapshot_from_json, snapshot_to_json

    payload = json.loads(snapshot_to_json(NetworkState(line3, horizon=10)))
    payload["next_slot"] = 41  # tamper without re-checksumming
    with pytest.raises(SchedulingError, match="checksum mismatch"):
        snapshot_from_json(json.dumps(payload), line3)


def test_version_1_snapshot_still_loads(line3):
    """Pre-checksum snapshots (no ``checksum`` field) remain readable."""
    import json

    from repro.core.checkpoint import snapshot_from_json, snapshot_to_json

    payload = json.loads(snapshot_to_json(NetworkState(line3, horizon=10)))
    payload["version"] = 1
    del payload["checksum"]
    snapshot = snapshot_from_json(json.dumps(payload), line3)
    assert snapshot.next_slot == 0


def test_atomic_write_durability_hooks(tmp_path):
    """atomic_write walks every crash boundary in order, then lands."""
    from repro.core.checkpoint import atomic_write

    stages = []
    target = tmp_path / "out.json"
    n = atomic_write(target, '{"x": 1}', crashpoint=stages.append)
    assert stages == [
        "checkpoint.pre_write", "checkpoint.pre_fsync",
        "checkpoint.pre_rename", "checkpoint.post_rename",
    ]
    assert n == len('{"x": 1}')
    assert target.read_text() == '{"x": 1}'
    assert not target.with_name(target.name + ".tmp").exists()
