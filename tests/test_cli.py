"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_example_fig1(capsys):
    assert main(["example", "fig1"]) == 0
    out = capsys.readouterr().out
    assert "12" in out


def test_example_fig3(capsys):
    assert main(["example", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "32.67" in out


def test_simulate_table(capsys):
    code = main(
        [
            "simulate",
            "--datacenters", "4",
            "--slots", "3",
            "--max-files", "2",
            "--schedulers", "postcard", "direct",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "postcard" in out and "direct" in out and "cost/slot" in out


def test_simulate_surprise_chaos(capsys):
    code = main(
        [
            "simulate",
            "--datacenters", "5",
            "--slots", "8",
            "--seed", "3",
            "--surprise",
            "--solver-chain",
            "--schedulers", "postcard",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "salvaged" in out
    assert "chaos [postcard]:" in out
    assert "disrupted=" in out and "replans=" in out


def test_simulate_outages_file(tmp_path, capsys):
    import json

    path = tmp_path / "outages.json"
    path.write_text(
        json.dumps(
            [{"src": 0, "dst": 1, "start_slot": 0, "end_slot": 2}]
        )
    )
    code = main(
        [
            "simulate",
            "--datacenters", "4",
            "--slots", "4",
            "--max-files", "2",
            "--outages", str(path),
            "--schedulers", "postcard",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "chaos [postcard]: outages=1" in out


def test_figure_command(capsys):
    code = main(
        [
            "figure", "fig6",
            "--runs", "1",
            "--datacenters", "4",
            "--slots", "3",
            "--max-files", "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "fig6" in out and "postcard" in out


def test_trace_generate_and_run(tmp_path, capsys):
    trace = tmp_path / "t.json"
    code = main(
        [
            "trace", "generate",
            "--datacenters", "4",
            "--slots", "2",
            "--max-files", "2",
            "-o", str(trace),
        ]
    )
    assert code == 0
    assert trace.exists()
    capsys.readouterr()

    code = main(["trace", "run", str(trace), "--scheduler", "postcard"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cost/slot" in out


def test_trace_stats(tmp_path, capsys):
    trace = tmp_path / "t.json"
    main(
        [
            "trace", "generate",
            "--datacenters", "4",
            "--slots", "2",
            "--max-files", "2",
            "-o", str(trace),
        ]
    )
    capsys.readouterr()
    assert main(["trace", "stats", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "files" in out and "hottest pairs" in out


def test_trace_run_empty(tmp_path, capsys):
    trace = tmp_path / "empty.json"
    trace.write_text('{"kind": "postcard-trace", "version": 1, "requests": []}')
    assert main(["trace", "run", str(trace)]) == 1


def test_invalid_scheduler_rejected():
    with pytest.raises(SystemExit):
        main(["simulate", "--schedulers", "quantum"])


_SMALL_SIM = [
    "simulate",
    "--datacenters", "4",
    "--slots", "3",
    "--max-files", "2",
    "--schedulers", "postcard",
]


def test_simulate_profile_prints_run_report(capsys):
    assert main(_SMALL_SIM + ["--profile"]) == 0
    out = capsys.readouterr().out
    assert "== run report ==" in out
    for stage in ("timeexp.build", "lp.compile", "lp.solve", "sim.audit"):
        assert stage in out, f"profile report missing stage {stage}"
    assert "lp.cols" in out  # counters section


def test_simulate_obs_jsonl_round_trips_through_report(tmp_path, capsys):
    events = tmp_path / "events.jsonl"
    assert main(_SMALL_SIM + ["--obs-jsonl", str(events)]) == 0
    out = capsys.readouterr().out
    assert f"events to {events}" in out
    assert events.exists() and events.stat().st_size > 0

    assert main(["report", str(events)]) == 0
    out = capsys.readouterr().out
    assert "== run report" in out
    assert "lp.solve" in out and "sim.scheduler" in out


def test_simulate_profile_detaches_sink(capsys):
    from repro import obs

    assert main(_SMALL_SIM + ["--profile"]) == 0
    capsys.readouterr()
    assert not obs.get_registry().enabled


def test_report_benchmark_records_still_render(tmp_path, capsys):
    results = tmp_path / "smoke.jsonl"
    results.write_text(
        '{"figure": "fig6", "scale": "smoke", "setting": "s", "runs": 1, '
        '"means": {"postcard": 10.0}, "half_widths": {"postcard": 0.5}, '
        '"rejected": {"postcard": 0}}\n'
    )
    assert main(["report", str(results)]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out


def test_report_malformed_events_file(tmp_path, capsys):
    bad = tmp_path / "events.jsonl"
    bad.write_text('{"type": "span", "name": "ok", "dur": 0.1}\n{oops\n')
    assert main(["report", str(bad)]) == 1
    err = capsys.readouterr().err
    assert "error:" in err and "events.jsonl:2" in err


def test_simulate_obs_jsonl_unwritable_path(tmp_path, capsys):
    bad = tmp_path / "no-such-dir" / "events.jsonl"
    assert main(_SMALL_SIM + ["--obs-jsonl", str(bad)]) == 1
    assert "error: cannot open" in capsys.readouterr().err


def test_report_missing_file(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
    assert "error:" in capsys.readouterr().err


def test_report_empty_events_file(tmp_path, capsys):
    empty = tmp_path / "events.jsonl"
    # A blank-only file is not detected as obs events and is not a valid
    # benchmark log either; it must fail, not render an empty report.
    empty.write_text("\n")
    assert main(["report", str(empty)]) == 1
    assert "no records" in capsys.readouterr().err


def test_serve_help_lists_service_options(capsys):
    with pytest.raises(SystemExit) as exit_info:
        main(["serve", "--help"])
    assert exit_info.value.code == 0
    out = capsys.readouterr().out
    for flag in ("--tick-seconds", "--max-queue", "--checkpoint-dir",
                 "--checkpoint-every", "--socket", "--obs-jsonl"):
        assert flag in out


def test_loadgen_help_lists_replay_options(capsys):
    with pytest.raises(SystemExit) as exit_info:
        main(["loadgen", "--help"])
    assert exit_info.value.code == 0
    out = capsys.readouterr().out
    for flag in ("--rate", "--requests", "--trace", "--drain",
                 "--expect-no-misses"):
        assert flag in out


def test_serve_rejects_bad_config(capsys):
    assert main(["serve", "--datacenters", "1"]) == 1
    assert "error:" in capsys.readouterr().err


def test_loadgen_against_no_daemon(tmp_path, capsys):
    code = main([
        "loadgen", "--socket", str(tmp_path / "nowhere.sock"),
        "--requests", "1",
    ])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_serve_loadgen_round_trip(tmp_path, capsys):
    """The two subcommands against each other: a short-lived daemon in a
    thread, the loadgen CLI replaying a generated trace with --drain."""
    import threading

    sock = str(tmp_path / "cli.sock")
    summary_path = tmp_path / "summary.json"
    server_codes = []

    def run_server():
        server_codes.append(main([
            "serve", "--socket", sock, "--datacenters", "4",
            "--capacity", "60", "--max-deadline", "8",
            "--tick-seconds", "0.05",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
        ]))

    thread = threading.Thread(target=run_server)
    thread.start()
    try:
        import time

        deadline = time.time() + 30
        while not (tmp_path / "cli.sock").exists():
            assert time.time() < deadline, "daemon never bound its socket"
            time.sleep(0.05)
        code = main([
            "loadgen", "--socket", sock, "--requests", "20",
            "--rate", "6000", "--datacenters", "4", "--capacity", "60",
            "--max-deadline", "6", "--drain", "--expect-no-misses",
            "--json", str(summary_path),
        ])
    finally:
        thread.join(timeout=30)
    assert code == 0
    assert server_codes == [0]
    assert not thread.is_alive()
    out = capsys.readouterr().out
    assert "drain: clean" in out and "latency:" in out
    import json

    summary = json.loads(summary_path.read_text())
    assert summary["submitted"] == 20
    assert summary["deadline_misses"] == 0
    assert summary["drained"] is True


def test_report_writes_output_file(tmp_path, capsys):
    events = tmp_path / "events.jsonl"
    assert main(_SMALL_SIM + ["--obs-jsonl", str(events)]) == 0
    capsys.readouterr()
    rendered = tmp_path / "report.txt"
    assert main(["report", str(events), "-o", str(rendered)]) == 0
    assert "wrote report" in capsys.readouterr().out
    assert "lp.solve" in rendered.read_text()
