"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_example_fig1(capsys):
    assert main(["example", "fig1"]) == 0
    out = capsys.readouterr().out
    assert "12" in out


def test_example_fig3(capsys):
    assert main(["example", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "32.67" in out


def test_simulate_table(capsys):
    code = main(
        [
            "simulate",
            "--datacenters", "4",
            "--slots", "3",
            "--max-files", "2",
            "--schedulers", "postcard", "direct",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "postcard" in out and "direct" in out and "cost/slot" in out


def test_figure_command(capsys):
    code = main(
        [
            "figure", "fig6",
            "--runs", "1",
            "--datacenters", "4",
            "--slots", "3",
            "--max-files", "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "fig6" in out and "postcard" in out


def test_trace_generate_and_run(tmp_path, capsys):
    trace = tmp_path / "t.json"
    code = main(
        [
            "trace", "generate",
            "--datacenters", "4",
            "--slots", "2",
            "--max-files", "2",
            "-o", str(trace),
        ]
    )
    assert code == 0
    assert trace.exists()
    capsys.readouterr()

    code = main(["trace", "run", str(trace), "--scheduler", "postcard"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cost/slot" in out


def test_trace_stats(tmp_path, capsys):
    trace = tmp_path / "t.json"
    main(
        [
            "trace", "generate",
            "--datacenters", "4",
            "--slots", "2",
            "--max-files", "2",
            "-o", str(trace),
        ]
    )
    capsys.readouterr()
    assert main(["trace", "stats", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "files" in out and "hottest pairs" in out


def test_trace_run_empty(tmp_path, capsys):
    trace = tmp_path / "empty.json"
    trace.write_text('{"kind": "postcard-trace", "version": 1, "requests": []}')
    assert main(["trace", "run", str(trace)]) == 1


def test_invalid_scheduler_rejected():
    with pytest.raises(SystemExit):
        main(["simulate", "--schedulers", "quantum"])
