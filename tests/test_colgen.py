"""Unit + property tests for flow-based column generation."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import InfeasibleError, SchedulingError
from repro.core.state import NetworkState
from repro.flowbased.colgen import solve_flow_column_generation
from repro.flowbased.model import build_flow_model
from repro.net.generators import complete_topology, fig3_topology, line_topology
from repro.net.topology import Datacenter, Link, Topology
from repro.traffic import TransferRequest


def test_needs_requests(line3):
    state = NetworkState(line3, horizon=10)
    with pytest.raises(SchedulingError):
        solve_flow_column_generation(state, [])


def test_fig3_matches_paper(fig3):
    state = NetworkState(fig3, horizon=100)
    requests = [
        TransferRequest(2, 4, 8.0, 4, release_slot=3),
        TransferRequest(1, 4, 10.0, 2, release_slot=3),
    ]
    result = solve_flow_column_generation(state, requests)
    assert result.objective == pytest.approx(50.0)
    result.schedule.validate(requests, capacity_fn=state.residual_capacity)


def test_disconnected_pair_infeasible():
    topo = Topology(
        [Datacenter(0), Datacenter(1), Datacenter(2)],
        [Link(0, 1, 1.0, 10.0)],
    )
    state = NetworkState(topo, horizon=10)
    with pytest.raises(InfeasibleError):
        solve_flow_column_generation(
            state, [TransferRequest(0, 2, 1.0, 2, release_slot=0)]
        )


def test_pricing_discovers_relay_paths():
    """Start columns only contain cheapest/direct; when those saturate,
    pricing must invent the relay paths the optimum needs."""
    topo = complete_topology(5, capacity=10.0, seed=31)
    state = NetworkState(topo, horizon=20)
    # 40 GB in 2 slots = rate 20 > any single 10-capacity link: at
    # least two paths are mandatory.
    request = TransferRequest(0, 1, 40.0, 2, release_slot=0)
    result = solve_flow_column_generation(state, [request])
    chosen = result.paths[request.request_id]
    assert len(chosen) >= 2
    assert sum(rate for _p, rate in chosen) == pytest.approx(20.0)


def test_respects_prior_commitments(line3):
    state = NetworkState(line3, horizon=20)
    r0 = TransferRequest(0, 1, 6.0, 1, release_slot=0)
    from repro.core.schedule import ScheduleEntry, TransferSchedule

    state.commit(
        TransferSchedule([ScheduleEntry(r0.request_id, 0, 1, 0, 6.0)]), [r0]
    )
    # A later file rides the paid peak for free.
    r1 = TransferRequest(0, 1, 6.0, 2, release_slot=3)
    result = solve_flow_column_generation(state, [r1])
    assert result.objective == pytest.approx(6.0)


@st.composite
def instances(draw):
    num_dcs = draw(st.integers(3, 6))
    capacity = draw(st.sampled_from([15.0, 30.0]))
    seed = draw(st.integers(0, 20))
    count = draw(st.integers(1, 4))
    requests = []
    for _ in range(count):
        src = draw(st.integers(0, num_dcs - 1))
        dst = draw(st.integers(0, num_dcs - 1))
        if dst == src:
            dst = (src + 1) % num_dcs
        size = draw(st.integers(2, 35))
        deadline = draw(st.integers(1, 4))
        requests.append(
            TransferRequest(src, dst, float(size), deadline, release_slot=0)
        )
    return num_dcs, capacity, seed, requests


@settings(max_examples=20, deadline=None)
@given(instances())
def test_colgen_matches_arc_lp(instance):
    """Dantzig-Wolfe over all paths equals the arc formulation — the
    decomposition's correctness certificate."""
    num_dcs, capacity, seed, requests = instance
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)

    arc_state = NetworkState(topo, horizon=20)
    try:
        _, arc_solution = build_flow_model(
            arc_state, [r.with_release(0) for r in requests]
        ).solve()
    except InfeasibleError:
        assume(False)
        return

    cg_state = NetworkState(topo, horizon=20)
    result = solve_flow_column_generation(
        cg_state, [r.with_release(0) for r in requests]
    )
    assert result.objective == pytest.approx(
        arc_solution.objective, rel=1e-5, abs=1e-5
    )
