"""Equivalence suite: every fast path is pinned to its reference.

Three fast paths shipped together and each one claims *bit-identical*
results, not merely close ones:

* ``compile_model``'s vectorized COO lowering vs. the legacy
  per-coefficient loop (select with ``compile_mode``);
* ``build_postcard_model``'s direct-construction ``assembly="fast"``
  vs. the original operator-algebra ``assembly="legacy"``;
* :class:`~repro.timeexp.cache.GraphCache` reuse vs. a from-scratch
  :class:`~repro.timeexp.graph.TimeExpandedGraph`.

The checks here compare raw matrices, bounds, names, and row maps with
exact equality — any future change that lands a fast path a ULP away
from its reference fails loudly instead of drifting results.
"""

import random

import numpy as np
import pytest

from repro.core import build_postcard_model
from repro.core.state import NetworkState
from repro.lp.compile import CompiledProblem, compile_mode, compile_model
from repro.lp.model import Model
from repro.net.generators import complete_topology
from repro.timeexp.cache import GraphCache
from repro.timeexp.graph import ArcKind, TimeExpandedGraph
from repro.traffic import PaperWorkload


def assert_compiled_identical(a: CompiledProblem, b: CompiledProblem):
    """Exact (not approximate) equality of two compiled problems."""
    assert a.maximize == b.maximize
    assert a.c0 == b.c0
    np.testing.assert_array_equal(a.c, b.c)
    np.testing.assert_array_equal(a.bounds, b.bounds)
    np.testing.assert_array_equal(a.b_ub, b.b_ub)
    np.testing.assert_array_equal(a.b_eq, b.b_eq)
    assert a.row_map == b.row_map
    for m1, m2 in ((a.a_ub, b.a_ub), (a.a_eq, b.a_eq)):
        assert m1.shape == m2.shape
        c1, c2 = m1.copy(), m2.copy()
        for m in (c1, c2):
            m.sum_duplicates()
            m.sort_indices()
        np.testing.assert_array_equal(c1.indptr, c2.indptr)
        np.testing.assert_array_equal(c1.indices, c2.indices)
        np.testing.assert_array_equal(c1.data, c2.data)


def _postcard_instance(storage="full", **build_kw):
    topo = complete_topology(6, capacity=30.0, seed=2026)
    workload = PaperWorkload(
        topo, max_deadline=4, min_files=5, max_files=5, seed=7
    )
    requests = [r.with_release(0) for r in workload.requests_at(0)]
    state = NetworkState(topo, horizon=30)
    return state, requests


# -- compile_model: vectorized vs. legacy lowering -----------------------


def _random_model(seed: int) -> Model:
    """A seeded model exercising every lowering branch: all three
    senses, negative/zero coefficients, nonzero constants, free and
    bounded variables, and (on odd seeds) maximization."""
    rnd = random.Random(seed)
    model = Model(f"rand{seed}")
    n = rnd.randint(3, 12)
    xs = [
        model.add_variable(
            f"x{i}",
            lb=None if rnd.random() < 0.2 else rnd.uniform(-5.0, 0.0),
            ub=None if rnd.random() < 0.3 else rnd.uniform(1.0, 10.0),
        )
        for i in range(n)
    ]
    for _ in range(rnd.randint(2, 12)):
        terms = rnd.sample(xs, rnd.randint(1, n))
        # First coefficient is nonzero so the row never degenerates to a
        # constant (which the model would reject as trivially false).
        expr = rnd.choice([-2.5, -1.0, 1.0, 3.75]) * terms[0]
        for x in terms[1:]:
            expr = expr + rnd.choice([-2.5, -1.0, 0.0, 1.0, 3.75]) * x
        expr = expr + rnd.uniform(-4.0, 4.0)
        rhs = rnd.uniform(-10.0, 10.0)
        sense = rnd.choice(["le", "ge", "eq"])
        if sense == "le":
            model.add_constraint(expr <= rhs)
        elif sense == "ge":
            model.add_constraint(expr >= rhs)
        else:
            model.add_constraint(expr == rhs)
    objective = 0.0
    for x in rnd.sample(xs, rnd.randint(1, n)):
        objective = objective + rnd.uniform(-3.0, 3.0) * x
    objective = objective + rnd.uniform(-2.0, 2.0)
    if seed % 2:
        model.maximize(objective)
    else:
        model.minimize(objective)
    return model


@pytest.mark.parametrize("seed", range(10))
def test_vectorized_compile_matches_legacy_random(seed):
    model = _random_model(seed)
    with compile_mode("vectorized"):
        fast = compile_model(model)
    with compile_mode("legacy"):
        reference = compile_model(model)
    assert_compiled_identical(fast, reference)


def test_vectorized_compile_matches_legacy_postcard():
    """The real thing: a full Postcard slot model, both lowerings."""
    state, requests = _postcard_instance()
    built = build_postcard_model(state, requests)
    fast = compile_model(built.model, mode="vectorized")
    reference = compile_model(built.model, mode="legacy")
    assert_compiled_identical(fast, reference)
    assert len(fast.row_map) == len(built.model.constraints)


def test_compile_mode_rejects_unknown():
    from repro.errors import ModelError

    with pytest.raises(ModelError):
        with compile_mode("typo"):
            pass
    with pytest.raises(ModelError):
        compile_model(Model("m"), mode="typo")


def test_row_map_default_is_per_instance():
    """Regression: the row_map default must be a fresh list per
    problem, not a shared mutable class-level default."""
    from scipy import sparse

    empty = np.zeros(0)
    mat = sparse.csr_matrix((0, 0))
    a = CompiledProblem(empty, 0.0, mat, empty, mat, empty, [], False)
    b = CompiledProblem(empty, 0.0, mat, empty, mat, empty, [], False)
    a.row_map.append(("ub", 0, 1.0))
    assert b.row_map == []


# -- build_postcard_model: fast vs. legacy assembly ----------------------


def _assert_models_identical(fast, legacy):
    fm, lm = fast.model, legacy.model
    assert [(v.name, v.index, v.lb, v.ub) for v in fm.variables] == [
        (v.name, v.index, v.lb, v.ub) for v in lm.variables
    ]
    assert len(fm.constraints) == len(lm.constraints)
    for cf, cl in zip(fm.constraints, lm.constraints):
        assert cf.name == cl.name
        assert cf.sense == cl.sense
        assert cf.expr.constant == cl.expr.constant
        assert cf.expr.coeffs == cl.expr.coeffs
    assert fm.objective.coeffs == lm.objective.coeffs
    assert fm.objective.constant == lm.objective.constant
    assert_compiled_identical(compile_model(fm), compile_model(lm))


@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"storage": "destination_only"},
        {"storage_capacity": 40.0},
        {"storage_capacity": 40.0, "storage_price": 0.5},
    ],
    ids=["full", "dest-only", "finite-storage", "metered-storage"],
)
def test_fast_assembly_matches_legacy(kwargs):
    state, requests = _postcard_instance()
    fast = build_postcard_model(state, requests, assembly="fast", **kwargs)
    legacy = build_postcard_model(state, requests, assembly="legacy", **kwargs)
    _assert_models_identical(fast, legacy)


def test_fast_assembly_matches_legacy_with_commitments():
    """After a committed slot the charge rows carry nonzero committed
    volumes and transit arcs lose residual capacity — the fast path
    must reproduce those constants exactly too."""
    state, requests = _postcard_instance()
    schedule, _ = build_postcard_model(state, requests).solve()
    state.commit(schedule, requests)
    later = [r.with_release(1) for r in requests[:3]]
    fast = build_postcard_model(state, later, assembly="fast")
    legacy = build_postcard_model(state, later, assembly="legacy")
    _assert_models_identical(fast, legacy)


def test_unknown_assembly_mode_rejected():
    from repro.errors import SchedulingError

    state, requests = _postcard_instance()
    with pytest.raises(SchedulingError):
        build_postcard_model(state, requests, assembly="typo")


def test_fast_and_legacy_solve_to_same_schedule():
    state, requests = _postcard_instance()
    fast_sched, fast_sol = build_postcard_model(
        state, requests, assembly="fast"
    ).solve()
    ref_sched, ref_sol = build_postcard_model(
        state, requests, assembly="legacy"
    ).solve()
    assert fast_sol.objective == ref_sol.objective
    assert fast_sched.link_slot_volumes() == ref_sched.link_slot_volumes()
    assert fast_sched.storage_slot_volumes() == ref_sched.storage_slot_volumes()


# -- GraphCache: cached builds vs. from-scratch graphs -------------------


def _assert_graphs_equal(cached: TimeExpandedGraph, fresh: TimeExpandedGraph):
    assert cached.start_slot == fresh.start_slot
    assert cached.horizon == fresh.horizon
    assert cached.arcs == fresh.arcs  # Arc is a frozen dataclass: == is exact


def test_graph_cache_matches_fresh_builds():
    topo = complete_topology(5, capacity=20.0, seed=3)
    cache = GraphCache(topo)
    #: (src, dst, slot) -> consumed capacity, mutated between builds to
    #: mimic online commitments.
    consumed = {}

    def capacity_fn(src, dst, slot):
        return topo.link(src, dst).capacity - consumed.get((src, dst, slot), 0.0)

    for start in range(4):
        if start:  # consume some capacity each slot, like commits do
            consumed[(0, 1, start + 1)] = 5.0 * start
            consumed[(2, 3, start + 2)] = 2.5
        cached = cache.build(start, 4, capacity_fn=capacity_fn)
        fresh = TimeExpandedGraph(
            topo, start_slot=start, horizon=4, capacity_fn=capacity_fn
        )
        _assert_graphs_equal(cached, fresh)
    assert cache.reused_arcs > 0
    assert cache.refreshed_arcs > 0


def test_graph_cache_reuses_unchanged_slots():
    topo = complete_topology(4, capacity=10.0, seed=1)
    cache = GraphCache(topo)
    first = cache.build(0, 3)
    before = cache.reused_arcs
    second = cache.build(0, 3)
    # No capacity changes: every arc object is reused as-is.
    assert cache.reused_arcs == before + len(first.arcs)
    assert [id(a) for a in second.arcs] == [id(a) for a in first.arcs]


def test_graph_cache_invalidate_forgets_arcs():
    topo = complete_topology(4, capacity=10.0, seed=1)
    cache = GraphCache(topo)
    first = cache.build(0, 3)
    cache.invalidate()
    second = cache.build(0, 3)
    assert second.arcs == first.arcs
    assert not set(map(id, second.arcs)) & set(map(id, first.arcs))


def test_graph_cache_refresh_preserves_holdovers():
    topo = complete_topology(4, capacity=10.0, seed=1)
    cache = GraphCache(topo)
    cache.build(0, 3)

    def halved(src, dst, slot):
        return topo.link(src, dst).capacity / 2.0

    refreshed = cache.build(0, 3, capacity_fn=halved)
    for arc in refreshed.arcs:
        if arc.kind is ArcKind.TRANSIT:
            assert arc.capacity == 5.0
        else:
            assert arc.kind is ArcKind.HOLDOVER
    fresh = TimeExpandedGraph(topo, start_slot=0, horizon=3, capacity_fn=halved)
    _assert_graphs_equal(refreshed, fresh)
