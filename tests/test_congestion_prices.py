"""Unit tests for capacity shadow prices of the Postcard LP."""

import pytest

from repro.core import build_postcard_model
from repro.core.state import NetworkState
from repro.net.topology import Datacenter, Link, Topology
from repro.traffic import TransferRequest


def two_path_network(cheap_capacity: float):
    """0 -> 1 directly (pricey) or via 2 (cheap but capacitated)."""
    return Topology(
        [Datacenter(0), Datacenter(1), Datacenter(2)],
        [
            Link(0, 1, price=10.0, capacity=100.0),
            Link(0, 2, price=1.0, capacity=cheap_capacity),
            Link(2, 1, price=1.0, capacity=cheap_capacity),
        ],
    )


def test_binding_capacity_has_positive_price():
    topo = two_path_network(cheap_capacity=4.0)
    state = NetworkState(topo, horizon=20)
    # 12 GB in 2 slots: cheap path carries 4+4, the rest pays 10/GB.
    request = TransferRequest(0, 1, 12.0, 2, release_slot=0)
    built = build_postcard_model(state, [request])
    schedule, solution = built.solve()
    prices = built.congestion_prices(solution)
    assert prices, "expected at least one binding capacity row"
    # Every reported price points at a genuinely saturated link-slot.
    volumes = schedule.link_slot_volumes()
    for (src, dst, slot), price in prices.items():
        assert price > 0
        capacity = topo.link(src, dst).capacity
        assert volumes.get((src, dst, slot), 0.0) == pytest.approx(capacity, abs=1e-6)


def test_slack_network_has_no_prices():
    topo = two_path_network(cheap_capacity=100.0)
    state = NetworkState(topo, horizon=20)
    request = TransferRequest(0, 1, 12.0, 2, release_slot=0)
    built = build_postcard_model(state, [request])
    _, solution = built.solve()
    assert built.congestion_prices(solution) == {}


def test_prices_predict_upgrade_value():
    """Adding one unit of capacity on every priced link lowers the
    optimum by at most the sum of shadow prices — and by more than
    zero, since at least one bottleneck was binding.  (Upgrading a
    single serial bottleneck can legitimately save nothing: the cheap
    relay path here is capped by two links in series.)"""
    topo = two_path_network(cheap_capacity=4.0)
    state = NetworkState(topo, horizon=20)
    request = TransferRequest(0, 1, 12.0, 2, release_slot=0)
    built = build_postcard_model(state, [request])
    schedule, solution = built.solve()
    prices = built.congestion_prices(solution)

    # Serial bottlenecks split one path price across their duals (one
    # of them may carry all of it), so the upgrade experiment relaxes
    # every *saturated* link; the total saving is then bounded by the
    # total shadow price.
    saturated = {
        (src, dst)
        for (src, dst, _slot), volume in schedule.link_slot_volumes().items()
        if volume >= topo.link(src, dst).capacity - 1e-6
    }
    upgraded = Topology(
        [Datacenter(0), Datacenter(1), Datacenter(2)],
        [
            Link(
                l.src, l.dst, price=l.price,
                capacity=l.capacity + (1.0 if (l.src, l.dst) in saturated else 0.0),
            )
            for l in topo.links
        ],
    )
    state2 = NetworkState(upgraded, horizon=20)
    built2 = build_postcard_model(state2, [TransferRequest(0, 1, 12.0, 2, release_slot=0)])
    _, solution2 = built2.solve()
    saving = solution.objective - solution2.objective
    assert saving > 0
    assert saving <= sum(prices.values()) + 1e-6
