"""Unit tests for cost functions."""

import pytest

from repro.errors import ChargingError
from repro.charging import LinearCost, PiecewiseLinearCost


def test_linear_cost():
    fn = LinearCost(2.5)
    assert fn(0.0) == 0.0
    assert fn(4.0) == 10.0
    assert fn.is_convex


def test_linear_cost_validation():
    with pytest.raises(ChargingError):
        LinearCost(-1.0)
    with pytest.raises(ChargingError):
        LinearCost(1.0)(-5.0)


def test_piecewise_interpolation():
    fn = PiecewiseLinearCost([(0, 0), (10, 10), (20, 30)])
    assert fn(0) == 0.0
    assert fn(5) == pytest.approx(5.0)
    assert fn(10) == pytest.approx(10.0)
    assert fn(15) == pytest.approx(20.0)
    assert fn(20) == pytest.approx(30.0)


def test_piecewise_extrapolates_last_slope():
    fn = PiecewiseLinearCost([(0, 0), (10, 10), (20, 30)])
    # Last slope is 2.
    assert fn(25) == pytest.approx(40.0)


def test_piecewise_convexity_detection():
    convex = PiecewiseLinearCost([(0, 0), (10, 10), (20, 30)])
    concave = PiecewiseLinearCost([(0, 0), (10, 20), (20, 30)])  # volume discount
    assert convex.is_convex
    assert not concave.is_convex


def test_piecewise_segments():
    fn = PiecewiseLinearCost([(0, 0), (10, 10), (20, 30)])
    segments = fn.segments()
    assert segments[0] == pytest.approx((1.0, 0.0))
    slope, intercept = segments[1]
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(-10.0)


def test_piecewise_validation():
    with pytest.raises(ChargingError):
        PiecewiseLinearCost([(0, 0)])  # too few points
    with pytest.raises(ChargingError):
        PiecewiseLinearCost([(0, 0), (0, 1)])  # non-increasing volume
    with pytest.raises(ChargingError):
        PiecewiseLinearCost([(0, 5), (10, 1)])  # decreasing cost
    with pytest.raises(ChargingError):
        PiecewiseLinearCost([(-1, 0), (10, 1)])  # negative volume
    fn = PiecewiseLinearCost([(0, 0), (1, 1)])
    with pytest.raises(ChargingError):
        fn(-1)


def test_piecewise_nonzero_first_breakpoint():
    # A function defined from volume 5 onward still evaluates below it.
    fn = PiecewiseLinearCost([(5, 5), (10, 10)])
    assert fn(5) == pytest.approx(5.0)
    assert fn(2) == pytest.approx(2.0)  # first slope anchored backwards
    assert fn(7) == pytest.approx(7.0)
