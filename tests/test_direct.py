"""Unit tests for the direct-link baseline."""

import pytest

from repro.errors import InfeasibleError, SchedulingError
from repro.baselines import DirectScheduler
from repro.net.generators import line_topology
from repro.net.topology import Datacenter, Link, Topology
from repro.traffic import TransferRequest


def test_even_spreading(line3):
    scheduler = DirectScheduler(line3, horizon=10)
    request = TransferRequest(0, 1, 8.0, 4, release_slot=0)
    schedule = scheduler.on_slot(0, [request])
    volumes = schedule.link_slot_volumes()
    for slot in range(4):
        assert volumes[(0, 1, slot)] == pytest.approx(2.0)
    assert scheduler.state.current_cost_per_slot() == pytest.approx(2.0)


def test_no_relaying_ever(line3):
    scheduler = DirectScheduler(line3, horizon=10)
    # 0 -> 2 has no direct link in a line topology.
    request = TransferRequest(0, 2, 1.0, 4, release_slot=0)
    with pytest.raises(InfeasibleError):
        scheduler.on_slot(0, [request])


def test_drop_policy_on_missing_link(line3):
    scheduler = DirectScheduler(line3, horizon=10, on_infeasible="drop")
    unroutable = TransferRequest(0, 2, 1.0, 4, release_slot=0)
    fine = TransferRequest(0, 1, 4.0, 4, release_slot=0)
    schedule = scheduler.on_slot(0, [unroutable, fine])
    assert scheduler.state.rejected == [unroutable]
    assert schedule.delivered_volume(fine) == pytest.approx(4.0)


def test_front_loading_when_contended(line3):
    scheduler = DirectScheduler(line3, horizon=10)
    # First file books 6 GB/slot for slots 0..1.
    r1 = TransferRequest(0, 1, 12.0, 2, release_slot=0)
    scheduler.on_slot(0, [r1])
    # Second file wants 8 GB over 2 slots = 4/slot, but only 4/slot is
    # free; even spreading fits exactly.
    r2 = TransferRequest(0, 1, 8.0, 2, release_slot=0)
    schedule = scheduler.on_slot(0, [r2])
    assert schedule.delivered_volume(r2) == pytest.approx(8.0)
    ledger = scheduler.state.ledger
    assert ledger.volume(0, 1, 0) <= 10.0 + 1e-9
    assert ledger.volume(0, 1, 1) <= 10.0 + 1e-9


def test_front_loading_uneven(line3):
    scheduler = DirectScheduler(line3, horizon=10)
    r1 = TransferRequest(0, 1, 9.0, 1, release_slot=0)  # slot 0: 9 used
    scheduler.on_slot(0, [r1])
    # 10 GB in 2 slots = 5/slot even, but slot 0 has only 1 free:
    # front-loading packs 1 + 9.
    r2 = TransferRequest(0, 1, 10.0, 2, release_slot=0)
    schedule = scheduler.on_slot(0, [r2])
    volumes = schedule.link_slot_volumes()
    assert volumes[(0, 1, 0)] == pytest.approx(1.0)
    assert volumes[(0, 1, 1)] == pytest.approx(9.0)


def test_infeasible_when_link_saturated(line3):
    scheduler = DirectScheduler(line3, horizon=10)
    r1 = TransferRequest(0, 1, 20.0, 2, release_slot=0)  # saturates both slots
    scheduler.on_slot(0, [r1])
    r2 = TransferRequest(0, 1, 1.0, 2, release_slot=0)
    with pytest.raises(InfeasibleError):
        scheduler.on_slot(0, [r2])


def test_release_mismatch(line3):
    scheduler = DirectScheduler(line3, horizon=10)
    request = TransferRequest(0, 1, 1.0, 1, release_slot=3)
    with pytest.raises(SchedulingError):
        scheduler.on_slot(0, [request])


def test_unknown_policy(line3):
    with pytest.raises(SchedulingError):
        DirectScheduler(line3, horizon=10, on_infeasible="retry")


def test_big_files_scheduled_first(line3):
    # Sorted by desired rate: the big file gets the even spread, the
    # small one front-loads around it.
    scheduler = DirectScheduler(line3, horizon=10)
    small = TransferRequest(0, 1, 2.0, 2, release_slot=0)
    big = TransferRequest(0, 1, 18.0, 2, release_slot=0)
    schedule = scheduler.on_slot(0, [small, big])
    assert schedule.delivered_volume(big) == pytest.approx(18.0)
    assert schedule.delivered_volume(small) == pytest.approx(2.0)
