"""Edge-case coverage across modules: the inputs users actually mistype."""

import pytest

from repro.errors import (
    InfeasibleError,
    ModelError,
    ReproError,
    SchedulingError,
    TopologyError,
    WorkloadError,
)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (
            ModelError, SchedulingError, TopologyError, WorkloadError,
            InfeasibleError,
        ):
            assert issubclass(exc, ReproError)

    def test_infeasible_detail(self):
        err = InfeasibleError("nope", detail="link down")
        assert err.detail == "link down"


class TestTinyTopologies:
    def test_two_datacenter_network_works_end_to_end(self):
        from repro.core import PostcardScheduler
        from repro.net.topology import Datacenter, Link, Topology
        from repro.traffic import TransferRequest

        topo = Topology(
            [Datacenter(0), Datacenter(1)],
            [Link(0, 1, 2.0, 10.0), Link(1, 0, 2.0, 10.0)],
        )
        scheduler = PostcardScheduler(topo, horizon=10)
        request = TransferRequest(0, 1, 15.0, 2, release_slot=0)
        schedule = scheduler.on_slot(0, [request])
        assert schedule.delivered_volume(request) == pytest.approx(15.0)

    def test_single_node_topology_rejects_all_traffic(self):
        from repro.net.topology import Datacenter, Topology
        from repro.traffic import TransferRequest

        topo = Topology([Datacenter(0)], [])
        with pytest.raises(WorkloadError):
            TransferRequest(0, 0, 1.0, 1)


class TestExactFit:
    def test_file_exactly_fills_capacity(self, line3):
        from repro.core import PostcardScheduler
        from repro.traffic import TransferRequest

        scheduler = PostcardScheduler(line3, horizon=10)
        request = TransferRequest(0, 1, 30.0, 3, release_slot=0)  # 10/slot x 3
        schedule = scheduler.on_slot(0, [request])
        volumes = schedule.link_slot_volumes()
        for slot in range(3):
            assert volumes[(0, 1, slot)] == pytest.approx(10.0)

    def test_one_gb_more_is_infeasible(self, line3):
        from repro.core import PostcardScheduler
        from repro.traffic import TransferRequest

        scheduler = PostcardScheduler(line3, horizon=10)
        request = TransferRequest(0, 1, 31.0, 3, release_slot=0)
        with pytest.raises(InfeasibleError):
            scheduler.on_slot(0, [request])


class TestTinyVolumes:
    def test_sub_atol_requests_still_delivered(self, line3):
        from repro.core import PostcardScheduler
        from repro.traffic import TransferRequest

        scheduler = PostcardScheduler(line3, horizon=10)
        request = TransferRequest(0, 1, 1e-3, 1, release_slot=0)
        scheduler.on_slot(0, [request])
        assert request.request_id in scheduler.state.completions


class TestDuplicateRequestsInOneSlot:
    def test_identical_specs_distinct_files(self, line3):
        from repro.core import PostcardScheduler
        from repro.traffic import TransferRequest

        scheduler = PostcardScheduler(line3, horizon=10)
        twins = [
            TransferRequest(0, 1, 4.0, 2, release_slot=0),
            TransferRequest(0, 1, 4.0, 2, release_slot=0),
        ]
        schedule = scheduler.on_slot(0, twins)
        for request in twins:
            assert schedule.delivered_volume(request) == pytest.approx(4.0)


class TestGreedyCandidateLimit:
    def test_single_candidate_path_still_works(self):
        from repro.baselines import GreedyStoreAndForwardScheduler
        from repro.net.generators import fig1_topology
        from repro.traffic import TransferRequest

        scheduler = GreedyStoreAndForwardScheduler(
            fig1_topology(), horizon=10, num_candidate_paths=1
        )
        request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
        schedule = scheduler.on_slot(0, [request])
        # With one candidate, the single cheapest path (via DC 1) is it.
        assert schedule.delivered_volume(request) == pytest.approx(6.0)


class TestLookaheadBeyondHorizonPreviews:
    def test_preview_returning_far_future_files(self, line3):
        from repro.core import LookaheadPostcardScheduler
        from repro.traffic import TransferRequest

        far = TransferRequest(0, 1, 4.0, 2, release_slot=50)
        scheduler = LookaheadPostcardScheduler(
            line3, horizon=100,
            preview=lambda s: [far] if s == 1 else [],
            lookahead=1,
        )
        current = TransferRequest(0, 1, 4.0, 2, release_slot=0)
        schedule = scheduler.on_slot(0, [current])
        assert schedule.delivered_volume(current) == pytest.approx(4.0)


class TestReportOnBenchResultsDir:
    def test_smoke_results_render_when_present(self, tmp_path):
        import pathlib

        from repro.sim.report import load_records, render_markdown

        results = pathlib.Path("benchmarks/results/smoke.jsonl")
        if not results.exists():
            pytest.skip("no smoke results on disk")
        records = load_records(results)
        text = render_markdown(records)
        assert "Fig." in text
