"""Unit tests for budget-constrained transfer admission."""

import pytest

from repro.errors import SchedulingError
from repro.core.state import NetworkState
from repro.extensions import maximize_transfers_under_budget
from repro.net.generators import line_topology
from repro.traffic import TransferRequest


@pytest.fixture
def state(line3):
    return NetworkState(line3, horizon=10)


def test_needs_requests(state):
    with pytest.raises(SchedulingError):
        maximize_transfers_under_budget(state, [], budget_per_slot=10.0)


def test_budget_below_committed_rejected(line3):
    state = NetworkState(line3, horizon=10)
    from repro.core.schedule import ScheduleEntry, TransferSchedule

    request = TransferRequest(0, 1, 5.0, 1, release_slot=0)
    state.commit(
        TransferSchedule([ScheduleEntry(request.request_id, 0, 1, 0, 5.0)]),
        [request],
    )
    with pytest.raises(SchedulingError):
        maximize_transfers_under_budget(
            state, [TransferRequest(0, 1, 1.0, 1)], budget_per_slot=1.0
        )


def test_generous_budget_admits_everything(state):
    requests = [
        TransferRequest(0, 1, 4.0, 2, release_slot=0),
        TransferRequest(1, 2, 4.0, 2, release_slot=0),
    ]
    result = maximize_transfers_under_budget(state, requests, budget_per_slot=1000.0)
    assert result.admitted_count == 2
    assert result.fractional_optimum == pytest.approx(2.0, abs=1e-6)
    assert result.schedule is not None
    assert result.cost_per_slot <= 1000.0


def test_zero_budget_admits_nothing(state):
    requests = [TransferRequest(0, 1, 4.0, 2, release_slot=0)]
    result = maximize_transfers_under_budget(state, requests, budget_per_slot=0.0)
    assert result.admitted_count == 0
    assert result.schedule is None
    assert result.fractional_optimum == pytest.approx(0.0, abs=1e-6)


def test_tight_budget_picks_cheaper_file(state):
    # Both links have price 1; file sizes differ, so peaks differ.
    cheap = TransferRequest(0, 1, 2.0, 2, release_slot=0)   # peak 1
    pricey = TransferRequest(1, 2, 12.0, 2, release_slot=0)  # peak 6
    result = maximize_transfers_under_budget(
        state, [cheap, pricey], budget_per_slot=2.0
    )
    assert result.admitted_count == 1
    assert result.admitted[0].request_id == cheap.request_id
    assert result.cost_per_slot <= 2.0 + 1e-6


def test_integral_count_bounded_by_fractional(state):
    requests = [
        TransferRequest(0, 1, 8.0, 2, release_slot=0),
        TransferRequest(1, 2, 8.0, 2, release_slot=0),
        TransferRequest(0, 2, 8.0, 2, release_slot=0),
    ]
    result = maximize_transfers_under_budget(state, requests, budget_per_slot=6.0)
    assert result.admitted_count <= result.fractional_optimum + 1e-6
    # Fractions are reported for every candidate.
    assert set(result.fractions) == {r.request_id for r in requests}


def test_state_not_mutated(state):
    requests = [TransferRequest(0, 1, 4.0, 2, release_slot=0)]
    maximize_transfers_under_budget(state, requests, budget_per_slot=100.0)
    assert state.current_cost_per_slot() == 0.0
    assert not state.completions
