"""Unit tests for bulk-throughput maximization over leftover bandwidth."""

import pytest

from repro.errors import SchedulingError
from repro.core.state import NetworkState
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.extensions import maximize_bulk_throughput
from repro.traffic import TransferRequest


def _pay_for(state, src, dst, volume, slot=0):
    """Commit a transfer so the link gains paid headroom."""
    request = TransferRequest(src, dst, volume, 1, release_slot=slot)
    schedule = TransferSchedule(
        [ScheduleEntry(request.request_id, src, dst, slot, volume)]
    )
    state.commit(schedule, [request])
    return request


def test_needs_requests(line3):
    state = NetworkState(line3, horizon=10)
    with pytest.raises(SchedulingError):
        maximize_bulk_throughput(state, [])


def test_cold_network_delivers_nothing(line3):
    # No paid headroom anywhere: bulk traffic would increase bills, so
    # the optimizer moves nothing.
    state = NetworkState(line3, horizon=10)
    bulk = TransferRequest(0, 1, 10.0, 4, release_slot=0)
    result = maximize_bulk_throughput(state, [bulk])
    assert result.total_delivered == pytest.approx(0.0)
    assert result.fraction_delivered(bulk) == pytest.approx(0.0)


def test_rides_paid_headroom(line3):
    state = NetworkState(line3, horizon=20)
    _pay_for(state, 0, 1, 6.0, slot=0)  # paid peak 6 on (0,1)
    bulk = TransferRequest(0, 1, 30.0, 4, release_slot=2)
    result = maximize_bulk_throughput(state, [bulk])
    # 4 slots x 6 GB of free headroom = 24 GB deliverable.
    assert result.delivered[bulk.request_id] == pytest.approx(24.0)
    result.schedule.validate([bulk], require_full_delivery=False)
    # And the schedule would not raise any link's charge.
    for (src, dst, slot), volume in result.schedule.link_slot_volumes().items():
        assert volume <= state.paid_headroom(src, dst, slot) + 1e-6


def test_relay_headroom_via_intermediate(line3):
    state = NetworkState(line3, horizon=20)
    _pay_for(state, 0, 1, 5.0, slot=0)
    _pay_for(state, 1, 2, 5.0, slot=0)
    bulk = TransferRequest(0, 2, 100.0, 3, release_slot=1)
    result = maximize_bulk_throughput(state, [bulk])
    # Path 0->1 (slots 1,2) then 1->2 (slots 2,3): store-and-forward
    # pipelining delivers 10 GB within the 3-slot window.
    assert result.delivered[bulk.request_id] == pytest.approx(10.0)
    result.schedule.validate([bulk], require_full_delivery=False)


def test_weights_prioritize(line3):
    state = NetworkState(line3, horizon=20)
    _pay_for(state, 0, 1, 4.0, slot=0)
    a = TransferRequest(0, 1, 8.0, 2, release_slot=1)
    b = TransferRequest(0, 1, 8.0, 2, release_slot=1)
    result = maximize_bulk_throughput(
        state, [a, b], weights={a.request_id: 10.0, b.request_id: 1.0}
    )
    # Both compete for 2 slots x 4 GB free: the weighted file wins.
    assert result.delivered[a.request_id] == pytest.approx(8.0)
    assert result.delivered[b.request_id] == pytest.approx(0.0)


def test_never_exceeds_file_size(line3):
    state = NetworkState(line3, horizon=50)
    _pay_for(state, 0, 1, 10.0, slot=0)
    small = TransferRequest(0, 1, 3.0, 8, release_slot=1)
    result = maximize_bulk_throughput(state, [small])
    assert result.delivered[small.request_id] == pytest.approx(3.0)
    assert result.fraction_delivered(small) == pytest.approx(1.0)
