"""Unit tests for the sharded broker fabric (relay planner + harness).

Everything here runs against the synchronous in-process
:class:`~repro.service.fabric.BrokerFabric` — deterministic, no
sockets — which shares the relay state machine with the asyncio
:class:`FleetRouter` (exercised end-to-end in test_fleet_e2e.py).
"""

import pytest

from repro.errors import ServiceError
from repro.net.topology import Datacenter, Link, Topology
from repro.service.fabric import (
    BrokerFabric,
    FleetConfig,
    plan_relay,
    relay_gateway,
    rollup_stats,
    select_gateway,
    split_deadline,
)

DCS = 6


def make_fleet(**overrides) -> FleetConfig:
    base = dict(
        shards={"eu": "", "us": ""},
        gateway_dc=0,
        datacenters=DCS,
        capacity=100.0,
        max_queue=64,
        max_deadline=8,
    )
    base.update(overrides)
    return FleetConfig(**base)


def fields(cid, source, destination, size=2.0, deadline=4):
    return {
        "id": cid,
        "source": source,
        "destination": destination,
        "size_gb": size,
        "deadline_slots": deadline,
    }


def shard_pair(shard_map, same=True, exclude=()):
    """A (source, destination) pair on the same / different shards."""
    for src in range(DCS):
        for dst in range(DCS):
            if src == dst or src in exclude or dst in exclude:
                continue
            matches = shard_map.shard_for(src) == shard_map.shard_for(dst)
            if matches == same:
                return src, dst
    raise AssertionError("no such pair in this topology")


# -- config ----------------------------------------------------------------


def test_fleet_config_validates():
    with pytest.raises(ServiceError, match="at least one shard"):
        make_fleet(shards={})
    with pytest.raises(ServiceError, match="gateway_dc"):
        make_fleet(gateway_dc=DCS)
    fleet = make_fleet(checkpoint_root="/tmp/fleet-x")
    cfg = fleet.shard_config("eu")
    assert cfg.checkpoint_dir == "/tmp/fleet-x/eu"
    assert cfg.datacenters == DCS
    with pytest.raises(ServiceError, match="unknown shard"):
        fleet.shard_config("mars")


# -- relay planning --------------------------------------------------------


def test_split_deadline_ceil_floor():
    assert split_deadline(4) == (2, 2)
    assert split_deadline(5) == (3, 2)
    assert split_deadline(1) == (1, 1)  # both legs keep a slot of slack


def test_plan_relay_same_shard_is_direct():
    fleet = make_fleet()
    shard_map = fleet.shard_map()
    src, dst = shard_pair(shard_map, same=True)
    assert plan_relay(fields("t", src, dst), shard_map, 0) is None


def test_plan_relay_cross_shard_two_legs():
    fleet = make_fleet()
    shard_map = fleet.shard_map()
    src, dst = shard_pair(shard_map, same=False)
    gateway = next(
        g for g in range(DCS) if g not in (src, dst)
    )
    legs = plan_relay(fields("t", src, dst, deadline=5), shard_map, gateway)
    assert [leg.leg_id for leg in legs] == ["t#a", "t#b"]
    leg_a, leg_b = legs
    assert (leg_a.source, leg_a.destination) == (src, gateway)
    assert (leg_b.source, leg_b.destination) == (gateway, dst)
    assert leg_a.shard == shard_map.shard_for(src)
    assert leg_b.shard == shard_map.shard_for(dst)
    assert (leg_a.deadline_slots, leg_b.deadline_slots) == (3, 2)


def test_plan_relay_degenerate_gateways():
    fleet = make_fleet()
    shard_map = fleet.shard_map()
    src, dst = shard_pair(shard_map, same=False)
    # Gateway at the source: a single ingress leg on the destination's
    # shard, full deadline.
    legs = plan_relay(fields("t", src, dst, deadline=4), shard_map, src)
    assert [leg.leg_id for leg in legs] == ["t#b"]
    assert legs[0].shard == shard_map.shard_for(dst)
    assert legs[0].deadline_slots == 4
    # Gateway at the destination: a single egress leg on the source's.
    legs = plan_relay(fields("t", src, dst, deadline=4), shard_map, dst)
    assert [leg.leg_id for leg in legs] == ["t#a"]
    assert legs[0].shard == shard_map.shard_for(src)


# -- the in-process fabric -------------------------------------------------


def test_fabric_direct_submission_routes_to_owner():
    fleet = make_fleet()
    fabric = BrokerFabric(fleet)
    src, dst = shard_pair(fabric.map, same=True)
    owner = fabric.map.shard_for(src)
    other = next(n for n in fabric.map.shards if n != owner)
    outcome, _ = fabric.submit(fields("d1", src, dst))
    assert outcome == "pending"
    assert fabric.brokers[owner].queue.depth == 1
    assert fabric.brokers[other].queue.depth == 0
    finals = fabric.run_until_settled()
    assert [f["id"] for f in finals] == ["d1"]
    assert finals[0]["decision"] == "admitted"
    assert finals[0]["shard"] == owner
    assert fabric.counts == {"submitted": 1, "direct": 1, "relayed": 0}


def test_fabric_relay_chains_on_commit():
    fleet = make_fleet()
    fabric = BrokerFabric(fleet)
    src, dst = shard_pair(fabric.map, same=False, exclude=(fleet.gateway_dc,))
    fabric.submit(fields("x1", src, dst, deadline=6))
    assert fabric.counts["relayed"] == 1
    # Leg B must not exist anywhere until leg A commits.
    dst_shard = fabric.map.shard_for(dst)
    relay = fabric.tracker.get("x1")
    assert relay.leg_states()["x1#b"] == "waiting"
    finals = fabric.run_until_settled()
    assert len(finals) == 1
    final = finals[0]
    assert final["id"] == "x1"
    assert final["decision"] == "admitted"
    leg_records = final["relay"]["legs"]
    assert [leg["id"] for leg in leg_records] == ["x1#a", "x1#b"]
    assert all(leg["decision"] == "admitted" for leg in leg_records)
    # Leg B was submitted only after leg A's decision slot.
    assert leg_records[1]["slot"] >= leg_records[0]["slot"]
    assert final["completion_slot"] == leg_records[1]["completion_slot"]
    # The gateway hop's volume is billed once per carrying shard.
    assert fabric.brokers[dst_shard].counts["admitted"] >= 1


def test_fabric_rejected_leg_short_circuits():
    # A tiny capacity with an oversized transfer: leg A is rejected,
    # so leg B must never reach the destination shard's broker.
    fleet = make_fleet(capacity=1.0)
    fabric = BrokerFabric(fleet)
    src, dst = shard_pair(fabric.map, same=False, exclude=(fleet.gateway_dc,))
    gateway = fleet.gateway_dc
    if gateway in (src, dst):
        pytest.skip("need a two-leg relay for this topology")
    fabric.submit(fields("big", src, dst, size=500.0, deadline=4))
    finals = fabric.run_until_settled()
    assert len(finals) == 1
    assert finals[0]["decision"] == "rejected"
    states = {leg["id"]: leg["state"] for leg in finals[0]["relay"]["legs"]}
    assert states["big#a"] == "decided"
    assert states["big#b"] == "waiting"
    dst_shard = fabric.map.shard_for(dst)
    assert fabric.brokers[dst_shard].counts["submitted"] == 0


def test_fabric_submission_is_idempotent():
    fleet = make_fleet()
    fabric = BrokerFabric(fleet)
    src, dst = shard_pair(fabric.map, same=False, exclude=(fleet.gateway_dc,))
    fabric.submit(fields("x1", src, dst))
    outcome, value = fabric.submit(fields("x1", src, dst))
    assert outcome == "pending"
    assert value is fabric.tracker.get("x1")
    assert fabric.counts["submitted"] == 1
    fabric.run_until_settled()
    outcome, record = fabric.submit(fields("x1", src, dst))
    assert outcome == "decided"
    assert record["decision"] == "admitted"


def test_fabric_shard_ledgers_are_isolated():
    fleet = make_fleet()
    fabric = BrokerFabric(fleet)
    src, dst = shard_pair(fabric.map, same=True)
    owner = fabric.map.shard_for(src)
    other = next(n for n in fabric.map.shards if n != owner)
    fabric.submit(fields("d1", src, dst, size=8.0))
    fabric.run_until_settled()
    assert fabric.brokers[owner].state.ledger.total_volume() > 0.0
    assert fabric.brokers[other].state.ledger.total_volume() == 0.0


def test_fabric_status_and_stats_rollup():
    fleet = make_fleet()
    fabric = BrokerFabric(fleet)
    src, dst = shard_pair(fabric.map, same=False, exclude=(fleet.gateway_dc,))
    fabric.submit(fields("x1", src, dst))
    assert fabric.status("x1")["state"] == "relaying"
    assert fabric.status("ghost")["state"] == "unknown"
    fabric.run_until_settled()
    assert fabric.status("x1")["state"] == "admitted"
    stats = fabric.stats()
    assert stats["router"]["relayed"] == 1
    assert stats["shard_map"]["version"] == 1
    fleet_totals = stats["fleet"]
    assert fleet_totals["shards"] == 2
    # Two legs, one per shard.
    assert fleet_totals["submitted"] == 2
    assert fleet_totals["admitted"] == 2
    per_shard = [stats["shards"][name]["submitted"] for name in stats["shards"]]
    assert sum(per_shard) == 2


# -- cheapest-gateway selection --------------------------------------------


def relay_topology(price_via_2=1.0, price_via_3=5.0) -> Topology:
    """4 DCs; transfers 0 -> 1 can hop via 2 or 3 at tunable prices."""
    dcs = [Datacenter(i) for i in range(4)]
    links = [
        Link(0, 2, price_via_2, 100.0), Link(2, 1, price_via_2, 100.0),
        Link(0, 3, price_via_3, 100.0), Link(3, 1, price_via_3, 100.0),
    ]
    return Topology(dcs, links)


def test_fleet_config_validates_gateway_mode():
    with pytest.raises(ServiceError, match="gateway_mode"):
        make_fleet(gateway_mode="random")
    assert make_fleet(gateway_mode="cheapest").gateway_mode == "cheapest"


def test_select_gateway_picks_lowest_price():
    topo = relay_topology(price_via_2=1.0, price_via_3=5.0)
    assert select_gateway(0, 1, 2.0, topo) == 2
    topo = relay_topology(price_via_2=5.0, price_via_3=1.0)
    assert select_gateway(0, 1, 2.0, topo) == 3


def test_select_gateway_ties_break_low_and_fallback():
    topo = relay_topology(price_via_2=3.0, price_via_3=3.0)
    assert select_gateway(0, 1, 2.0, topo) == 2
    # Two datacenters: no third hop exists, the fixed gateway stands.
    tiny = Topology([Datacenter(0), Datacenter(1)], [Link(0, 1, 1.0, 10.0)])
    assert select_gateway(0, 1, 2.0, tiny, fallback=0) == 0


def test_select_gateway_watermark_credit_flips_choice():
    # Via 3 is pricier per GB, but its links carry enough paid
    # watermark that the transfer rides free — it must win.
    topo = relay_topology(price_via_2=1.0, price_via_3=5.0)
    credit = {(0, 3): 2.0, (3, 1): 2.0}
    chosen = select_gateway(
        0, 1, 2.0, topo, watermarks=lambda a, b: credit.get((a, b), 0.0)
    )
    assert chosen == 3


def test_plan_relay_cheapest_mode_routes_per_transfer():
    fleet = make_fleet(gateway_mode="cheapest")
    shard_map = fleet.shard_map()
    topo = fleet.topology()
    src, dst = shard_pair(shard_map, same=False)
    legs = plan_relay(
        fields("t", src, dst, size=3.0), shard_map, fleet.gateway_dc,
        gateway_mode="cheapest", topology=topo,
    )
    assert len(legs) == 2
    chosen = relay_gateway(legs, fleet.gateway_dc)
    assert chosen == select_gateway(
        src, dst, 3.0, topo, fallback=fleet.gateway_dc
    )
    assert chosen not in (src, dst)
    assert legs[0].destination == chosen == legs[1].source


def test_fabric_cheapest_gateway_end_to_end():
    fleet = make_fleet(gateway_mode="cheapest")
    fabric = BrokerFabric(fleet)
    src, dst = shard_pair(fabric.map, same=False)
    # Cold brokers carry zero watermark everywhere, so the expected
    # gateway is the pure price optimum.
    expected = select_gateway(src, dst, 2.0, fabric._topology)
    fabric.submit(fields("x1", src, dst))
    finals = fabric.run_until_settled()
    assert finals[0]["decision"] == "admitted"
    assert finals[0]["relay"]["gateway"] == expected
    leg_records = finals[0]["relay"]["legs"]
    assert leg_records[0]["destination"] == expected
    assert leg_records[1]["source"] == expected


def test_fabric_fixed_mode_still_uses_configured_gateway():
    fleet = make_fleet()
    fabric = BrokerFabric(fleet)
    src, dst = shard_pair(fabric.map, same=False, exclude=(fleet.gateway_dc,))
    fabric.submit(fields("x1", src, dst))
    finals = fabric.run_until_settled()
    assert finals[0]["relay"]["gateway"] == fleet.gateway_dc


def test_rollup_stats_sums_and_maxes():
    fleet_totals = rollup_stats({
        "a": {"submitted": 3, "admitted": 2, "next_slot": 5,
              "cost_per_slot": 1.5, "draining": False},
        "b": {"submitted": 1, "admitted": 1, "next_slot": 9,
              "cost_per_slot": 0.25, "draining": True},
    })
    assert fleet_totals["submitted"] == 4
    assert fleet_totals["admitted"] == 3
    assert fleet_totals["next_slot"] == 9
    assert fleet_totals["cost_per_slot"] == 1.75
    assert fleet_totals["draining"] is True
