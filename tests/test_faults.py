"""Unit tests for link-failure injection."""

import pytest

from repro.errors import InfeasibleError, SimulationError
from repro.baselines import DirectScheduler, GreedyStoreAndForwardScheduler
from repro.core import PostcardScheduler
from repro.net.generators import complete_topology, fig1_topology, line_topology
from repro.sim import FaultModel, Outage, Simulation
from repro.traffic import PaperWorkload, TransferRequest


class TestOutage:
    def test_validation(self):
        with pytest.raises(SimulationError):
            Outage(0, 1, 5, 5)
        with pytest.raises(SimulationError):
            Outage(0, 1, -1, 2)

    def test_covers(self):
        outage = Outage(0, 1, 2, 4)
        assert not outage.covers(1)
        assert outage.covers(2)
        assert outage.covers(3)
        assert not outage.covers(4)


class TestFaultModel:
    def test_is_down(self):
        fm = FaultModel([Outage(0, 1, 2, 4)])
        assert fm.is_down(0, 1, 3)
        assert not fm.is_down(0, 1, 4)
        assert not fm.is_down(1, 0, 3)  # direction matters

    def test_add_and_downtime(self):
        fm = FaultModel()
        fm.add(Outage(0, 1, 0, 2))
        fm.add(Outage(0, 1, 5, 6))
        assert fm.downtime_slots(0, 1) == {0, 1, 5}

    def test_random_deterministic(self):
        topo = complete_topology(5, capacity=10.0, seed=0)
        a = FaultModel.random(topo, num_slots=10, outage_probability=0.5, seed=3)
        b = FaultModel.random(topo, num_slots=10, outage_probability=0.5, seed=3)
        assert [(o.src, o.dst, o.start_slot) for o in a.outages] == [
            (o.src, o.dst, o.start_slot) for o in b.outages
        ]
        assert a.outages  # 0.5 over 20 links: virtually certain

    def test_random_validation(self):
        topo = complete_topology(3, capacity=10.0, seed=0)
        with pytest.raises(SimulationError):
            FaultModel.random(topo, 10, outage_probability=1.5)
        with pytest.raises(SimulationError):
            FaultModel.random(topo, 10, mean_duration=0.5)

    def test_random_duration_mean_is_unbiased(self):
        """The geometric draw is used as-is: the sample mean of outage
        durations must sit at mean_duration, not mean_duration + 1."""
        topo = complete_topology(40, capacity=10.0, seed=0)  # 1560 links
        mean_duration = 3.0
        fm = FaultModel.random(
            topo,
            num_slots=50,
            outage_probability=1.0,
            mean_duration=mean_duration,
            seed=7,
        )
        durations = [o.end_slot - o.start_slot for o in fm.outages]
        assert len(durations) == 1560
        sample_mean = sum(durations) / len(durations)
        # Std of geometric(1/3) is sqrt(6) ~ 2.45; over 1560 draws the
        # standard error is ~0.06, so +/-0.25 is a four-sigma band that
        # still catches a +1 bias (which would land at 4.0).
        assert abs(sample_mean - mean_duration) < 0.25

    def test_is_down_cache_coherent_with_add(self):
        fm = FaultModel([Outage(0, 1, 0, 2)])
        assert fm.is_down(0, 1, 1)
        assert not fm.is_down(0, 1, 5)
        fm.add(Outage(0, 1, 5, 7))
        assert fm.is_down(0, 1, 5)
        assert fm.is_down(0, 1, 6)
        assert fm.downtime_slots(0, 1) == {0, 1, 5, 6}
        # The returned set is a copy: mutating it cannot corrupt the cache.
        fm.downtime_slots(0, 1).clear()
        assert fm.is_down(0, 1, 0)

    def test_file_round_trip(self, tmp_path):
        fm = FaultModel(
            [Outage(0, 1, 2, 4), Outage(2, 3, 1, 5, announced=False)]
        )
        path = tmp_path / "outages.json"
        fm.to_file(path)
        loaded = FaultModel.from_file(path)
        assert [
            (o.src, o.dst, o.start_slot, o.end_slot, o.announced)
            for o in loaded.outages
        ] == [(0, 1, 2, 4, True), (2, 3, 1, 5, False)]

    def test_from_file_rejects_junk(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(SimulationError, match="list"):
            FaultModel.from_file(path)
        path.write_text('[{"src": 0, "dst": 1}]')
        with pytest.raises(SimulationError, match="missing"):
            FaultModel.from_file(path)


class TestSurpriseOutages:
    def test_surprise_invisible_until_revealed(self):
        fm = FaultModel([Outage(0, 1, 2, 5, announced=False)])
        assert fm.has_surprise
        assert fm.is_down(0, 1, 3)
        assert not fm.is_visible_down(0, 1, 3)
        assert fm.is_surprise_down(0, 1, 3)
        revealed = fm.reveal(0, 1, 2)
        assert len(revealed) == 1
        # The whole remaining span becomes visible, not just slot 2.
        for slot in (2, 3, 4):
            assert fm.is_visible_down(0, 1, slot)
            assert not fm.is_surprise_down(0, 1, slot)
        # Revealing again is a no-op.
        assert fm.reveal(0, 1, 3) == []

    def test_announced_outage_is_visible_immediately(self):
        fm = FaultModel([Outage(0, 1, 2, 5)])
        assert not fm.has_surprise
        assert fm.is_visible_down(0, 1, 3)
        assert not fm.is_surprise_down(0, 1, 3)
        assert fm.reveal(0, 1, 3) == []

    def test_copy_drops_reveals(self):
        fm = FaultModel([Outage(0, 1, 2, 5, announced=False)])
        fm.reveal(0, 1, 2)
        fresh = fm.copy()
        assert fresh.is_down(0, 1, 3)
        assert not fresh.is_visible_down(0, 1, 3)
        assert fm.is_visible_down(0, 1, 3)  # original keeps its reveal

    def test_as_surprise_demotes_everything(self):
        fm = FaultModel([Outage(0, 1, 2, 5), Outage(1, 2, 0, 1)])
        surprise = fm.as_surprise()
        assert surprise.has_surprise
        assert all(not o.announced for o in surprise.outages)
        assert surprise.downtime_slots(0, 1) == fm.downtime_slots(0, 1)

    def test_scheduler_cannot_see_surprise(self, line3):
        from repro.core import PostcardScheduler as PS

        scheduler = PS(line3, horizon=10)
        scheduler.state.fault_model = FaultModel(
            [Outage(0, 1, 0, 2, announced=False)]
        )
        # Invisible outage: residual capacity looks healthy.
        assert scheduler.state.residual_capacity(0, 1, 0) == 10.0


class TestSchedulingAroundFaults:
    def test_state_reports_zero_capacity(self, line3):
        scheduler = PostcardScheduler(line3, horizon=10)
        scheduler.state.fault_model = FaultModel([Outage(0, 1, 0, 2)])
        assert scheduler.state.residual_capacity(0, 1, 0) == 0.0
        assert scheduler.state.residual_capacity(0, 1, 2) == 10.0
        assert scheduler.state.paid_headroom(0, 1, 1) == 0.0

    def test_postcard_waits_out_an_outage(self, line3):
        scheduler = PostcardScheduler(line3, horizon=10)
        scheduler.state.fault_model = FaultModel([Outage(0, 1, 0, 2)])
        # Link (0,1) is down for slots 0-1; a 4-slot deadline lets the
        # optimizer hold the file at the source and send afterwards.
        request = TransferRequest(0, 1, 6.0, 4, release_slot=0)
        schedule = scheduler.on_slot(0, [request])
        volumes = schedule.link_slot_volumes()
        assert all(slot >= 2 for (_s, _d, slot) in volumes)
        assert schedule.delivered_volume(request) == pytest.approx(6.0)

    def test_postcard_routes_around_an_outage(self):
        topo = fig1_topology(capacity=100.0)
        scheduler = PostcardScheduler(topo, horizon=10)
        # The cheap relay 2->1 is dead for the whole window: pay direct.
        scheduler.state.fault_model = FaultModel([Outage(2, 1, 0, 10)])
        request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
        schedule = scheduler.on_slot(0, [request])
        links = {(e.src, e.dst) for e in schedule.transit_entries()}
        assert (2, 1) not in links
        assert scheduler.state.current_cost_per_slot() == pytest.approx(20.0)

    def test_total_outage_infeasible(self, line3):
        scheduler = PostcardScheduler(line3, horizon=10)
        scheduler.state.fault_model = FaultModel([Outage(0, 1, 0, 10)])
        request = TransferRequest(0, 1, 6.0, 3, release_slot=0)
        with pytest.raises(InfeasibleError):
            scheduler.on_slot(0, [request])

    def test_direct_rejects_during_outage(self, line3):
        scheduler = DirectScheduler(line3, horizon=10, on_infeasible="drop")
        scheduler.state.fault_model = FaultModel([Outage(0, 1, 0, 10)])
        request = TransferRequest(0, 1, 6.0, 3, release_slot=0)
        scheduler.on_slot(0, [request])
        assert scheduler.state.rejected == [request]

    def test_greedy_routes_around(self):
        topo = fig1_topology(capacity=100.0)
        scheduler = GreedyStoreAndForwardScheduler(topo, horizon=10)
        scheduler.state.fault_model = FaultModel([Outage(2, 1, 0, 10)])
        request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
        schedule = scheduler.on_slot(0, [request])
        links = {(e.src, e.dst) for e in schedule.transit_entries()}
        assert (2, 1) not in links

    def test_full_simulation_with_random_faults(self):
        topo = complete_topology(5, capacity=40.0, seed=9)
        faults = FaultModel.random(topo, num_slots=6, outage_probability=0.3, seed=1)
        scheduler = PostcardScheduler(topo, horizon=20, on_infeasible="drop")
        scheduler.state.fault_model = faults
        workload = PaperWorkload(topo, max_deadline=4, max_files=3, seed=2)
        result = Simulation(scheduler, workload, num_slots=6).run()
        assert result.max_lateness() == 0
        # Nothing was scheduled onto a downed link-slot.
        ledger = scheduler.state.ledger
        for src, dst in ledger.used_links():
            down = faults.downtime_slots(src, dst)
            for slot, volume in ledger.usage(src, dst).volumes.items():
                assert slot not in down or volume <= 1e-9
