"""Unit tests for link-failure injection."""

import pytest

from repro.errors import InfeasibleError, SimulationError
from repro.baselines import DirectScheduler, GreedyStoreAndForwardScheduler
from repro.core import PostcardScheduler
from repro.net.generators import complete_topology, fig1_topology, line_topology
from repro.sim import FaultModel, Outage, Simulation
from repro.traffic import PaperWorkload, TransferRequest


class TestOutage:
    def test_validation(self):
        with pytest.raises(SimulationError):
            Outage(0, 1, 5, 5)
        with pytest.raises(SimulationError):
            Outage(0, 1, -1, 2)

    def test_covers(self):
        outage = Outage(0, 1, 2, 4)
        assert not outage.covers(1)
        assert outage.covers(2)
        assert outage.covers(3)
        assert not outage.covers(4)


class TestFaultModel:
    def test_is_down(self):
        fm = FaultModel([Outage(0, 1, 2, 4)])
        assert fm.is_down(0, 1, 3)
        assert not fm.is_down(0, 1, 4)
        assert not fm.is_down(1, 0, 3)  # direction matters

    def test_add_and_downtime(self):
        fm = FaultModel()
        fm.add(Outage(0, 1, 0, 2))
        fm.add(Outage(0, 1, 5, 6))
        assert fm.downtime_slots(0, 1) == {0, 1, 5}

    def test_random_deterministic(self):
        topo = complete_topology(5, capacity=10.0, seed=0)
        a = FaultModel.random(topo, num_slots=10, outage_probability=0.5, seed=3)
        b = FaultModel.random(topo, num_slots=10, outage_probability=0.5, seed=3)
        assert [(o.src, o.dst, o.start_slot) for o in a.outages] == [
            (o.src, o.dst, o.start_slot) for o in b.outages
        ]
        assert a.outages  # 0.5 over 20 links: virtually certain

    def test_random_validation(self):
        topo = complete_topology(3, capacity=10.0, seed=0)
        with pytest.raises(SimulationError):
            FaultModel.random(topo, 10, outage_probability=1.5)
        with pytest.raises(SimulationError):
            FaultModel.random(topo, 10, mean_duration=0.5)


class TestSchedulingAroundFaults:
    def test_state_reports_zero_capacity(self, line3):
        scheduler = PostcardScheduler(line3, horizon=10)
        scheduler.state.fault_model = FaultModel([Outage(0, 1, 0, 2)])
        assert scheduler.state.residual_capacity(0, 1, 0) == 0.0
        assert scheduler.state.residual_capacity(0, 1, 2) == 10.0
        assert scheduler.state.paid_headroom(0, 1, 1) == 0.0

    def test_postcard_waits_out_an_outage(self, line3):
        scheduler = PostcardScheduler(line3, horizon=10)
        scheduler.state.fault_model = FaultModel([Outage(0, 1, 0, 2)])
        # Link (0,1) is down for slots 0-1; a 4-slot deadline lets the
        # optimizer hold the file at the source and send afterwards.
        request = TransferRequest(0, 1, 6.0, 4, release_slot=0)
        schedule = scheduler.on_slot(0, [request])
        volumes = schedule.link_slot_volumes()
        assert all(slot >= 2 for (_s, _d, slot) in volumes)
        assert schedule.delivered_volume(request) == pytest.approx(6.0)

    def test_postcard_routes_around_an_outage(self):
        topo = fig1_topology(capacity=100.0)
        scheduler = PostcardScheduler(topo, horizon=10)
        # The cheap relay 2->1 is dead for the whole window: pay direct.
        scheduler.state.fault_model = FaultModel([Outage(2, 1, 0, 10)])
        request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
        schedule = scheduler.on_slot(0, [request])
        links = {(e.src, e.dst) for e in schedule.transit_entries()}
        assert (2, 1) not in links
        assert scheduler.state.current_cost_per_slot() == pytest.approx(20.0)

    def test_total_outage_infeasible(self, line3):
        scheduler = PostcardScheduler(line3, horizon=10)
        scheduler.state.fault_model = FaultModel([Outage(0, 1, 0, 10)])
        request = TransferRequest(0, 1, 6.0, 3, release_slot=0)
        with pytest.raises(InfeasibleError):
            scheduler.on_slot(0, [request])

    def test_direct_rejects_during_outage(self, line3):
        scheduler = DirectScheduler(line3, horizon=10, on_infeasible="drop")
        scheduler.state.fault_model = FaultModel([Outage(0, 1, 0, 10)])
        request = TransferRequest(0, 1, 6.0, 3, release_slot=0)
        scheduler.on_slot(0, [request])
        assert scheduler.state.rejected == [request]

    def test_greedy_routes_around(self):
        topo = fig1_topology(capacity=100.0)
        scheduler = GreedyStoreAndForwardScheduler(topo, horizon=10)
        scheduler.state.fault_model = FaultModel([Outage(2, 1, 0, 10)])
        request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
        schedule = scheduler.on_slot(0, [request])
        links = {(e.src, e.dst) for e in schedule.transit_entries()}
        assert (2, 1) not in links

    def test_full_simulation_with_random_faults(self):
        topo = complete_topology(5, capacity=40.0, seed=9)
        faults = FaultModel.random(topo, num_slots=6, outage_probability=0.3, seed=1)
        scheduler = PostcardScheduler(topo, horizon=20, on_infeasible="drop")
        scheduler.state.fault_model = faults
        workload = PaperWorkload(topo, max_deadline=4, max_files=3, seed=2)
        result = Simulation(scheduler, workload, num_slots=6).run()
        assert result.max_lateness() == 0
        # Nothing was scheduled onto a downed link-slot.
        for (src, dst), usage in scheduler.state.ledger._usage.items():
            down = faults.downtime_slots(src, dst)
            for slot, volume in usage.volumes.items():
                assert slot not in down or volume <= 1e-9
