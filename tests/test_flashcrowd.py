"""Unit tests for the flash-crowd workload."""

import pytest

from repro.errors import WorkloadError
from repro.core import PostcardScheduler
from repro.net.generators import complete_topology
from repro.sim import Simulation
from repro.traffic import FlashCrowdWorkload


@pytest.fixture
def topo():
    return complete_topology(6, capacity=60.0, seed=2)


def test_validation(topo):
    with pytest.raises(WorkloadError):
        FlashCrowdWorkload(topo, max_deadline=3, base_rate=-1)
    with pytest.raises(WorkloadError):
        FlashCrowdWorkload(topo, max_deadline=3, burst_probability=2.0)
    with pytest.raises(WorkloadError):
        FlashCrowdWorkload(topo, max_deadline=3, burst_files=0)
    with pytest.raises(WorkloadError):
        FlashCrowdWorkload(topo, max_deadline=0)


def test_burst_slots_converge_on_one_destination(topo):
    wl = FlashCrowdWorkload(
        topo, max_deadline=4, base_rate=0.0, burst_probability=1.0,
        burst_files=8, seed=3,
    )
    requests = wl.requests_at(0)
    assert len(requests) == 8
    destinations = {r.destination for r in requests}
    assert len(destinations) == 1
    assert all(r.source != r.destination for r in requests)


def test_quiet_slots_are_background_only(topo):
    wl = FlashCrowdWorkload(
        topo, max_deadline=4, base_rate=2.0, burst_probability=0.0, seed=3,
    )
    counts = [len(wl.requests_at(s)) for s in range(100)]
    assert 1.0 < sum(counts) / len(counts) < 3.5


def test_burst_frequency_matches_probability(topo):
    wl = FlashCrowdWorkload(
        topo, max_deadline=4, burst_probability=0.3, seed=5,
    )
    bursts = sum(wl.is_burst_slot(s) for s in range(300))
    assert 60 < bursts < 120  # ~90 expected


def test_deterministic(topo):
    a = FlashCrowdWorkload(topo, max_deadline=4, seed=7)
    b = FlashCrowdWorkload(topo, max_deadline=4, seed=7)
    assert [
        (r.source, r.destination, r.size_gb) for r in a.requests_at(4)
    ] == [(r.source, r.destination, r.size_gb) for r in b.requests_at(4)]


def test_schedulable_end_to_end(topo):
    wl = FlashCrowdWorkload(
        topo, max_deadline=4, base_rate=1.0, burst_probability=0.5,
        burst_files=4, min_size=5.0, max_size=20.0, seed=9,
    )
    scheduler = PostcardScheduler(topo, horizon=20, on_infeasible="drop")
    result = Simulation(scheduler, wl, num_slots=6).run()
    assert result.max_lateness() == 0
