"""Fleet-level end-to-end drills: router + shard daemons over sockets.

The headline test is the crash drill from the PR's acceptance criteria:
two WAL-enabled shard subprocesses behind an in-process
:class:`FleetRouter`, a relay mid-flight, ``kill -9`` on the shard
holding its second leg.  The surviving shard must keep admitting, the
killed shard must come back via WAL replay with a strict-clean recovery
verifier, and the parked relay leg must resume and decide **exactly
once** (the shard's idempotent decision log is what makes the
resubmission safe).
"""

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import FleetConfig, FleetRouter
from repro.service.loadgen import _Connection

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

DCS = 6
SHARD_ARGS = [
    "--datacenters", str(DCS), "--capacity", "60", "--seed", "3",
    "--max-deadline", "8", "--tick-seconds", "0", "--wal",
]


def start_shard(sock, ckpt_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--checkpoint-dir", ckpt_dir, *SHARD_ARGS],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        if os.path.exists(sock):
            return proc
        if proc.poll() is not None:
            raise AssertionError(
                f"shard died on startup:\n{proc.stdout.read().decode()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("shard never bound its socket")


def make_fleet(tmp_path):
    # Over 6 DCs these two names split ownership 3/3 ("ap" owns
    # 0-2 incl. the gateway, "east" owns 3-5), so both shards have a
    # same-shard pair — the crash drill needs one on each side.
    socks = {
        "east": str(tmp_path / "east.sock"),
        "ap": str(tmp_path / "ap.sock"),
    }
    fleet = FleetConfig(
        shards={name: f"unix:{sock}" for name, sock in socks.items()},
        gateway_dc=0,
        datacenters=DCS,
        capacity=60.0,
        seed=3,
        max_deadline=8,
        wal=True,
        checkpoint_root=str(tmp_path / "ckpt"),
    )
    return fleet, socks


def pick_pair(shard_map, same, exclude=()):
    for src in range(DCS):
        for dst in range(DCS):
            if src == dst or src in exclude or dst in exclude:
                continue
            if (shard_map.shard_for(src) == shard_map.shard_for(dst)) == same:
                return src, dst
    raise AssertionError("no such pair")


def submit_message(cid, source, destination, size=5.0, deadline=6):
    return {"op": "submit", "id": cid, "source": source,
            "destination": destination, "size_gb": size,
            "deadline_slots": deadline}


async def poll_relay_state(conn, cid, want, timeout=10.0):
    """Poll router status until leg states satisfy ``want(legs)``."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        status = await conn.call({"op": "status", "id": cid})
        legs = status.get("legs", {})
        if status.get("state") != "relaying" or want(legs):
            return status
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"relay never reached {want}: {status}")
        await asyncio.sleep(0.05)


@pytest.mark.slow
def test_fleet_router_round_trip(tmp_path):
    """Direct + cross-shard submissions through a live 2-shard fleet
    with manual ticks; per-shard metrics roll up at the router."""
    fleet, socks = make_fleet(tmp_path)
    shard_map = fleet.shard_map()
    direct_pair = pick_pair(shard_map, same=True)
    relay_pair = pick_pair(shard_map, same=False, exclude=(fleet.gateway_dc,))
    procs = [start_shard(sock, str(tmp_path / "ckpt" / name))
             for name, sock in socks.items()]

    async def scenario():
        router = FleetRouter(fleet, socket_path=str(tmp_path / "router.sock"))
        await router.start()
        conn = await _Connection.open("", 0, str(tmp_path / "router.sock"))
        try:
            w_direct = conn.send(submit_message("d1", *direct_pair))
            w_relay = conn.send(submit_message("x1", *relay_pair))
            for _ in range(4):
                tick = await asyncio.wait_for(
                    conn.call({"op": "tick"}), timeout=10
                )
                assert tick["ok"]
                await asyncio.sleep(0.05)
            direct = await asyncio.wait_for(w_direct, timeout=10)
            relayed = await asyncio.wait_for(w_relay, timeout=10)
            stats = await asyncio.wait_for(conn.call({"op": "stats"}), 10)
            metrics = await asyncio.wait_for(conn.call({"op": "metrics"}), 10)
            return direct, relayed, stats, metrics
        finally:
            await conn.close()
            await router.stop()

    try:
        direct, relayed, stats, metrics = asyncio.run(scenario())
    finally:
        for proc in procs:
            proc.kill()
            proc.wait(timeout=10)

    assert direct["ok"] and direct["decision"] == "admitted"
    assert direct["shard"] == fleet.shard_map().shard_for(direct_pair[0])
    assert relayed["ok"] and relayed["decision"] == "admitted"
    leg_ids = [leg["id"] for leg in relayed["relay"]["legs"]]
    assert leg_ids == ["x1#a", "x1#b"]
    assert stats["router"]["direct"] == 1
    assert stats["router"]["relayed"] == 1
    assert stats["fleet"]["shards"] == 2
    # 1 direct + 2 legs across the fleet.
    assert stats["fleet"]["submitted"] == 3
    rollup = metrics["snapshot"]
    assert rollup["shards"] == ["ap", "east"]
    assert rollup["counters"]["service.submitted"]["total"] == 3


@pytest.mark.slow
def test_idle_shard_death_is_refused_not_hung(tmp_path):
    """A shard killed with NOTHING in flight must still be refused
    loudly on the next submission.  The router's cached connection sees
    EOF with no waiters to fail, so nothing marks the shard down at
    kill time — the stale connection must be evicted on next use, not
    left to swallow the new submission's waiter forever."""
    fleet, socks = make_fleet(tmp_path)
    shard_map = fleet.shard_map()
    src, dst = pick_pair(shard_map, same=True)
    victim = shard_map.shard_for(src)
    procs = {name: start_shard(sock, str(tmp_path / "ckpt" / name))
             for name, sock in socks.items()}

    async def scenario():
        router = FleetRouter(fleet, socket_path=str(tmp_path / "router.sock"))
        await router.start()
        conn = await _Connection.open("", 0, str(tmp_path / "router.sock"))
        try:
            # Establish the router's cached connection to the victim
            # and drain the decision so nothing is in flight.
            w = conn.send(submit_message("d1", src, dst))
            for _ in range(40):
                await asyncio.wait_for(conn.call({"op": "tick"}), 10)
                if w.done():
                    break
                await asyncio.sleep(0.05)
            first = await asyncio.wait_for(w, timeout=10)
            os.kill(procs[victim].pid, signal.SIGKILL)
            procs[victim].wait(timeout=10)
            await asyncio.sleep(0.2)  # let the EOF reach the read loop
            refused = await asyncio.wait_for(
                conn.call(submit_message("d2", src, dst)), timeout=10
            )
            return first, refused
        finally:
            await conn.close()
            await router.stop()

    try:
        first, refused = asyncio.run(scenario())
    finally:
        for proc in procs.values():
            proc.kill()
            proc.wait(timeout=10)

    assert first["ok"]
    assert refused["ok"] is False
    assert refused["error"] == "shard-down"


@pytest.mark.slow
def test_fleet_kill9_survivors_admit_and_parked_leg_resumes(tmp_path):
    fleet, socks = make_fleet(tmp_path)
    shard_map = fleet.shard_map()
    relay_src, relay_dst = pick_pair(
        shard_map, same=False, exclude=(fleet.gateway_dc,)
    )
    victim = shard_map.shard_for(relay_dst)       # owns leg B
    survivor = next(n for n in shard_map.shards if n != victim)
    survivor_dc = next(
        dc for dc in range(DCS) if shard_map.shard_for(dc) == survivor
    )
    survivor_dst = next(
        dc for dc in range(DCS)
        if dc != survivor_dc and shard_map.shard_for(dc) == survivor
    )
    victim_dc = next(
        dc for dc in range(DCS) if shard_map.shard_for(dc) == victim
    )
    victim_dst = next(
        dc for dc in range(DCS)
        if dc != victim_dc and shard_map.shard_for(dc) == victim
    )
    procs = {name: start_shard(sock, str(tmp_path / "ckpt" / name))
             for name, sock in socks.items()}

    async def scenario():
        router = FleetRouter(fleet, socket_path=str(tmp_path / "router.sock"))
        await router.start()
        conn = await _Connection.open("", 0, str(tmp_path / "router.sock"))
        # Status polls ride a second connection: on one _Connection a
        # status waiter for "x1" would clobber the pending submit
        # waiter for the same id.
        poll = await _Connection.open("", 0, str(tmp_path / "router.sock"))
        out = {}
        try:
            # 1. Launch the relay; once leg A is in flight on its
            #    shard, one tick decides it and the router chains
            #    leg B onto the victim shard (no second tick yet, so
            #    leg B stays undecided in the victim's queue).
            w_relay = conn.send(submit_message("x1", relay_src, relay_dst))
            await poll_relay_state(
                poll, "x1", lambda legs: legs.get("x1#a") == "inflight"
            )
            await asyncio.wait_for(conn.call({"op": "tick"}), 10)
            await poll_relay_state(
                poll, "x1",
                lambda legs: legs.get("x1#a") == "decided"
                and legs.get("x1#b") == "inflight",
            )

            # 2. kill -9 the shard holding leg B.
            os.kill(procs[victim].pid, signal.SIGKILL)
            procs[victim].wait(timeout=10)
            # The drive task parks the leg as soon as the socket dies.
            await poll_relay_state(
                poll, "x1", lambda legs: legs.get("x1#b") == "parked"
            )

            # 3. Survivor keeps admitting; victim-bound traffic is
            #    refused loudly, not hung.  Manual clocks mean the
            #    submit and the tick race, so tick until decided.
            w_ok = conn.send(submit_message("s1", survivor_dc, survivor_dst))
            for _ in range(40):
                tick = await asyncio.wait_for(conn.call({"op": "tick"}), 10)
                out["tick_victim"] = str(tick["shards"][victim])
                if w_ok.done():
                    break
                await asyncio.sleep(0.1)
            out["survivor"] = await asyncio.wait_for(w_ok, timeout=10)
            out["refused"] = await asyncio.wait_for(
                conn.call(submit_message("v1", victim_dc, victim_dst)),
                timeout=10,
            )

            # 4. Restart the victim; WAL replay must come back strict-
            #    clean, and the resume op re-drives the parked leg.
            os.unlink(socks[victim])
            procs[victim] = start_shard(
                socks[victim], str(tmp_path / "ckpt" / victim)
            )
            resume = await asyncio.wait_for(conn.call({"op": "resume"}), 10)
            assert resume["ok"] and victim in resume["resumed"]
            for _ in range(40):
                await asyncio.wait_for(conn.call({"op": "tick"}), 10)
                if w_relay.done():
                    break
                await asyncio.sleep(0.1)
            out["final"] = await asyncio.wait_for(w_relay, timeout=15)

            shard_conn = await _Connection.open("", 0, socks[victim])
            try:
                out["victim_stats"] = await shard_conn.call({"op": "stats"})
                out["victim_metrics"] = await shard_conn.call(
                    {"op": "metrics"}
                )
                out["leg_status"] = await shard_conn.call(
                    {"op": "status", "id": "x1#b"}
                )
            finally:
                await shard_conn.close()
            out["router_stats"] = await conn.call({"op": "stats"})
            return out
        finally:
            await poll.close()
            await conn.close()
            await router.stop()

    try:
        out = asyncio.run(scenario())
    finally:
        for proc in procs.values():
            proc.kill()
            proc.wait(timeout=10)

    # Survivors kept admitting while the victim was down (and its
    # death was loud on the tick fan-out).
    assert victim in out["tick_victim"]
    assert out["survivor"]["ok"]
    assert out["survivor"]["decision"] in ("admitted", "rejected")
    assert out["refused"]["ok"] is False
    assert out["refused"]["error"] == "shard-down"

    # The killed shard recovered via WAL replay, strict-clean.
    assert out["victim_stats"]["resumed"] is True
    recovery = out["victim_metrics"]["recovery"]
    assert recovery["resumed"] is True
    verifier = recovery["verifier"]
    assert verifier is not None and verifier["ok"], verifier

    # The parked leg resumed and decided exactly once: the relay's
    # composite decision arrived, the victim shard holds exactly one
    # decision for the leg id, and the router resumed exactly one leg.
    final = out["final"]
    assert final["ok"] and final["decision"] == "admitted"
    assert {leg["id"]: leg["decision"] for leg in final["relay"]["legs"]} == {
        "x1#a": "admitted", "x1#b": "admitted"
    }
    assert out["leg_status"]["state"] == "admitted"
    assert out["router_stats"]["router"]["resumed_legs"] == 1
    assert out["router_stats"]["router"]["parked"] == 0
    assert out["router_stats"]["shards"][victim]["submitted"] == 1
