"""Unit tests for the flow-based LP model and scheduler."""

import pytest

from repro.errors import InfeasibleError, SchedulingError
from repro.core.schedule import SEMANTICS_FLUID
from repro.core.state import NetworkState
from repro.flowbased import FlowBasedScheduler, build_flow_model
from repro.net.generators import complete_topology, line_topology
from repro.traffic import TransferRequest


def test_needs_requests(line3):
    state = NetworkState(line3, horizon=10)
    with pytest.raises(SchedulingError):
        build_flow_model(state, [])


def test_constant_rate_over_window(line3):
    state = NetworkState(line3, horizon=10)
    request = TransferRequest(0, 1, 8.0, 4, release_slot=0)
    built = build_flow_model(state, [request])
    schedule, solution = built.solve()
    volumes = schedule.link_slot_volumes()
    for slot in range(4):
        assert volumes[(0, 1, slot)] == pytest.approx(2.0)
    assert solution.objective == pytest.approx(2.0)
    assert schedule.semantics == SEMANTICS_FLUID


def test_multi_hop_same_slot_allowed(line3):
    # Fluid relaying crosses two hops within one slot: a 1-slot deadline
    # works on the path 0->1->2, unlike store-and-forward.
    state = NetworkState(line3, horizon=10)
    request = TransferRequest(0, 2, 5.0, 1, release_slot=0)
    built = build_flow_model(state, [request])
    schedule, _ = built.solve()
    schedule.validate([request], capacity_fn=state.residual_capacity)
    assert schedule.completion_slot(request) == 0


def test_capacity_respected_across_active_files(line3):
    state = NetworkState(line3, horizon=10)
    requests = [
        TransferRequest(0, 1, 10.0, 2, release_slot=0),
        TransferRequest(0, 1, 10.0, 2, release_slot=0),
    ]
    built = build_flow_model(state, requests)
    schedule, _ = built.solve()
    volumes = schedule.link_slot_volumes()
    for slot in range(2):
        assert volumes.get((0, 1, slot), 0.0) <= 10.0 + 1e-6


def test_infeasible_when_rates_exceed_cut(line3):
    state = NetworkState(line3, horizon=10)
    # 30 GB in 2 slots = 15/slot through a 10/slot bottleneck cut.
    request = TransferRequest(0, 2, 30.0, 2, release_slot=0)
    with pytest.raises(InfeasibleError):
        build_flow_model(state, [request]).solve()


def test_no_storage_no_time_shifting(line3):
    # A fully booked slot blocks the flow-based model even if later
    # slots are idle (Postcard would wait; the flow cannot).
    state = NetworkState(line3, horizon=10)
    r0 = TransferRequest(0, 1, 10.0, 1, release_slot=0)
    built0 = build_flow_model(state, [r0])
    s0, _ = built0.solve()
    state.commit(s0, [r0])

    r1 = TransferRequest(0, 1, 10.0, 1, release_slot=0)
    with pytest.raises(InfeasibleError):
        build_flow_model(state, [r1]).solve()


def test_prior_charges_in_objective(line3):
    state = NetworkState(line3, horizon=10)
    r0 = TransferRequest(0, 1, 6.0, 1, release_slot=0)
    built0 = build_flow_model(state, [r0])
    s0, _ = built0.solve()
    state.commit(s0, [r0])

    # A later small file on the same link rides the paid volume.
    r1 = TransferRequest(0, 1, 4.0, 1, release_slot=5)
    _, solution = build_flow_model(state, [r1]).solve()
    assert solution.objective == pytest.approx(6.0)


class TestFlowBasedScheduler:
    def test_commit_and_completions(self, line3):
        scheduler = FlowBasedScheduler(line3, horizon=10)
        request = TransferRequest(0, 2, 6.0, 2, release_slot=0)
        scheduler.on_slot(0, [request])
        assert scheduler.state.completions[request.request_id] <= request.last_slot

    def test_empty_slot(self, line3):
        scheduler = FlowBasedScheduler(line3, horizon=10)
        assert not scheduler.on_slot(0, [])

    def test_release_mismatch(self, line3):
        scheduler = FlowBasedScheduler(line3, horizon=10)
        request = TransferRequest(0, 1, 1.0, 1, release_slot=3)
        with pytest.raises(SchedulingError):
            scheduler.on_slot(0, [request])

    def test_unknown_variant(self, line3):
        with pytest.raises(SchedulingError):
            FlowBasedScheduler(line3, horizon=10, variant="magic")

    def test_drop_policy(self, line3):
        scheduler = FlowBasedScheduler(line3, horizon=10, on_infeasible="drop")
        huge = TransferRequest(0, 2, 500.0, 2, release_slot=0)
        small = TransferRequest(0, 1, 5.0, 2, release_slot=0)
        schedule = scheduler.on_slot(0, [huge, small])
        assert scheduler.state.rejected == [huge]
        assert schedule.delivered_volume(small) == pytest.approx(5.0)

    def test_two_phase_scheduler_runs(self):
        topo = complete_topology(4, capacity=20.0, seed=2)
        scheduler = FlowBasedScheduler(topo, horizon=20, variant="two_phase")
        requests = [
            TransferRequest(0, 1, 12.0, 2, release_slot=0),
            TransferRequest(2, 3, 8.0, 2, release_slot=0),
        ]
        scheduler.on_slot(0, requests)
        assert scheduler.last_lambda is not None
        for request in requests:
            assert request.request_id in scheduler.state.completions
