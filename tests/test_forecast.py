"""Tests for repro.forecast: predictors, guard, provider, integration.

The load-bearing guarantees here are the ISSUE's acceptance criteria:
a cold (or distrusted) provider leaves the hybrid scheduler
bit-identical to the reactive one; a warm provider shifts volume
without ever changing admission; and adversarially wrong forecasts are
damped by the stability guard instead of oscillating the schedule.
"""

import pytest

from repro.errors import SchedulingError
from repro.forecast import (
    DoubleSeasonal,
    Ewma,
    ForecastConfig,
    ForecastProvider,
    SeasonalNaive,
    StabilityGuard,
    make_predictor,
)
from repro.heuristic import HybridScheduler
from repro.net.generators import complete_topology
from repro.net.topology import Datacenter, Link, Topology
from repro.sim.engine import Simulation
from repro.traffic.workload import DiurnalWorkload


# -- predictors ------------------------------------------------------------


class TestPredictors:
    def test_seasonal_naive_copies_last_season(self):
        p = SeasonalNaive(period=4)
        for value in (1.0, 2.0, 3.0, 4.0):
            assert not p.ready
            p.observe(value)
        assert p.ready
        # Next slot is phase 0 again: last season's 1.0, then 2.0, ...
        assert p.forecast(1) == 1.0
        assert p.forecast(2) == 2.0
        assert p.forecast(5) == 1.0

    def test_ewma_tracks_level(self):
        p = Ewma(alpha=0.5)
        assert p.forecast(1) == 0.0 and not p.ready
        p.observe(10.0)
        assert p.ready
        for _ in range(20):
            p.observe(4.0)
        assert p.forecast(1) == pytest.approx(4.0, abs=0.01)
        assert p.forecast(7) == p.forecast(1)  # flat beyond one step

    def test_double_seasonal_learns_shape(self):
        season = [0.0, 10.0, 40.0, 10.0]
        p = DoubleSeasonal(period=4, alpha=0.4, gamma=0.4)
        for cycle in range(12):
            for value in season:
                p.observe(value)
        # After many clean cycles the phase shape is recovered.
        forecasts = [p.forecast(h + 1) for h in range(4)]
        assert forecasts[2] == pytest.approx(40.0, abs=2.0)
        assert forecasts[0] == pytest.approx(0.0, abs=2.0)
        assert all(f >= 0.0 for f in forecasts)

    def test_validation_and_factory(self):
        with pytest.raises(SchedulingError):
            SeasonalNaive(period=1)
        with pytest.raises(SchedulingError):
            Ewma(alpha=0.0)
        with pytest.raises(SchedulingError):
            DoubleSeasonal(period=4, period2=1)
        with pytest.raises(SchedulingError):
            SeasonalNaive(4).forecast(0)
        with pytest.raises(SchedulingError, match="unknown predictor"):
            make_predictor("arima", 24)
        assert isinstance(make_predictor("ewma", 0), Ewma)
        assert isinstance(make_predictor("seasonal", 4), SeasonalNaive)
        assert isinstance(make_predictor("hw", 4, period2=8), DoubleSeasonal)


# -- the stability guard ---------------------------------------------------


class TestStabilityGuard:
    def test_validation(self):
        with pytest.raises(SchedulingError):
            StabilityGuard(max_shift_fraction=0.0)
        with pytest.raises(SchedulingError):
            StabilityGuard(damping_beta=-0.1)
        with pytest.raises(SchedulingError):
            StabilityGuard(min_trust=1.5)
        with pytest.raises(SchedulingError):
            StabilityGuard(trip_mape=0.0)

    def test_trust_decays_with_error(self):
        guard = StabilityGuard(damping_beta=0.5)
        assert guard.trust(0, 0.0) == 1.0
        assert guard.trust(0, 1.0) == pytest.approx(1.0 / 1.5)
        assert guard.trust(0, 2.0) < guard.trust(0, 1.0)

    def test_min_trust_floor(self):
        guard = StabilityGuard(damping_beta=10.0, min_trust=0.2)
        assert guard.trust(0, 100.0) == 0.2

    def test_bound_caps_reservation(self):
        guard = StabilityGuard(max_shift_fraction=0.5)
        assert guard.bound(10.0, 100.0) == 10.0
        assert guard.bound(80.0, 100.0) == 50.0
        assert guard.bound(-3.0, 100.0) == 0.0

    def test_trip_wire_once_per_excursion(self):
        guard = StabilityGuard(trip_mape=1.0, trip_cooldown=4)
        guard.update(10, mape=5.0)
        assert guard.trips == 1
        assert guard.tripped(12)
        assert guard.trust(12, 0.0) == 0.0
        # Still bad during the cooldown: no re-trip.
        guard.update(12, mape=5.0)
        assert guard.trips == 1
        # After the cooldown a fresh excursion trips again.
        assert not guard.tripped(15)
        guard.update(15, mape=5.0)
        assert guard.trips == 2


# -- config ----------------------------------------------------------------


class TestForecastConfig:
    def test_validation(self):
        with pytest.raises(SchedulingError):
            ForecastConfig(horizon=0)
        with pytest.raises(SchedulingError):
            ForecastConfig(predictor="arima")
        with pytest.raises(SchedulingError):
            ForecastConfig(predictor="hw", period=1)
        with pytest.raises(SchedulingError):
            ForecastConfig(warmup_slots=-1)

    def test_effective_warmup(self):
        assert ForecastConfig(period=24).effective_warmup == 24
        assert ForecastConfig(predictor="ewma").effective_warmup == 8
        assert ForecastConfig(warmup_slots=3).effective_warmup == 3


# -- provider mechanics ----------------------------------------------------


class FlatPredictor:
    """Always-ready predictor returning one constant — test scaffolding."""

    def __init__(self, value: float):
        self.value = value
        self.ready = True

    def observe(self, value: float) -> None:
        pass

    def forecast(self, steps_ahead: int) -> float:
        return self.value


def two_node_topology(capacity=100.0):
    return Topology(
        [Datacenter(0), Datacenter(1)],
        [
            Link(0, 1, capacity=capacity, price=1.0),
            Link(1, 0, capacity=capacity, price=1.0),
        ],
    )


class TestForecastProvider:
    def make_provider(self, value=60.0, **config):
        config.setdefault("period", 4)
        config.setdefault("horizon", 4)
        config.setdefault("warmup_slots", 1)
        provider = ForecastProvider(
            ForecastConfig(**config),
            predictor_factory=lambda: FlatPredictor(value),
        )
        scheduler = HybridScheduler(two_node_topology(), horizon=20)
        provider.bind(scheduler.state)
        return provider, scheduler

    def test_cold_provider_reserves_nothing(self):
        provider, _ = self.make_provider()
        assert not provider.active
        provider.begin_slot(0)
        assert provider.reservation(0, 1, 2) == 0.0

    def test_warm_reservation_future_only(self):
        provider, _ = self.make_provider(value=60.0)
        provider.begin_slot(0)
        provider.observe_slot(0, [])
        assert provider.active
        provider.begin_slot(1)
        # Nothing committed, nothing observed as actual volume: trust 1.
        assert provider.trust == 1.0
        assert provider.reservation(0, 1, 2) == pytest.approx(60.0)
        # The present and the past are observed, never predicted.
        assert provider.reservation(0, 1, 1) == 0.0
        assert provider.reservation(0, 1, 0) == 0.0

    def test_reservation_bounded_by_shift_fraction(self):
        provider, _ = self.make_provider(value=500.0, max_shift_fraction=0.6)
        provider.begin_slot(0)
        provider.observe_slot(0, [])
        provider.begin_slot(1)
        # Capacity 100, fraction 0.6: a 500 GB forecast reserves 60.
        assert provider.reservation(0, 1, 2) == pytest.approx(60.0)

    def test_predicted_volume_is_the_reservation(self):
        provider, _ = self.make_provider(value=30.0)
        provider.begin_slot(0)
        provider.observe_slot(0, [])
        provider.begin_slot(1)
        assert provider.predicted_volume(0, 1, 3) == provider.reservation(0, 1, 3)

    def test_stats_shape(self):
        provider, _ = self.make_provider()
        stats = provider.stats()
        for key in ("active", "predictor", "period", "horizon", "mape",
                    "bias", "trust", "shifted_gb", "guard_trips",
                    "slots_observed", "links", "pairs", "arrival_mape"):
            assert key in stats


# -- end-to-end integration ------------------------------------------------


SLOTS_PER_DAY = 12


def run_hybrid(provider=None, num_slots=48):
    """One diurnal run with daily billing periods; returns (sched, result)."""
    topo = complete_topology(
        4, capacity=250.0, price_low=1.0, price_high=4.0, seed=3
    )
    workload = DiurnalWorkload(
        topo, max_deadline=6, peak_files=10, trough_files=1,
        slots_per_day=SLOTS_PER_DAY, seed=5,
    )
    scheduler = HybridScheduler(
        topo, horizon=num_slots + 12, on_infeasible="drop"
    )
    if provider is not None:
        scheduler.attach_forecast(provider)
    result = Simulation(
        scheduler, workload, num_slots, slots_per_period=SLOTS_PER_DAY
    ).run()
    return scheduler, result


def forecast_provider(**overrides):
    config = dict(period=SLOTS_PER_DAY, horizon=SLOTS_PER_DAY)
    config.update(overrides)
    return ForecastProvider(ForecastConfig(**config))


class TestHybridIntegration:
    def test_cold_run_is_bit_identical(self):
        """Below the warmup window the provider must be a no-op: every
        number the reactive run produces, exactly."""
        _, reactive = run_hybrid(None, num_slots=10)
        _, forecasted = run_hybrid(forecast_provider(), num_slots=10)
        assert forecasted.total_bill == reactive.total_bill
        assert forecasted.final_cost_per_slot == reactive.final_cost_per_slot
        assert forecasted.total_transit_gb == reactive.total_transit_gb
        assert [s.cost_per_slot_after for s in forecasted.slots] == [
            s.cost_per_slot_after for s in reactive.slots
        ]
        assert forecasted.forecast is not None
        assert forecasted.forecast["active"] is False

    def test_warm_run_shifts_volume_at_equal_admission(self):
        _, reactive = run_hybrid(None)
        _, forecasted = run_hybrid(forecast_provider())
        # The invariant: forecasts shape placement, never admission.
        assert forecasted.total_rejected == reactive.total_rejected
        assert forecasted.total_requests == reactive.total_requests
        # It must actually act (defer volume into quiet slots) and,
        # on clean diurnal traffic, not cost more than reacting.
        assert forecasted.forecast["shifted_gb"] > 0.0
        assert forecasted.forecast["guard_trips"] == 0
        assert forecasted.total_bill <= reactive.total_bill
        assert forecasted.max_lateness() == 0

    def test_oscillation_guard_under_injected_error(self):
        """The ISSUE's regression: with >= 30% adversarial forecast
        error alternating sign each slot, the damped controller must
        neither oscillate the bill nor change admission."""

        class AdversarialPredictor:
            """A real predictor whose forecasts swing x1.6 / x0.4."""

            def __init__(self):
                self.inner = DoubleSeasonal(SLOTS_PER_DAY)
                self.observed = 0

            @property
            def ready(self):
                return self.inner.ready

            def observe(self, value):
                self.observed += 1
                self.inner.observe(value)

            def forecast(self, steps_ahead):
                scale = 1.6 if self.observed % 2 == 0 else 0.4
                return self.inner.forecast(steps_ahead) * scale

        provider = ForecastProvider(
            ForecastConfig(period=SLOTS_PER_DAY, horizon=SLOTS_PER_DAY),
            predictor_factory=AdversarialPredictor,
        )
        _, reactive = run_hybrid(None)
        scheduler, wrong = run_hybrid(provider)
        # The injected error is real (>= 30% rolling MAPE) and damping
        # engaged (trust strictly below blind faith).
        assert wrong.forecast["mape"] >= 0.3
        assert wrong.forecast["trust"] < 1.0
        # No admission change, no deadline miss, and the bill stays in
        # a tight band around the reactive baseline instead of
        # diverging — the bounded-shift + damping stability property.
        assert wrong.total_rejected == reactive.total_rejected
        assert wrong.max_lateness() == 0
        assert wrong.total_bill <= reactive.total_bill * 1.10

    def test_hopeless_forecasts_trip_the_guard(self):
        provider = ForecastProvider(
            ForecastConfig(
                period=SLOTS_PER_DAY, horizon=SLOTS_PER_DAY,
                warmup_slots=2, trip_mape=1.0, trip_cooldown=6,
            ),
            predictor_factory=lambda: FlatPredictor(1e6),
        )
        _, reactive = run_hybrid(None)
        scheduler, wrong = run_hybrid(provider)
        assert wrong.forecast["guard_trips"] >= 1
        # While tripped the provider is inert: trust pinned to zero.
        assert wrong.forecast["trust"] == 0.0
        assert wrong.total_rejected == reactive.total_rejected
        assert wrong.max_lateness() == 0

    def test_adopt_state_rebinds_provider(self):
        scheduler, _ = run_hybrid(forecast_provider(), num_slots=12)
        provider = scheduler.forecast
        fresh = HybridScheduler(
            complete_topology(
                4, capacity=250.0, price_low=1.0, price_high=4.0, seed=3
            ),
            horizon=40, on_infeasible="drop",
        )
        fresh.attach_forecast(provider)
        fresh.adopt_state(scheduler.state)
        assert provider.bound
        # Predictor training survives the re-bind (checkpoint adoption
        # swaps the state object, not the traffic process).
        assert provider.slots_observed == 12
