"""Unit tests for the Postcard LP formulation."""

import pytest

from repro.errors import InfeasibleError, SchedulingError
from repro.core.formulation import (
    STORAGE_DESTINATION_ONLY,
    build_postcard_model,
)
from repro.core.state import NetworkState
from repro.net.generators import fig1_topology, line_topology
from repro.traffic import TransferRequest


def test_needs_requests(line3):
    state = NetworkState(line3, horizon=10)
    with pytest.raises(SchedulingError):
        build_postcard_model(state, [])


def test_unknown_storage_policy(line3):
    state = NetworkState(line3, horizon=10)
    request = TransferRequest(0, 2, 1.0, 2)
    with pytest.raises(SchedulingError):
        build_postcard_model(state, [request], storage="ram_only")


def test_single_hop_single_slot(line3):
    state = NetworkState(line3, horizon=10)
    request = TransferRequest(0, 1, 5.0, 1, release_slot=0)
    built = build_postcard_model(state, [request])
    schedule, solution = built.solve()
    assert schedule.delivered_volume(request) == pytest.approx(5.0)
    # Only link (0,1) is charged: price 1, volume 5.
    assert solution.objective == pytest.approx(5.0)


def test_deadline_one_means_direct_only(line3):
    # Two-hop route 0->1->2 takes two slots under store-and-forward,
    # so a deadline of 1 slot with no direct link is infeasible.
    state = NetworkState(line3, horizon=10)
    request = TransferRequest(0, 2, 1.0, 1, release_slot=0)
    built = build_postcard_model(state, [request])
    with pytest.raises(InfeasibleError):
        built.solve()


def test_two_hops_in_two_slots(line3):
    state = NetworkState(line3, horizon=10)
    request = TransferRequest(0, 2, 6.0, 2, release_slot=0)
    built = build_postcard_model(state, [request])
    schedule, _ = built.solve()
    schedule.validate([request], capacity_fn=state.residual_capacity)
    assert schedule.completion_slot(request) == 1


def test_splitting_over_slots_reduces_peak(line3):
    # 20 GB over a 10-capacity link with a 4-slot deadline: the optimal
    # peak is 20/4 = 5 per slot, not min(cap, burst).
    state = NetworkState(line3, horizon=10)
    request = TransferRequest(0, 1, 20.0, 4, release_slot=0)
    built = build_postcard_model(state, [request])
    schedule, solution = built.solve()
    peaks = schedule.link_slot_volumes()
    assert max(peaks.values()) == pytest.approx(5.0)
    assert solution.objective == pytest.approx(5.0)


def test_prior_charge_makes_traffic_free(line3):
    # Paid volume 7 on (0,1): sending 6 more costs nothing extra.
    state = NetworkState(line3, horizon=20)
    r0 = TransferRequest(0, 1, 7.0, 1, release_slot=0)
    built0 = build_postcard_model(state, [r0])
    schedule0, _ = built0.solve()
    state.commit(schedule0, [r0])
    cost_before = state.current_cost_per_slot()

    r1 = TransferRequest(0, 1, 6.0, 1, release_slot=5)
    built1 = build_postcard_model(state, [r1])
    _, solution1 = built1.solve()
    assert solution1.objective == pytest.approx(cost_before)


def test_capacity_residual_respected(line3):
    state = NetworkState(line3, horizon=10)
    r0 = TransferRequest(0, 1, 10.0, 1, release_slot=0)  # fills slot 0
    built0 = build_postcard_model(state, [r0])
    schedule0, _ = built0.solve()
    state.commit(schedule0, [r0])

    r1 = TransferRequest(0, 1, 10.0, 1, release_slot=0)  # same slot: no room
    with pytest.raises(InfeasibleError):
        build_postcard_model(state, [r1]).solve()


def test_fixed_charge_cost_of_untouched_links():
    # Charges on links the new request cannot reach still appear in the
    # objective as constants.
    topo = line_topology(4, capacity=10.0)
    state = NetworkState(topo, horizon=10)
    r0 = TransferRequest(2, 3, 4.0, 1, release_slot=0)
    built0 = build_postcard_model(state, [r0])
    s0, _ = built0.solve()
    state.commit(s0, [r0])

    r1 = TransferRequest(0, 1, 2.0, 1, release_slot=8)
    built1 = build_postcard_model(state, [r1])
    # Link (2,3) lies outside r1's reachable window arcs at slot 8 only
    # if variables exist per arc; either way the objective must include
    # its standing charge of 4.
    _, solution1 = built1.solve()
    assert solution1.objective == pytest.approx(4.0 + 2.0)


def test_storage_enables_cheaper_path(fig1):
    # The Fig. 1 rationale, reduced: without storage at DC 1 the relay
    # path must push 3 per slot in back-to-back slots; with storage the
    # optimum is unchanged here, but destination_only must still deliver.
    state = NetworkState(fig1, horizon=10)
    request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
    built_full = build_postcard_model(state, [request])
    _, sol_full = built_full.solve()

    state2 = NetworkState(fig1, horizon=10)
    built_hot = build_postcard_model(
        state2, [request.with_release(0)], storage=STORAGE_DESTINATION_ONLY
    )
    schedule_hot, sol_hot = built_hot.solve()
    assert sol_full.objective <= sol_hot.objective + 1e-9


def test_charged_volumes_accessor(line3):
    state = NetworkState(line3, horizon=10)
    request = TransferRequest(0, 1, 5.0, 1, release_slot=0)
    built = build_postcard_model(state, [request])
    _, solution = built.solve()
    charged = built.charged_volumes(solution)
    assert charged[(0, 1)] == pytest.approx(5.0)


def test_mixed_release_slots(line3):
    state = NetworkState(line3, horizon=20)
    r1 = TransferRequest(0, 1, 5.0, 2, release_slot=0)
    r2 = TransferRequest(1, 2, 5.0, 2, release_slot=3)
    built = build_postcard_model(state, [r1, r2])
    schedule, _ = built.solve()
    schedule.validate([r1, r2], capacity_fn=state.residual_capacity)
