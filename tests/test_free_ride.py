"""Unit tests for the free-ride accounting (time-shifting's dividend)."""

import pytest

from repro.charging import TrafficLedger
from repro.core import PostcardScheduler
from repro.flowbased import FlowBasedScheduler
from repro.net.generators import complete_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload


@pytest.fixture
def ledger(line3):
    return TrafficLedger(line3, horizon=20)


def test_idle_link_is_zero(ledger):
    assert ledger.free_ride_volume(0, 1) == 0.0
    assert ledger.free_ride_fraction() == 0.0


def test_first_peak_is_never_free(ledger):
    ledger.record(0, 1, 0, 8.0)
    assert ledger.free_ride_volume(0, 1) == 0.0


def test_later_smaller_traffic_is_free(ledger):
    ledger.record(0, 1, 0, 8.0)   # establishes the peak
    ledger.record(0, 1, 3, 5.0)   # fully under it: free
    ledger.record(0, 1, 7, 8.0)   # exactly at it: free
    assert ledger.free_ride_volume(0, 1) == pytest.approx(13.0)


def test_excess_over_peak_is_paid(ledger):
    ledger.record(0, 1, 0, 5.0)
    ledger.record(0, 1, 2, 9.0)   # 5 free, 4 raises the bill
    assert ledger.free_ride_volume(0, 1) == pytest.approx(5.0)


def test_order_matters_not_magnitude(ledger):
    # Big first, small later: almost everything later is free.
    ledger.record(0, 1, 0, 10.0)
    for slot in range(1, 6):
        ledger.record(0, 1, slot, 2.0)
    assert ledger.free_ride_volume(0, 1) == pytest.approx(10.0)
    # Reverse order on the opposite link: nothing free until the end.
    for slot in range(5):
        ledger.record(1, 0, slot, 2.0)
    ledger.record(1, 0, 5, 10.0)
    assert ledger.free_ride_volume(1, 0) == pytest.approx(2.0 * 4 + 2.0)


def test_fraction_aggregates(ledger):
    ledger.record(0, 1, 0, 10.0)
    ledger.record(0, 1, 1, 10.0)
    # 10 of 20 GB was free.
    assert ledger.free_ride_fraction() == pytest.approx(0.5)


def test_postcard_free_rides_at_least_as_much_as_flow():
    """The mechanism behind Figs. 6-7: under limited capacity the
    store-and-forward optimizer shifts more traffic under existing
    peaks than the constant-rate flow model can."""
    topo = complete_topology(6, capacity=30.0, seed=18)

    def run(factory):
        scheduler = factory()
        workload = PaperWorkload(topo, max_deadline=6, max_files=5, seed=12)
        Simulation(scheduler, workload, num_slots=8).run()
        return scheduler.state.ledger.free_ride_fraction()

    postcard = run(lambda: PostcardScheduler(topo, 30, on_infeasible="drop"))
    flow = run(lambda: FlowBasedScheduler(topo, 30, on_infeasible="drop"))
    assert postcard >= flow - 0.05
    assert postcard > 0.2  # time-shifting is actually happening
