"""Unit tests for topology generators."""

import pytest

from repro.errors import TopologyError
from repro.net.generators import (
    complete_topology,
    custom_topology,
    fig1_topology,
    fig3_topology,
    line_topology,
    paper_topology,
    ring_topology,
    star_topology,
    two_region_topology,
)


def test_complete_topology_shape():
    topo = complete_topology(6, capacity=30.0, seed=0)
    assert topo.num_datacenters == 6
    assert topo.num_links == 30
    assert topo.is_complete()


def test_complete_topology_price_range():
    topo = complete_topology(8, capacity=30.0, price_low=2.0, price_high=3.0, seed=1)
    assert all(2.0 <= l.price <= 3.0 for l in topo.links)


def test_complete_topology_deterministic():
    a = complete_topology(5, capacity=30.0, seed=7)
    b = complete_topology(5, capacity=30.0, seed=7)
    assert [l.price for l in a.links] == [l.price for l in b.links]
    c = complete_topology(5, capacity=30.0, seed=8)
    assert [l.price for l in a.links] != [l.price for l in c.links]


def test_complete_topology_symmetric_prices():
    topo = complete_topology(5, capacity=30.0, seed=3, symmetric_prices=True)
    for link in topo.links:
        assert link.price == topo.link(link.dst, link.src).price


def test_complete_topology_validation():
    with pytest.raises(TopologyError):
        complete_topology(1, capacity=10.0)
    with pytest.raises(TopologyError):
        complete_topology(3, capacity=10.0, price_low=5.0, price_high=2.0)


def test_paper_topology_matches_section7():
    topo = paper_topology(capacity=100.0, seed=0)
    assert topo.num_datacenters == 20
    assert topo.num_links == 380
    assert all(1.0 <= l.price <= 10.0 for l in topo.links)
    assert all(l.capacity == 100.0 for l in topo.links)


def test_fig1_topology():
    topo = fig1_topology()
    assert topo.num_datacenters == 3
    assert topo.link(2, 3).price == 10.0
    assert topo.link(2, 1).price == 1.0
    assert topo.link(1, 3).price == 3.0
    assert topo.link(1, 3).capacity == float("inf")


def test_fig3_topology():
    topo = fig3_topology()
    assert topo.num_datacenters == 4
    assert topo.num_links == 12
    assert all(l.capacity == 5.0 for l in topo.links)
    assert topo.link(2, 4).price == 11.0
    assert topo.link(1, 4).price == topo.link(4, 1).price == 6.0


def test_line_topology_unidirectional():
    topo = line_topology(4, capacity=10.0, bidirectional=False)
    assert topo.num_links == 3
    assert not topo.is_strongly_connected()


def test_ring_topology():
    topo = ring_topology(5, capacity=10.0)
    assert topo.num_links == 10
    assert topo.is_strongly_connected()
    with pytest.raises(TopologyError):
        ring_topology(2, capacity=10.0)


def test_star_topology():
    topo = star_topology(4, capacity=10.0)
    assert topo.num_datacenters == 5
    assert topo.num_links == 8
    assert topo.datacenter(0).name == "hub"
    # Leaves only connect via the hub.
    assert not topo.has_link(1, 2)
    with pytest.raises(TopologyError):
        star_topology(1, capacity=10.0)


def test_two_region_topology_price_structure():
    topo = two_region_topology(3, capacity=10.0, intra_price=1.0, inter_price=8.0, seed=0)
    assert topo.num_datacenters == 6
    assert topo.is_complete()
    intra = topo.link(0, 1).price
    inter = topo.link(0, 3).price
    assert intra < inter
    assert topo.datacenter(0).region == "east"
    assert topo.datacenter(5).region == "west"


def test_custom_topology():
    topo = custom_topology(3, price_fn=lambda s, d: s + d, capacity=5.0)
    assert topo.num_links == 6
    assert topo.link(1, 2).price == 3.0
    sparse = custom_topology(
        3, price_fn=lambda s, d: 1.0, capacity=5.0, pairs=[(0, 1), (1, 2)]
    )
    assert sparse.num_links == 2
