"""Unit tests for the greedy store-and-forward heuristic."""

import pytest

from repro.errors import InfeasibleError, SchedulingError
from repro.baselines import GreedyStoreAndForwardScheduler
from repro.core import PostcardScheduler
from repro.net.generators import complete_topology, fig1_topology, line_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TransferRequest


def test_parameters_validated(line3):
    with pytest.raises(SchedulingError):
        GreedyStoreAndForwardScheduler(line3, 10, num_candidate_paths=0)
    with pytest.raises(SchedulingError):
        GreedyStoreAndForwardScheduler(line3, 10, on_infeasible="shrug")


def test_single_hop_even_spread(line3):
    scheduler = GreedyStoreAndForwardScheduler(line3, horizon=20)
    request = TransferRequest(0, 1, 8.0, 4, release_slot=0)
    schedule = scheduler.on_slot(0, [request])
    schedule.validate([request])
    # With no paid headroom, pass 2 spreads evenly: peak 2 GB/slot.
    volumes = schedule.link_slot_volumes()
    assert max(volumes.values()) == pytest.approx(2.0)
    assert scheduler.state.current_cost_per_slot() == pytest.approx(2.0)


def test_relay_path_chosen_when_cheaper():
    scheduler = GreedyStoreAndForwardScheduler(fig1_topology(), horizon=20)
    request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
    schedule = scheduler.on_slot(0, [request])
    schedule.validate([request])
    links = {(e.src, e.dst) for e in schedule.transit_entries()}
    assert links == {(2, 1), (1, 3)}
    # Matches the paper's hand-optimized 12 (the LP finds 12 too).
    assert scheduler.state.current_cost_per_slot() == pytest.approx(12.0)


def test_headroom_reused_for_free(line3):
    scheduler = GreedyStoreAndForwardScheduler(line3, horizon=30)
    r0 = TransferRequest(0, 1, 8.0, 2, release_slot=0)  # pays peak 4
    scheduler.on_slot(0, [r0])
    cost_before = scheduler.state.current_cost_per_slot()
    # 8 GB over 4 slots fits entirely in the paid 4/slot headroom.
    r1 = TransferRequest(0, 1, 8.0, 4, release_slot=3)
    scheduler.on_slot(3, [r1])
    assert scheduler.state.current_cost_per_slot() == pytest.approx(cost_before)


def test_never_better_than_lp():
    topo = complete_topology(5, capacity=30.0, seed=8)
    requests = [
        TransferRequest(0, 1, 20.0, 3, release_slot=0),
        TransferRequest(1, 2, 25.0, 4, release_slot=0),
        TransferRequest(3, 4, 15.0, 3, release_slot=0),
    ]
    greedy = GreedyStoreAndForwardScheduler(topo, horizon=20)
    greedy.on_slot(0, [r.with_release(0) for r in requests])
    lp = PostcardScheduler(topo, horizon=20)
    lp.on_slot(0, [r.with_release(0) for r in requests])
    assert (
        lp.state.current_cost_per_slot()
        <= greedy.state.current_cost_per_slot() + 1e-6
    )


def test_deadline_too_short_for_any_path(line3):
    scheduler = GreedyStoreAndForwardScheduler(line3, horizon=10)
    # 0 -> 2 needs two hops; deadline 1 slot leaves no usable path.
    request = TransferRequest(0, 2, 1.0, 1, release_slot=0)
    with pytest.raises(InfeasibleError):
        scheduler.on_slot(0, [request])


def test_drop_policy(line3):
    scheduler = GreedyStoreAndForwardScheduler(line3, horizon=10, on_infeasible="drop")
    impossible = TransferRequest(0, 2, 1.0, 1, release_slot=0)
    fine = TransferRequest(0, 1, 4.0, 2, release_slot=0)
    schedule = scheduler.on_slot(0, [impossible, fine])
    assert scheduler.state.rejected == [impossible]
    assert schedule.delivered_volume(fine) == pytest.approx(4.0)


def test_release_mismatch(line3):
    scheduler = GreedyStoreAndForwardScheduler(line3, horizon=10)
    with pytest.raises(SchedulingError):
        scheduler.on_slot(0, [TransferRequest(0, 1, 1.0, 1, release_slot=2)])


def test_full_simulation_audits_clean():
    topo = complete_topology(6, capacity=30.0, seed=10)
    scheduler = GreedyStoreAndForwardScheduler(topo, horizon=30, on_infeasible="drop")
    workload = PaperWorkload(topo, max_deadline=5, max_files=5, seed=4)
    result = Simulation(scheduler, workload, num_slots=8).run()
    assert result.max_lateness() == 0
    assert result.acceptance_rate > 0.5


def test_much_faster_than_lp_at_scale():
    topo = complete_topology(10, capacity=30.0, seed=11)
    workload = PaperWorkload(topo, max_deadline=6, max_files=10, seed=5)
    import time

    greedy = GreedyStoreAndForwardScheduler(topo, horizon=30, on_infeasible="drop")
    t0 = time.perf_counter()
    Simulation(greedy, workload, num_slots=4).run()
    greedy_time = time.perf_counter() - t0

    lp = PostcardScheduler(topo, horizon=30, on_infeasible="drop")
    t0 = time.perf_counter()
    Simulation(lp, PaperWorkload(topo, max_deadline=6, max_files=10, seed=5), num_slots=4).run()
    lp_time = time.perf_counter() - t0
    assert greedy_time < lp_time
