"""Property-based feasibility tests for the greedy heuristic.

Whatever the instance, a schedule the heuristic *does* produce must be
fully feasible (delivery, deadlines, conservation, capacity), and its
cost must never beat the LP optimum on the same cold instance.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import InfeasibleError
from repro.baselines import GreedyStoreAndForwardScheduler
from repro.core import PostcardScheduler
from repro.net.generators import complete_topology
from repro.traffic import TransferRequest


@st.composite
def instances(draw):
    num_dcs = draw(st.integers(3, 6))
    capacity = draw(st.sampled_from([15.0, 30.0, 60.0]))
    seed = draw(st.integers(0, 30))
    count = draw(st.integers(1, 4))
    requests = []
    for _ in range(count):
        src = draw(st.integers(0, num_dcs - 1))
        dst = draw(st.integers(0, num_dcs - 1))
        if dst == src:
            dst = (src + 1) % num_dcs
        size = draw(st.integers(2, 40))
        deadline = draw(st.integers(1, 6))
        requests.append(TransferRequest(src, dst, float(size), deadline, release_slot=0))
    return num_dcs, capacity, seed, requests


@settings(max_examples=30, deadline=None)
@given(instances())
def test_greedy_schedules_are_feasible(instance):
    num_dcs, capacity, seed, requests = instance
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)
    scheduler = GreedyStoreAndForwardScheduler(topo, horizon=30)
    try:
        schedule = scheduler.on_slot(0, requests)
    except InfeasibleError:
        assume(False)
        return
    # commit() already validated against residual capacity; re-audit
    # the merged schedule independently against raw link capacity.
    schedule.validate(
        requests,
        capacity_fn=lambda s, d, n: topo.link(s, d).capacity,
    )
    for request in requests:
        assert request.request_id in scheduler.state.completions
        assert scheduler.state.completions[request.request_id] <= request.last_slot


@settings(max_examples=20, deadline=None)
@given(instances())
def test_greedy_never_beats_lp(instance):
    num_dcs, capacity, seed, requests = instance
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)

    greedy = GreedyStoreAndForwardScheduler(topo, horizon=30)
    try:
        greedy.on_slot(0, [r.with_release(0) for r in requests])
    except InfeasibleError:
        assume(False)
        return

    lp = PostcardScheduler(topo, horizon=30)
    lp.on_slot(0, [r.with_release(0) for r in requests])
    assert (
        lp.state.current_cost_per_slot()
        <= greedy.state.current_cost_per_slot() + 1e-6
    )
