"""Unit tests for the fast-lane heuristic scheduler (PR 4).

Covers the utilization tracker's accounting, the candidate-path cache,
the ALAP placement rule (bytes land in the slots nearest the deadline),
headroom-first behavior, admission rejections, and the scheduler's
integration with the simulation engine and registry.
"""

import pytest

from repro.errors import InfeasibleError, SchedulingError
from repro.core.schedule import TransferSchedule
from repro.core.state import NetworkState
from repro.heuristic import (
    CandidatePathIndex,
    FastLaneScheduler,
    UtilizationTracker,
)
from repro.net.generators import complete_topology
from repro.net.topology import Datacenter, Link, Topology
from repro.registry import make_scheduler, scheduler_names
from repro.sim.engine import Simulation
from repro.timeexp.graph import ArcKind
from repro.traffic.spec import TransferRequest
from repro.traffic.workload import PaperWorkload


def two_node_topology(capacity=10.0, price=1.0):
    return Topology(
        [Datacenter(0), Datacenter(1)],
        [
            Link(0, 1, capacity=capacity, price=price),
            Link(1, 0, capacity=capacity, price=price),
        ],
    )


# -- UtilizationTracker ---------------------------------------------------


def test_tracker_layers_pending_over_state():
    topo = two_node_topology(capacity=10.0)
    state = NetworkState(topo, horizon=10)
    tracker = UtilizationTracker(state)
    assert tracker.residual(0, 1, 0) == 10.0
    assert tracker.utilization(0, 1, 0) == 0.0

    tracker.add(0, 1, 0, 4.0)
    assert tracker.pending(0, 1, 0) == 4.0
    assert tracker.residual(0, 1, 0) == 6.0
    assert tracker.utilization(0, 1, 0) == pytest.approx(0.4)
    assert tracker.peak_utilization() == pytest.approx(0.4)

    tracker.reset()
    assert tracker.pending(0, 1, 0) == 0.0
    assert tracker.peak_utilization() == 0.0


def test_tracker_headroom_tracks_paid_peak():
    topo = two_node_topology(capacity=10.0)
    state = NetworkState(topo, horizon=10)
    tracker = UtilizationTracker(state)
    # Nothing paid yet: no free headroom anywhere.
    assert tracker.headroom(0, 1, 3) == 0.0

    # Commit 6 GB at slot 0 -> X_01 = 6; slots 1.. have 6 GB free.
    scheduler = FastLaneScheduler(topo, horizon=10, state=state)
    request = TransferRequest(0, 1, 6.0, 1, release_slot=0)
    scheduler.on_slot(0, [request])
    assert state.charged_volume(0, 1) == pytest.approx(6.0)
    assert tracker.headroom(0, 1, 1) == pytest.approx(6.0)
    # Pending volume eats into the free allowance.
    tracker.add(0, 1, 1, 2.0)
    assert tracker.headroom(0, 1, 1) == pytest.approx(4.0)


# -- CandidatePathIndex ---------------------------------------------------


def test_candidate_paths_cheapest_first_and_cached():
    topo = complete_topology(5, capacity=30.0, seed=1)
    index = CandidatePathIndex(topo, max_paths=3)
    paths = index.candidates(0, 3, max_hops=4)
    assert paths and all(p[0] == 0 and p[-1] == 3 for p in paths)

    def price(path):
        return sum(
            topo.link(a, b).price for a, b in zip(path, path[1:])
        )

    assert price(paths[0]) == min(price(p) for p in paths)
    assert len(index) == 1
    # Deadline filtering: 1 hop max leaves only the direct path.
    short = index.candidates(0, 3, max_hops=1)
    assert short == [[0, 3]]
    assert len(index) == 1  # served from cache


def test_candidate_paths_unreachable_pair():
    # A line topology has no path backwards from the last node when
    # only forward links exist?  line_topology is bidirectional, so
    # build an explicitly one-way pair instead.
    topo = Topology(
        [Datacenter(0), Datacenter(1)],
        [Link(0, 1, capacity=5.0, price=1.0)],
    )
    index = CandidatePathIndex(topo)
    assert index.candidates(1, 0, max_hops=3) == []


# -- ALAP placement -------------------------------------------------------


def test_single_hop_placement_is_as_late_as_possible():
    topo = two_node_topology(capacity=10.0)
    scheduler = FastLaneScheduler(topo, horizon=20)
    # 10 GB over a 4-slot window on a 10 GB/slot link: pure ALAP puts
    # everything in the final window slot.
    request = TransferRequest(0, 1, 10.0, 4, release_slot=0)
    schedule = scheduler.on_slot(0, [request])
    volumes = schedule.link_slot_volumes()
    assert volumes == {(0, 1, request.last_slot): pytest.approx(10.0)}


def test_oversized_file_spills_backward_from_deadline():
    topo = two_node_topology(capacity=10.0)
    scheduler = FastLaneScheduler(topo, horizon=20)
    # 25 GB through a 10 GB/slot link: slots 3, 2 fill completely and
    # slot 1 takes the 5 GB remainder; slot 0 stays free.
    request = TransferRequest(0, 1, 25.0, 4, release_slot=0)
    schedule = scheduler.on_slot(0, [request])
    volumes = schedule.link_slot_volumes()
    assert volumes[(0, 1, 3)] == pytest.approx(10.0)
    assert volumes[(0, 1, 2)] == pytest.approx(10.0)
    assert volumes[(0, 1, 1)] == pytest.approx(5.0)
    assert (0, 1, 0) not in volumes


def test_headroom_first_prefers_paid_slots():
    topo = two_node_topology(capacity=10.0)
    scheduler = FastLaneScheduler(topo, horizon=20)
    # First file sets the paid peak X_01 = 8 at its deadline slot 1.
    scheduler.on_slot(0, [TransferRequest(0, 1, 8.0, 2, release_slot=0)])
    assert scheduler.state.charged_volume(0, 1) == pytest.approx(8.0)
    # Second file (6 GB, window 1..3): the free pass should ride the
    # paid headroom of the *latest* free slots (2 GB left at slot 1 is
    # the only committed slot; slots 2, 3 are fully free up to 8 GB).
    schedule = scheduler.on_slot(1, [TransferRequest(0, 1, 6.0, 3, release_slot=1)])
    volumes = schedule.link_slot_volumes()
    # Everything fits under the paid peak in the last window slot: the
    # bill must not grow.
    assert scheduler.state.charged_volume(0, 1) == pytest.approx(8.0)
    assert volumes == {(0, 1, 3): pytest.approx(6.0)}


def test_multi_hop_emits_holdover_and_meets_deadline():
    # Force a 2-hop relay: no direct link from 0 to 2.
    topo = Topology(
        [Datacenter(0), Datacenter(1), Datacenter(2)],
        [
            Link(0, 1, capacity=10.0, price=1.0),
            Link(1, 2, capacity=10.0, price=1.0),
        ],
    )
    scheduler = FastLaneScheduler(topo, horizon=20)
    request = TransferRequest(0, 2, 10.0, 4, release_slot=0)
    schedule = scheduler.on_slot(0, [request])
    # Delivered in full, on time, with conservation intact.  Validate
    # against raw capacity: on_slot already committed the volumes, so
    # the state's residual view no longer covers this schedule.
    schedule.validate(
        [request], capacity_fn=lambda s, d, n: topo.link(s, d).capacity
    )
    completion = scheduler.state.completions[request.request_id]
    assert completion <= request.last_slot
    # ALAP: the final hop lands on the last window slot.
    last_hop_slots = [
        e.slot for e in schedule.transit_entries() if e.dst == 2
    ]
    assert max(last_hop_slots) == request.last_slot
    # The source parks data before the first hop departs.
    assert any(e.kind is ArcKind.HOLDOVER for e in schedule.entries)


def test_infeasible_request_rejected_or_raised():
    topo = two_node_topology(capacity=10.0)
    # 50 GB in 2 slots through a 10 GB/slot pair: inadmissible.
    request = TransferRequest(0, 1, 50.0, 2, release_slot=0)

    raising = FastLaneScheduler(topo, horizon=20, on_infeasible="raise")
    with pytest.raises(InfeasibleError):
        raising.on_slot(0, [request])

    dropping = FastLaneScheduler(topo, horizon=20, on_infeasible="drop")
    schedule = dropping.on_slot(0, [TransferRequest(0, 1, 50.0, 2, release_slot=0)])
    assert not schedule
    assert len(dropping.state.rejected) == 1


def test_wrong_release_slot_raises():
    topo = two_node_topology()
    scheduler = FastLaneScheduler(topo, horizon=10)
    with pytest.raises(SchedulingError):
        scheduler.on_slot(1, [TransferRequest(0, 1, 1.0, 2, release_slot=0)])


def test_unknown_policy_rejected():
    with pytest.raises(SchedulingError):
        FastLaneScheduler(two_node_topology(), horizon=10, on_infeasible="shrug")


def test_empty_slot_returns_empty_schedule():
    scheduler = FastLaneScheduler(two_node_topology(), horizon=10)
    assert not scheduler.on_slot(0, [])


class _StubTracker:
    """Capacity views with hand-set per-link-slot values.

    ``residual``/``headroom`` answer from the given dicts (with a
    default), so a test can recreate an exact capacity landscape
    without staging filler commits.
    """

    def __init__(self, residual, headroom, default_residual=100.0):
        self._residual = residual
        self._headroom = headroom
        self._default = default_residual

    def residual(self, src, dst, slot):
        return self._residual.get((src, dst, slot), self._default)

    def headroom(self, src, dst, slot):
        return self._headroom.get((src, dst, slot), 0.0)


def test_two_pass_placement_respects_every_due_cutoff():
    # Regression: the ALAP sweep checks the lateness budget only at the
    # slot being filled.  Within one descending pass that cutoff is the
    # binding one, but when the *paid* pass (second) tops up a slot
    # above volume the *free* pass (first) already parked, the budget
    # at the lower cutoffs was partially spent — and the top-up used to
    # overdraw it, producing a relay that sends volume before it
    # arrives (conservation violation at the intermediate node).
    topo = Topology(
        [Datacenter(0), Datacenter(1), Datacenter(2)],
        [
            Link(0, 1, capacity=100.0, price=1.0),
            Link(1, 2, capacity=100.0, price=1.0),
        ],
    )
    scheduler = FastLaneScheduler(topo, horizon=20)
    # Relay hop 1->2: mid-window slot nearly choked, late slot partial,
    # early slot open — so its ALAP sends are early-heavy and hop 0->1
    # owes {0: 3.88, 1: 0.33, 2: 5.27}.  Hop 0->1 then has 2.6 GB of
    # free headroom per slot: the free pass parks 2.6 at slot 1 (far
    # over the 0.33 due there), and the paid top-up at slot 2 must not
    # pretend that budget is still available.
    scheduler._tracker = _StubTracker(
        residual={(1, 2, 2): 0.33, (1, 2, 3): 5.27},
        headroom={(0, 1, n): 2.6 for n in range(3)},
    )
    request = TransferRequest(0, 2, 9.48, 4, release_slot=0)
    entries = scheduler._plan_on_path([0, 1, 2], request, headroom_first=True)
    assert entries is not None
    schedule = TransferSchedule(entries)
    schedule.validate([request])  # raised SchedulingError before the fix
    assert schedule.delivered_volume(request) == pytest.approx(9.48)


# -- tentative planning (plan_slot) ---------------------------------------


def test_plan_slot_commits_nothing():
    topo = two_node_topology(capacity=10.0)
    scheduler = FastLaneScheduler(topo, horizon=20)
    plan = scheduler.plan_slot(0, [TransferRequest(0, 1, 5.0, 2, release_slot=0)])
    assert plan.admitted == 1 and not plan.rejected
    assert plan.peak_utilization == pytest.approx(0.5)
    assert scheduler.state.ledger.total_volume() == 0.0
    assert not scheduler.state.completions
    # Committing the same plan later applies it.
    schedule = scheduler.commit_plan(plan)
    assert schedule.total_transit_volume() == pytest.approx(5.0)
    assert scheduler.state.ledger.total_volume() == pytest.approx(5.0)


def test_plan_slot_orders_tightest_deadline_first():
    topo = two_node_topology(capacity=10.0)
    scheduler = FastLaneScheduler(topo, horizon=20, on_infeasible="drop")
    # The loose file saturates all four window slots; if it were
    # planned first, the tight file (which needs slot 0 entirely) would
    # be squeezed out.  Tightest-deadline-first admits the tight file
    # and rejects the loose one instead.
    loose = TransferRequest(0, 1, 40.0, 4, release_slot=0)
    tight = TransferRequest(0, 1, 10.0, 1, release_slot=0)
    plan = scheduler.plan_slot(0, [loose, tight])
    assert plan.admitted == 1
    assert plan.rejected == [loose]
    assert plan.plans[0][0] is tight


# -- integration ----------------------------------------------------------


def test_registry_and_simulation_integration():
    assert "heuristic" in scheduler_names()
    topo = complete_topology(6, capacity=30.0, seed=3)
    scheduler = make_scheduler("heuristic", topo, horizon=12)
    workload = PaperWorkload(topo, max_deadline=3, max_files=4, seed=7)
    result = Simulation(scheduler, workload, 8).run()  # audit on
    assert result.total_requests > 0
    assert result.max_lateness() == 0
    assert result.escalations == 0 and result.fast_slots == 0


def test_fastlane_never_beats_lp_on_cold_instance(small_complete):
    from repro.core import PostcardScheduler

    requests = [
        TransferRequest(0, 1, 20.0, 3, release_slot=0),
        TransferRequest(1, 4, 35.0, 4, release_slot=0),
        TransferRequest(2, 3, 10.0, 2, release_slot=0),
    ]
    fast = FastLaneScheduler(small_complete, horizon=20)
    fast.on_slot(0, [r.with_release(0) for r in requests])
    lp = PostcardScheduler(small_complete, horizon=20)
    lp.on_slot(0, [r.with_release(0) for r in requests])
    assert (
        lp.state.current_cost_per_slot()
        <= fast.state.current_cost_per_slot() + 1e-6
    )
