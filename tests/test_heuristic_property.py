"""Property-based deadline-guarantee tests for the fast lane (PR 4).

The fast lane's core promise: whatever it *admits*, it delivers — in
full, by the deadline, conserving flow at every relay, and within raw
link capacity.  Rejections are allowed (the admission test is
conservative); lateness never is.  Multi-slot arrival streams exercise
the headroom-first interaction with previously committed load.
"""

from hypothesis import given, settings, strategies as st

from repro.heuristic import FastLaneScheduler
from repro.net.generators import complete_topology
from repro.traffic import TransferRequest


@st.composite
def instances(draw):
    num_dcs = draw(st.integers(3, 6))
    capacity = draw(st.sampled_from([15.0, 30.0, 60.0]))
    seed = draw(st.integers(0, 30))
    count = draw(st.integers(1, 4))
    requests = []
    for _ in range(count):
        src = draw(st.integers(0, num_dcs - 1))
        dst = draw(st.integers(0, num_dcs - 1))
        if dst == src:
            dst = (src + 1) % num_dcs
        size = draw(st.integers(2, 40))
        deadline = draw(st.integers(1, 6))
        requests.append(TransferRequest(src, dst, float(size), deadline, release_slot=0))
    return num_dcs, capacity, seed, requests


@st.composite
def streams(draw):
    """A multi-slot arrival stream: slot -> released requests."""
    num_dcs = draw(st.integers(3, 5))
    capacity = draw(st.sampled_from([15.0, 30.0]))
    seed = draw(st.integers(0, 30))
    num_slots = draw(st.integers(2, 4))
    by_slot = {}
    for slot in range(num_slots):
        count = draw(st.integers(0, 3))
        released = []
        for _ in range(count):
            src = draw(st.integers(0, num_dcs - 1))
            dst = draw(st.integers(0, num_dcs - 1))
            if dst == src:
                dst = (src + 1) % num_dcs
            size = draw(st.integers(2, 40))
            deadline = draw(st.integers(1, 5))
            released.append(
                TransferRequest(src, dst, float(size), deadline, release_slot=slot)
            )
        by_slot[slot] = released
    return num_dcs, capacity, seed, by_slot


@settings(max_examples=30, deadline=None)
@given(instances())
def test_admitted_requests_always_meet_deadlines(instance):
    num_dcs, capacity, seed, requests = instance
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)
    scheduler = FastLaneScheduler(topo, horizon=30, on_infeasible="drop")
    schedule = scheduler.on_slot(0, requests)

    rejected_ids = {r.request_id for r in scheduler.state.rejected}
    admitted = [r for r in requests if r.request_id not in rejected_ids]
    assert len(admitted) + len(rejected_ids) == len(requests)

    # Independent re-audit against raw capacity: full delivery,
    # in-window movement, store-and-forward conservation.
    schedule.validate(
        admitted,
        capacity_fn=lambda s, d, n: topo.link(s, d).capacity,
    )
    for request in admitted:
        completed = scheduler.state.completions[request.request_id]
        assert completed <= request.last_slot
    # No entry may reference a rejected file.
    assert not [e for e in schedule.entries if e.request_id in rejected_ids]


@settings(max_examples=25, deadline=None)
@given(streams())
def test_streamed_admissions_never_violate_deadlines_or_capacity(stream):
    num_dcs, capacity, seed, by_slot = stream
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)
    scheduler = FastLaneScheduler(topo, horizon=30, on_infeasible="drop")

    merged = None
    for slot in sorted(by_slot):
        schedule = scheduler.on_slot(slot, by_slot[slot])
        merged = schedule if merged is None else merged.merge(schedule)

    all_requests = [r for released in by_slot.values() for r in released]
    rejected_ids = {r.request_id for r in scheduler.state.rejected}
    admitted = [r for r in all_requests if r.request_id not in rejected_ids]

    # Every admitted file completes on time...
    for request in admitted:
        completed = scheduler.state.completions[request.request_id]
        assert completed <= request.last_slot
    # ...and the merged traffic of all slots respects raw capacity and
    # per-file feasibility (this is where headroom-first placement over
    # already committed load could overbook a link if it were wrong).
    merged.validate(
        admitted,
        capacity_fn=lambda s, d, n: topo.link(s, d).capacity,
    )


@settings(max_examples=25, deadline=None)
@given(instances())
def test_plan_then_commit_equals_on_slot(instance):
    """plan_slot + commit_plan (the hybrid's fast path) is on_slot."""
    num_dcs, capacity, seed, requests = instance
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)

    direct = FastLaneScheduler(topo, horizon=30, on_infeasible="drop")
    schedule_a = direct.on_slot(0, [r.with_release(0) for r in requests])

    staged = FastLaneScheduler(topo, horizon=30, on_infeasible="drop")
    plan = staged.plan_slot(0, [r.with_release(0) for r in requests])
    schedule_b = staged.commit_plan(plan)

    assert schedule_a.link_slot_volumes() == schedule_b.link_slot_volumes()
    assert (
        direct.state.current_cost_per_slot()
        == staged.state.current_cost_per_slot()
    )
