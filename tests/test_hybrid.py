"""Tests for the hybrid fast-lane/LP scheduler (PR 4).

Covers the two escalation triggers (rejection, utilization pressure),
the shared-state contract between the lanes, the simulation engine's
lane-split reporting, and a cost regression pin: on the default 10-DC
scenario the hybrid must stay within a fixed factor of the Postcard LP
(and the pure fast lane within a looser one).
"""

import pytest

from repro.errors import SchedulingError
from repro.core import PostcardScheduler
from repro.heuristic import FastLaneScheduler, HybridScheduler
from repro.net.generators import complete_topology
from repro.registry import make_scheduler
from repro.sim.engine import Simulation
from repro.net.topology import Datacenter, Link, Topology
from repro.traffic.spec import TransferRequest
from repro.traffic.workload import PaperWorkload


def two_node_topology(capacity=10.0):
    return Topology(
        [Datacenter(0), Datacenter(1)],
        [
            Link(0, 1, capacity=capacity, price=1.0),
            Link(1, 0, capacity=capacity, price=1.0),
        ],
    )


# -- escalation triggers --------------------------------------------------


def test_relaxed_slot_stays_in_fast_lane():
    topo = two_node_topology(capacity=10.0)
    scheduler = HybridScheduler(topo, horizon=20)
    # 2 GB over 4 slots: 20% peak utilization, no rejection.
    scheduler.on_slot(0, [TransferRequest(0, 1, 2.0, 4, release_slot=0)])
    assert scheduler.fast_slots == 1
    assert scheduler.escalations == 0


def test_utilization_pressure_escalates():
    topo = two_node_topology(capacity=10.0)
    scheduler = HybridScheduler(topo, horizon=20, escalate_utilization=0.9)
    # 9.5 GB in a 1-slot window: 95% utilization on the planned cell.
    scheduler.on_slot(0, [TransferRequest(0, 1, 9.5, 1, release_slot=0)])
    assert scheduler.escalations == 1
    assert scheduler.fast_slots == 0
    # The LP lane committed it: delivered on time, nothing rejected.
    assert len(scheduler.state.completions) == 1
    assert not scheduler.state.rejected


def test_high_threshold_disables_pressure_trigger():
    topo = two_node_topology(capacity=10.0)
    scheduler = HybridScheduler(topo, horizon=20, escalate_utilization=2.0)
    scheduler.on_slot(0, [TransferRequest(0, 1, 9.5, 1, release_slot=0)])
    assert scheduler.escalations == 0
    assert scheduler.fast_slots == 1


def test_fastlane_rejection_escalates():
    topo = two_node_topology(capacity=10.0)
    # 25 GB in a 2-slot window overflows the 10 GB/slot link: the fast
    # lane cannot admit it, so the slot escalates to the LP regardless
    # of the (disabled) utilization trigger.  The LP cannot fit it
    # either, and the drop policy records the rejection.
    scheduler = HybridScheduler(
        topo, horizon=20, escalate_utilization=2.0, on_infeasible="drop"
    )
    scheduler.on_slot(0, [TransferRequest(0, 1, 25.0, 2, release_slot=0)])
    assert scheduler.escalations == 1
    assert scheduler.fast_slots == 0
    assert len(scheduler.state.rejected) == 1


def test_rejection_trigger_can_be_disabled():
    topo = two_node_topology(capacity=10.0)
    scheduler = HybridScheduler(
        topo,
        horizon=20,
        escalate_utilization=2.0,
        escalate_on_rejection=False,
        on_infeasible="drop",
    )
    scheduler.on_slot(0, [TransferRequest(0, 1, 25.0, 2, release_slot=0)])
    assert scheduler.escalations == 0
    assert scheduler.fast_slots == 1
    assert len(scheduler.state.rejected) == 1


def test_invalid_threshold_rejected():
    with pytest.raises(SchedulingError):
        HybridScheduler(two_node_topology(), horizon=10, escalate_utilization=0.0)


# -- shared state ---------------------------------------------------------


def test_lanes_share_one_ledger():
    topo = two_node_topology(capacity=10.0)
    scheduler = HybridScheduler(topo, horizon=20, escalate_utilization=0.5)
    assert scheduler.state is scheduler.fast_lane.state
    assert scheduler.state is scheduler.lp_lane.state

    # Fast-lane slot (40% utilization), then a pressured slot (ALAP
    # stacks 5 GB on the 4 GB already committed at slot 1 -> 90%): the
    # escalated LP must see, and schedule around, the fast lane's
    # committed traffic.
    scheduler.on_slot(0, [TransferRequest(0, 1, 4.0, 2, release_slot=0)])
    assert scheduler.fast_slots == 1
    scheduler.on_slot(1, [TransferRequest(0, 1, 5.0, 1, release_slot=1)])
    assert scheduler.escalations == 1
    assert len(scheduler.state.completions) == 2
    # One bill covering both lanes' traffic.
    assert scheduler.state.ledger.total_volume() == pytest.approx(9.0)


def test_empty_slot_is_free():
    scheduler = HybridScheduler(two_node_topology(), horizon=10)
    assert not scheduler.on_slot(0, [])
    assert scheduler.escalations == 0 and scheduler.fast_slots == 0


# -- engine integration ---------------------------------------------------


def test_simulation_reports_lane_split():
    topo = complete_topology(6, capacity=30.0, seed=5)
    scheduler = make_scheduler("hybrid", topo, horizon=14)
    workload = PaperWorkload(topo, max_deadline=3, max_files=6, seed=9)
    result = Simulation(scheduler, workload, 10).run()  # audit on
    assert result.max_lateness() == 0
    assert result.escalations == scheduler.escalations
    assert result.fast_slots == scheduler.fast_slots
    assert result.escalations + result.fast_slots > 0


# -- cost regression pin --------------------------------------------------


@pytest.fixture(scope="module")
def default_scenario_costs():
    """LP, hybrid, and pure fast-lane costs on the default 10-DC scenario.

    Mirrors the smoke-scale bench setting (fig4 shape): complete
    10-DC topology at 100 GB/slot, Sec. VII workload with max T=3,
    12 slots, horizon 15.
    """
    costs = {}
    for name in ("postcard", "hybrid", "heuristic"):
        topo = complete_topology(10, capacity=100.0, seed=2012)
        workload = PaperWorkload(topo, max_deadline=3, max_files=10, seed=3012)
        scheduler = make_scheduler(name, topo, horizon=15)
        result = Simulation(scheduler, workload, 12).run()
        assert result.total_rejected == 0
        assert result.max_lateness() == 0
        costs[name] = result.final_cost_per_slot
    return costs


def test_hybrid_cost_within_pinned_factor_of_lp(default_scenario_costs):
    # Measured at PR 4: hybrid/LP = 1.46.  The pin leaves slack for
    # solver noise but catches regressions that break escalation or
    # the shared-ledger accounting.
    ratio = default_scenario_costs["hybrid"] / default_scenario_costs["postcard"]
    assert ratio <= 1.6


def test_fastlane_cost_within_pinned_factor_of_lp(default_scenario_costs):
    # Measured at PR 4: heuristic/LP = 1.94.  ALAP packing trades cost
    # for speed; the pin bounds how much.
    ratio = default_scenario_costs["heuristic"] / default_scenario_costs["postcard"]
    assert ratio <= 2.5


def test_hybrid_no_worse_than_pure_fast_lane(default_scenario_costs):
    assert (
        default_scenario_costs["hybrid"]
        <= default_scenario_costs["heuristic"] * (1 + 1e-9)
    )


# -- the solver watchdog (PR 7) --------------------------------------------


def pressured_requests(slot):
    # 9.5 GB over 1 slot on a 10 GB link: 95% peak, above the default
    # 0.9 threshold -> escalation-worthy.
    return [TransferRequest(0, 1, 9.5, 1, release_slot=slot)]


def test_watchdog_off_by_default_and_validated():
    topo = two_node_topology()
    assert HybridScheduler(topo, horizon=20).watchdog_timeout_s == 0.0
    with pytest.raises(SchedulingError, match="watchdog_timeout_s"):
        HybridScheduler(topo, horizon=20, watchdog_timeout_s=-1.0)
    with pytest.raises(SchedulingError, match="backoff"):
        HybridScheduler(topo, horizon=20, watchdog_backoff_slots=0)


def test_watchdog_timeout_degrades_then_rearms():
    import time as _time

    topo = two_node_topology()
    scheduler = HybridScheduler(
        topo, horizon=20, watchdog_timeout_s=0.05,
        watchdog_backoff_slots=1, escalate_hook=lambda: _time.sleep(0.4),
    )
    schedule = scheduler.on_slot(0, pressured_requests(0))
    # The hang was abandoned; the fast plan still served the slot.
    assert scheduler.degraded == 1
    assert schedule.entries  # the fast plan still served the slot
    # Backoff + zombie: the next pressured slot skips the LP outright.
    scheduler.on_slot(1, pressured_requests(1))
    assert scheduler.lp_skipped == 1
    # Once the abandoned solve finishes, escalation genuinely returns.
    _time.sleep(0.5)
    scheduler._escalate_hook = lambda: None
    before = scheduler.escalations
    scheduler.on_slot(2, pressured_requests(2))
    assert scheduler.escalations == before + 1
    assert scheduler.degraded == 1  # no new degrade


def test_watchdog_fast_solve_commits_normally():
    topo = two_node_topology()
    scheduler = HybridScheduler(topo, horizon=20, watchdog_timeout_s=5.0)
    scheduler.on_slot(0, pressured_requests(0))
    assert scheduler.escalations == 1
    assert scheduler.degraded == 0
    assert scheduler.state.completions  # the LP's commit landed


def test_replay_slot_forces_recorded_lane():
    topo = two_node_topology()
    live = HybridScheduler(topo, horizon=20)
    live.on_slot(0, pressured_requests(0))  # escalates -> LP placement

    # Replaying as "degraded" must take the fast lane even though the
    # pressure test would route this batch to the LP.
    replay = HybridScheduler(topo, horizon=20)
    replay.replay_slot(0, pressured_requests(0), "degraded")
    assert replay.degraded == 1
    assert replay.escalations == 0

    # Replaying as "lp" reproduces the live LP books exactly.
    replay_lp = HybridScheduler(topo, horizon=20)
    replay_lp.replay_slot(0, pressured_requests(0), "lp")
    assert replay_lp.escalations == 1
    assert replay_lp.state.charged_snapshot() == pytest.approx(
        live.state.charged_snapshot()
    )


def test_escalate_hook_errors_propagate():
    topo = two_node_topology()

    def boom():
        raise RuntimeError("injected hook failure")

    scheduler = HybridScheduler(
        topo, horizon=20, watchdog_timeout_s=5.0, escalate_hook=boom
    )
    with pytest.raises(RuntimeError, match="injected hook failure"):
        scheduler.on_slot(0, pressured_requests(0))
