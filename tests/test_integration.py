"""Integration tests: multi-slot online operation across modules."""

import pytest

from repro.baselines import DirectScheduler
from repro.charging import MaxCharging, PercentileCharging
from repro.core import PostcardScheduler
from repro.extensions import maximize_bulk_throughput
from repro.flowbased import FlowBasedScheduler
from repro.net.generators import complete_topology, two_region_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TraceWorkload, TransferRequest


def test_multi_slot_online_consistency():
    """Cost per slot from the state equals the ledger's max-charging
    bill after a multi-slot run, and every completion is in time."""
    topo = complete_topology(5, capacity=40.0, seed=21)
    workload = PaperWorkload(topo, max_deadline=4, max_files=4, seed=2)
    scheduler = PostcardScheduler(topo, horizon=30, on_infeasible="drop")
    result = Simulation(scheduler, workload, num_slots=8).run()
    state = scheduler.state
    assert state.current_cost_per_slot() == pytest.approx(
        state.ledger.cost_per_slot(MaxCharging()), rel=1e-9
    )
    assert result.max_lateness() == 0


def test_three_schedulers_on_identical_trace():
    """Same trace for all three: under ample capacity the flow-based
    cost never exceeds the direct cost (it can always imitate it)."""
    topo = complete_topology(5, capacity=200.0, seed=4)
    requests = [
        TransferRequest(0, 1, 60.0, 3, release_slot=0),
        TransferRequest(1, 2, 90.0, 3, release_slot=1),
        TransferRequest(2, 3, 40.0, 2, release_slot=2),
        TransferRequest(3, 4, 70.0, 4, release_slot=2),
    ]

    costs = {}
    for name, factory in {
        "postcard": lambda: PostcardScheduler(topo, horizon=20),
        "flow": lambda: FlowBasedScheduler(topo, horizon=20),
        "direct": lambda: DirectScheduler(topo, horizon=20),
    }.items():
        scheduler = factory()
        trace = TraceWorkload(
            [r.with_release(r.release_slot) for r in requests]
        )
        Simulation(scheduler, trace, num_slots=6).run()
        costs[name] = scheduler.state.current_cost_per_slot()

    assert costs["flow"] <= costs["direct"] + 1e-6


def test_percentile_rebilling_cheaper_than_max():
    """Billing the same recorded traffic at q=90 can only be cheaper
    than at q=100."""
    topo = complete_topology(4, capacity=50.0, seed=6)
    workload = PaperWorkload(topo, max_deadline=3, max_files=3, seed=3)
    scheduler = PostcardScheduler(topo, horizon=40, on_infeasible="drop")
    Simulation(scheduler, workload, num_slots=10).run()
    ledger = scheduler.state.ledger
    assert ledger.total_cost(PercentileCharging(90)) <= ledger.total_cost(MaxCharging()) + 1e-9


def test_bulk_extension_after_online_run():
    """Run the optimizer online, then fill leftover headroom with bulk
    backups — the bulk schedule must not raise any charged volume."""
    topo = complete_topology(4, capacity=50.0, seed=8)
    workload = PaperWorkload(topo, max_deadline=3, max_files=3, seed=5)
    scheduler = PostcardScheduler(topo, horizon=40, on_infeasible="drop")
    Simulation(scheduler, workload, num_slots=5).run()
    state = scheduler.state
    cost_before = state.current_cost_per_slot()

    backups = [
        TransferRequest(0, 2, 500.0, 6, release_slot=6),
        TransferRequest(1, 3, 500.0, 6, release_slot=6),
    ]
    result = maximize_bulk_throughput(state, backups)
    assert result.total_delivered > 0
    # Committing the bulk schedule must not change the bill.
    for (src, dst, slot), volume in result.schedule.link_slot_volumes().items():
        assert (
            state.committed_volume(src, dst, slot) + volume
            <= state.charged_volume(src, dst) + 1e-6
        )
    assert state.current_cost_per_slot() == pytest.approx(cost_before)


def test_two_region_relay_exploits_cheap_links():
    """With expensive transcontinental links and cheap domestic ones,
    Postcard should never pay more than the direct baseline on the
    same trace."""
    topo = two_region_topology(3, capacity=100.0, intra_price=1.0, inter_price=9.0, seed=1)
    requests = [
        TransferRequest(0, 3, 30.0, 4, release_slot=0),
        TransferRequest(1, 4, 30.0, 4, release_slot=0),
        TransferRequest(2, 5, 30.0, 4, release_slot=0),
    ]
    post = PostcardScheduler(topo, horizon=20)
    post.on_slot(0, [r.with_release(0) for r in requests])
    direct = DirectScheduler(topo, horizon=20)
    direct.on_slot(0, [r.with_release(0) for r in requests])
    assert (
        post.state.current_cost_per_slot()
        <= direct.state.current_cost_per_slot() + 1e-6
    )


def test_storage_is_actually_used_under_contention():
    """The Fig. 3 mechanism generalizes: under tight capacity and
    overlapping traffic, the Postcard optimum uses holdover storage."""
    from repro.net.generators import fig3_topology

    scheduler = PostcardScheduler(fig3_topology(), horizon=50)
    files = [
        TransferRequest(2, 4, 8.0, 4, release_slot=0),
        TransferRequest(1, 4, 10.0, 2, release_slot=0),
    ]
    schedule = scheduler.on_slot(0, files)
    assert schedule.total_storage_volume() > 0
    assert scheduler.state.storage_used > 0


def test_online_worse_or_equal_than_offline_batch():
    """Scheduling files slot by slot (online) can never beat giving the
    optimizer all files at once (offline), on the same network."""
    topo = complete_topology(4, capacity=30.0, seed=13)
    batch = [
        TransferRequest(0, 1, 25.0, 4, release_slot=0),
        TransferRequest(1, 2, 25.0, 4, release_slot=0),
        TransferRequest(2, 3, 25.0, 4, release_slot=0),
    ]

    offline = PostcardScheduler(topo, horizon=20)
    offline.on_slot(0, [r.with_release(0) for r in batch])

    online = PostcardScheduler(topo, horizon=20)
    for i, request in enumerate(batch):
        # Release the same files one slot apart, as an online stream.
        online.on_slot(i, [request.with_release(i)])

    assert (
        offline.state.current_cost_per_slot()
        <= online.state.current_cost_per_slot() + 1e-6
    )
