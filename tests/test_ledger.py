"""Unit tests for the traffic ledger."""

import numpy as np
import pytest

from repro.errors import ChargingError
from repro.charging import (
    LinearCost,
    MaxCharging,
    PercentileCharging,
    TrafficLedger,
)
from repro.net.generators import line_topology


@pytest.fixture
def ledger(line3):
    return TrafficLedger(line3, horizon=10)


def test_horizon_validated(line3):
    with pytest.raises(ChargingError):
        TrafficLedger(line3, horizon=0)


def test_record_and_query(ledger):
    ledger.record(0, 1, 3, 4.0)
    ledger.record(0, 1, 3, 2.0)
    assert ledger.volume(0, 1, 3) == 6.0
    assert ledger.volume(0, 1, 4) == 0.0
    assert ledger.peak_volume(0, 1) == 6.0


def test_record_unknown_link(ledger):
    with pytest.raises(ChargingError):
        ledger.record(0, 2, 0, 1.0)


def test_record_negative_rejected(ledger):
    with pytest.raises(ChargingError):
        ledger.record(0, 1, 0, -1.0)
    with pytest.raises(ChargingError):
        ledger.record(0, 1, -1, 1.0)


def test_record_schedule_bulk(ledger):
    ledger.record_schedule([(0, 1, 0, 1.0), (1, 2, 0, 2.0), (0, 1, 1, 3.0)])
    assert ledger.volume(0, 1, 0) == 1.0
    assert ledger.volume(1, 2, 0) == 2.0
    assert set(ledger.used_links()) == {(0, 1), (1, 2)}


def test_samples_padded_to_horizon(ledger):
    ledger.record(0, 1, 2, 5.0)
    samples = ledger.samples(0, 1)
    assert samples.shape == (10,)
    assert samples[2] == 5.0
    assert samples.sum() == 5.0


def test_traffic_beyond_horizon_not_billed(ledger):
    ledger.record(0, 1, 99, 7.0)  # next charging period
    assert ledger.charged_volume(0, 1) == 0.0
    assert ledger.peak_volume(0, 1) == 7.0  # but the peak tracker sees it


def test_residual_capacity(ledger):
    assert ledger.residual_capacity(0, 1, 0) == 10.0
    ledger.record(0, 1, 0, 4.0)
    assert ledger.residual_capacity(0, 1, 0) == 6.0
    ledger.record(0, 1, 0, 11.0)  # the ledger records, the audit flags
    assert ledger.residual_capacity(0, 1, 0) == 0.0


def test_charged_volume_schemes(ledger):
    for slot in range(9):
        ledger.record(0, 1, slot, 1.0)
    ledger.record(0, 1, 9, 100.0)
    assert ledger.charged_volume(0, 1, MaxCharging()) == 100.0
    assert ledger.charged_volume(0, 1, PercentileCharging(90)) == 1.0


def test_link_cost_uses_price_and_horizon(ledger):
    ledger.record(0, 1, 0, 5.0)
    # price 1.0, charged volume 5, horizon 10 slots.
    assert ledger.link_cost(0, 1) == pytest.approx(50.0)
    assert ledger.link_cost(0, 1, cost_fn=LinearCost(2.0)) == pytest.approx(100.0)


def test_total_cost_and_cost_per_slot(line3):
    ledger = TrafficLedger(line3, horizon=4)
    ledger.record(0, 1, 0, 3.0)
    ledger.record(1, 2, 1, 2.0)
    assert ledger.total_cost() == pytest.approx((3.0 + 2.0) * 4)
    assert ledger.cost_per_slot() == pytest.approx(5.0)


def test_total_cost_custom_factory(line3):
    ledger = TrafficLedger(line3, horizon=2)
    ledger.record(0, 1, 0, 3.0)
    total = ledger.total_cost(cost_fn_factory=lambda link: LinearCost(10.0))
    assert total == pytest.approx(60.0)


def test_charged_snapshot(ledger):
    ledger.record(0, 1, 0, 3.0)
    snap = ledger.charged_snapshot()
    assert snap[(0, 1)] == 3.0
    assert snap[(1, 0)] == 0.0


def test_total_volume_counts_hops(ledger):
    ledger.record(0, 1, 0, 3.0)
    ledger.record(1, 2, 1, 3.0)  # same data relayed: billed twice
    assert ledger.total_volume() == 6.0
