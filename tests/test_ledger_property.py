"""Property-based invariants of the traffic ledger."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.charging import MaxCharging, PercentileCharging, TrafficLedger
from repro.net.generators import line_topology

records = st.lists(
    st.tuples(
        st.sampled_from([(0, 1), (1, 0), (1, 2), (2, 1)]),
        st.integers(0, 19),
        st.floats(0.0, 100.0, allow_nan=False),
    ),
    max_size=40,
)


def _ledger(entries):
    topo = line_topology(3, capacity=1000.0)
    ledger = TrafficLedger(topo, horizon=20)
    for (src, dst), slot, volume in entries:
        ledger.record(src, dst, slot, volume)
    return ledger


@settings(max_examples=50, deadline=None)
@given(records)
def test_free_ride_bounded_by_total(entries):
    ledger = _ledger(entries)
    for key in [(0, 1), (1, 0), (1, 2), (2, 1)]:
        free = ledger.free_ride_volume(*key)
        total = sum(ledger.samples(*key))
        peak = ledger.peak_volume(*key)
        assert 0.0 <= free <= total + 1e-9
        # Everything beyond one peak's worth per busy slot is free at most.
        assert free <= max(0.0, total - peak) + 1e-9
    assert 0.0 <= ledger.free_ride_fraction() <= 1.0


@settings(max_examples=50, deadline=None)
@given(records)
def test_period_peaks_partition_global_peak(entries):
    ledger = _ledger(entries)
    for key in [(0, 1), (1, 2)]:
        global_peak = ledger.peak_in_range(*key, 0, 20)
        halves = [
            ledger.peak_in_range(*key, 0, 10),
            ledger.peak_in_range(*key, 10, 20),
        ]
        assert max(halves) == pytest.approx(global_peak)


@settings(max_examples=50, deadline=None)
@given(records)
def test_percentile_bill_never_exceeds_max_bill(entries):
    ledger = _ledger(entries)
    for q in (50, 90, 95):
        assert (
            ledger.total_cost(PercentileCharging(q))
            <= ledger.total_cost(MaxCharging()) + 1e-9
        )


@settings(max_examples=50, deadline=None)
@given(records)
def test_period_costs_sum_to_horizon_consistency(entries):
    """Billing [0,10) and [10,20) separately uses each period's own
    peaks; their per-slot average is bounded by the global peak rate."""
    ledger = _ledger(entries)
    split = ledger.period_cost(0, 10) + ledger.period_cost(10, 20)
    single = ledger.period_cost(0, 20)
    # Per-period peaks <= global peak, and each applies for 10 slots:
    assert split <= single + 1e-9