"""LinkSchedule semantics, presets, and integration gates (PR 9).

Covers the availability-window container itself (half-open spans,
merging, epochs, JSON round-trips), the scenario generators, and the
three integration points: the NetworkState residual gate, the
window-aware CandidatePathIndex, and GraphCache incremental rebuilds
under schedule churn staying bit-identical to cold builds.
"""

import pytest

from repro.errors import TopologyError
from repro.heuristic.paths import CandidatePathIndex
from repro.net import AvailabilityWindow, LinkSchedule
from repro.net.generators import complete_topology, line_topology
from repro.net.presets import (
    global_cloud_topology,
    ground_station_downlink_schedule,
    leo_pass_schedule,
    maintenance_schedule,
)
from repro.core.state import NetworkState
from repro.timeexp.cache import GraphCache
from repro.timeexp.graph import ArcKind, TimeExpandedGraph


def arc_tuples(graph):
    return [
        (a.src, a.dst, a.slot, a.kind, a.capacity, a.price) for a in graph.arcs
    ]


class TestWindowSemantics:
    def test_unscheduled_link_is_always_up(self):
        schedule = LinkSchedule([AvailabilityWindow(0, 1, 2, 4)])
        assert schedule.is_up(3, 4, 0)
        assert schedule.up_in_range(3, 4, 0, 100)
        assert schedule.fully_up_in_range(3, 4, 0, 100)
        assert schedule.next_up_slot(3, 4, 7) == 7

    def test_half_open_window(self):
        schedule = LinkSchedule([AvailabilityWindow(0, 1, 2, 4)])
        assert not schedule.is_up(0, 1, 1)
        assert schedule.is_up(0, 1, 2)
        assert schedule.is_up(0, 1, 3)
        assert not schedule.is_up(0, 1, 4)

    def test_scheduled_but_windowless_link_is_dark(self):
        schedule = LinkSchedule()
        schedule.schedule_link(0, 1)
        assert not schedule.is_up(0, 1, 0)
        assert not schedule.up_in_range(0, 1, 0, 100)
        assert schedule.next_up_slot(0, 1, 0) is None

    def test_clear_link_reverts_to_always_on(self):
        schedule = LinkSchedule([AvailabilityWindow(0, 1, 2, 4)])
        schedule.clear_link(0, 1)
        assert schedule.is_up(0, 1, 0)
        assert not schedule.is_scheduled(0, 1)

    def test_windows_merge_overlap_and_adjacency(self):
        schedule = LinkSchedule()
        schedule.add_window(AvailabilityWindow(1, 2, 0, 3))
        schedule.add_window(AvailabilityWindow(1, 2, 3, 5))
        schedule.add_window(AvailabilityWindow(1, 2, 4, 6))
        schedule.add_window(AvailabilityWindow(1, 2, 8, 9))
        spans = [(w.start_slot, w.end_slot) for w in schedule.windows_for(1, 2)]
        assert spans == [(0, 6), (8, 9)]

    def test_up_in_range_and_fully_up(self):
        schedule = LinkSchedule([AvailabilityWindow(0, 1, 2, 5)])
        assert schedule.up_in_range(0, 1, 0, 3)
        assert not schedule.up_in_range(0, 1, 0, 2)
        assert not schedule.up_in_range(0, 1, 5, 9)
        assert schedule.fully_up_in_range(0, 1, 2, 5)
        assert schedule.fully_up_in_range(0, 1, 3, 4)
        assert not schedule.fully_up_in_range(0, 1, 2, 6)

    def test_invalid_windows_rejected(self):
        with pytest.raises(TopologyError):
            AvailabilityWindow(0, 0, 1, 2)
        with pytest.raises(TopologyError):
            AvailabilityWindow(0, 1, 3, 3)
        with pytest.raises(TopologyError):
            AvailabilityWindow(0, 1, -1, 2)

    def test_epochs_bump_on_every_mutation(self):
        schedule = LinkSchedule()
        assert schedule.epoch == 0
        schedule.add_window(AvailabilityWindow(0, 1, 0, 2))
        assert schedule.epoch == 1
        assert schedule.link_epoch(0, 1) == 1
        assert schedule.link_epoch(2, 3) == 0
        schedule.set_windows(2, 3, [(1, 4)])
        assert schedule.epoch == 2
        assert schedule.link_epoch(2, 3) == 2
        assert schedule.link_epoch(0, 1) == 1
        schedule.clear_link(0, 1)
        assert schedule.epoch == 3
        # Clearing an unknown link is a no-op, not a mutation.
        schedule.clear_link(5, 6)
        assert schedule.epoch == 3

    def test_coverage(self):
        schedule = LinkSchedule([AvailabilityWindow(0, 1, 0, 5)])
        assert schedule.coverage(10) == pytest.approx(0.5)
        schedule.schedule_link(2, 3)  # dark throughout
        assert schedule.coverage(10) == pytest.approx(0.25)
        assert LinkSchedule().coverage(10) == 1.0

    def test_file_round_trip(self, tmp_path):
        schedule = LinkSchedule(
            [AvailabilityWindow(0, 1, 2, 4), AvailabilityWindow(1, 2, 0, 9)]
        )
        schedule.schedule_link(4, 5)  # windowless: must survive the trip
        path = tmp_path / "windows.json"
        schedule.to_file(path)
        loaded = LinkSchedule.from_file(path)
        assert loaded.to_payload() == schedule.to_payload()
        assert loaded.is_scheduled(4, 5)
        assert not loaded.is_up(4, 5, 0)

    def test_from_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(TopologyError):
            LinkSchedule.from_file(path)
        path.write_text("{}")
        with pytest.raises(TopologyError):
            LinkSchedule.from_file(path)


class TestPresets:
    def test_leo_pass_schedule_is_deterministic_and_periodic(self):
        topo = global_cloud_topology()
        a = leo_pass_schedule(topo, 24, fraction=0.3, period=8, pass_length=3, seed=5)
        b = leo_pass_schedule(topo, 24, fraction=0.3, period=8, pass_length=3, seed=5)
        assert a.to_payload() == b.to_payload()
        assert len(a) == max(1, round(0.3 * topo.num_links))
        for src, dst in a.scheduled_links():
            for w in a.windows_for(src, dst):
                assert 0 <= w.start_slot < w.end_slot <= 24
                assert w.end_slot - w.start_slot <= 3

    def test_downlink_schedule_windows_every_station_link(self):
        topo = complete_topology(5, capacity=10.0, seed=0)
        schedule = ground_station_downlink_schedule(
            topo, 12, station_dcs=[2], period=6, window_length=2
        )
        touched = {
            (l.src, l.dst) for l in topo.links if 2 in (l.src, l.dst)
        }
        assert set(schedule.scheduled_links()) == touched
        with pytest.raises(TopologyError):
            ground_station_downlink_schedule(topo, 12, station_dcs=[99])

    def test_maintenance_schedule_is_complement(self):
        topo = complete_topology(4, capacity=10.0, seed=0)
        schedule = maintenance_schedule(topo, 12, [((0, 1), 2, 4)])
        for slot in range(12):
            assert schedule.is_up(0, 1, slot) == (slot < 2 or slot >= 4)
        assert schedule.is_up(1, 0, 7)  # untouched link stays up

    def test_maintenance_repeat_every(self):
        topo = complete_topology(4, capacity=10.0, seed=0)
        schedule = maintenance_schedule(
            topo, 12, [((0, 1), 0, 2)], repeat_every=6
        )
        downs = [s for s in range(12) if not schedule.is_up(0, 1, s)]
        assert downs == [0, 1, 6, 7]

    def test_maintenance_rejects_unknown_link(self):
        topo = line_topology(3, capacity=10.0)
        with pytest.raises(TopologyError):
            maintenance_schedule(topo, 10, [((2, 0), 1, 2)])


class TestStateGate:
    def test_residual_capacity_zero_on_dark_slots(self):
        topo = complete_topology(4, capacity=10.0, seed=0)
        state = NetworkState(topo, horizon=12)
        state.link_schedule = LinkSchedule([AvailabilityWindow(0, 1, 3, 6)])
        assert state.residual_capacity(0, 1, 2) == 0.0
        assert state.residual_capacity(0, 1, 3) == 10.0
        assert state.residual_capacity(0, 1, 6) == 0.0
        assert state.residual_capacity(2, 3, 0) == 10.0
        assert state.paid_headroom(0, 1, 2) == 0.0


class TestWindowAwarePaths:
    def test_paths_avoid_fully_dark_hops(self):
        topo = complete_topology(4, capacity=10.0, seed=1)
        index = CandidatePathIndex(topo, max_paths=4)
        schedule = LinkSchedule()
        schedule.schedule_link(0, 1)  # direct link dark forever
        paths = index.candidates(0, 1, 3, schedule=schedule, window=(0, 4))
        assert paths, "detour paths must be discovered"
        assert [0, 1] not in paths
        # Without the schedule, the direct link is a candidate again.
        assert [0, 1] in index.candidates(0, 1, 3)

    def test_fully_lit_paths_rank_first(self):
        topo = complete_topology(4, capacity=10.0, seed=1)
        index = CandidatePathIndex(topo, max_paths=4)
        schedule = LinkSchedule([AvailabilityWindow(0, 1, 0, 1)])
        paths = index.candidates(0, 1, 3, schedule=schedule, window=(0, 4))
        assert paths
        lit = [
            all(
                schedule.fully_up_in_range(a, b, 0, 4)
                for a, b in zip(p, p[1:])
            )
            for p in paths
        ]
        # Monotone: once a partially-dark path appears, no fully-lit
        # path may follow it.
        assert lit == sorted(lit, reverse=True)

    def test_reopened_link_rediscovered_without_rebuild(self):
        topo = complete_topology(4, capacity=10.0, seed=1)
        index = CandidatePathIndex(topo, max_paths=4)
        schedule = LinkSchedule()
        schedule.schedule_link(0, 1)
        dark = index.candidates(0, 1, 3, schedule=schedule, window=(0, 4))
        assert [0, 1] not in dark
        # The link reopens; the epoch-keyed window cache must miss and
        # the very next query must see the direct path again.
        schedule.add_window(AvailabilityWindow(0, 1, 0, 4))
        lit = index.candidates(0, 1, 3, schedule=schedule, window=(0, 4))
        assert [0, 1] in lit


class TestGraphCacheChurn:
    def test_incremental_equals_cold_under_schedule_churn(self):
        topo = complete_topology(5, capacity=10.0, seed=2)
        schedule = LinkSchedule(
            [AvailabilityWindow(0, 1, 0, 3), AvailabilityWindow(1, 2, 4, 8)]
        )
        cache = GraphCache(topo, link_schedule=schedule)
        mutations = [
            lambda: schedule.set_windows(0, 1, [(2, 6)]),
            lambda: schedule.schedule_link(2, 3),
            lambda: schedule.add_window(AvailabilityWindow(2, 3, 1, 2)),
            lambda: schedule.clear_link(1, 2),
            lambda: None,  # static build: the bit-identical fast path
        ]
        for mutate in mutations:
            mutate()
            incremental = cache.build(0, 8)
            cold = TimeExpandedGraph(topo, 0, 8, link_schedule=schedule)
            assert arc_tuples(incremental) == arc_tuples(cold)

    def test_static_schedule_rebuild_reuses_every_arc(self):
        topo = complete_topology(5, capacity=10.0, seed=2)
        schedule = LinkSchedule([AvailabilityWindow(0, 1, 0, 3)])
        cache = GraphCache(topo, link_schedule=schedule)
        cache.build(0, 6)
        refreshed_before = cache.refreshed_arcs
        graph = cache.build(0, 6)
        assert cache.refreshed_arcs == refreshed_before
        assert cache.reused_arcs >= graph.num_arcs

    def test_churn_refreshes_only_mutated_links(self):
        topo = complete_topology(5, capacity=10.0, seed=2)
        schedule = LinkSchedule([AvailabilityWindow(0, 1, 0, 3)])
        cache = GraphCache(topo, link_schedule=schedule)
        cache.build(0, 8)
        refreshed_before = cache.refreshed_arcs
        schedule.set_windows(0, 1, [(1, 5)])
        cache.build(0, 8)
        # At most the mutated link's 8 slots may have been rebuilt.
        assert cache.refreshed_arcs - refreshed_before <= 8

    def test_dark_arcs_have_zero_capacity(self):
        topo = complete_topology(4, capacity=10.0, seed=0)
        schedule = LinkSchedule([AvailabilityWindow(0, 1, 2, 4)])
        graph = TimeExpandedGraph(topo, 0, 6, link_schedule=schedule)
        for arc in graph.arcs:
            if arc.kind is not ArcKind.TRANSIT or arc.link_key != (0, 1):
                continue
            expected = 10.0 if 2 <= arc.slot < 4 else 0.0
            assert arc.capacity == expected
        # Holdover arcs are never gated.
        assert all(
            a.capacity == float("inf")
            for a in graph.arcs
            if a.kind is ArcKind.HOLDOVER
        )
