"""Unit tests for the lookahead Postcard scheduler."""

import pytest

from repro.errors import SchedulingError
from repro.core import LookaheadPostcardScheduler, PostcardScheduler
from repro.net.generators import complete_topology, line_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TraceWorkload, TransferRequest


def test_parameters_validated(line3):
    with pytest.raises(SchedulingError):
        LookaheadPostcardScheduler(line3, 10, preview=lambda s: [], lookahead=-1)
    with pytest.raises(SchedulingError):
        LookaheadPostcardScheduler(
            line3, 10, preview=lambda s: [], on_infeasible="hope"
        )


def test_zero_lookahead_matches_myopic():
    topo = complete_topology(5, capacity=30.0, seed=2)
    workload = PaperWorkload(topo, max_deadline=4, max_files=3, seed=4)
    myopic = PostcardScheduler(topo, horizon=30)
    ahead = LookaheadPostcardScheduler(
        topo, horizon=30, preview=workload.requests_at, lookahead=0
    )
    for scheduler in (myopic, ahead):
        wl = PaperWorkload(topo, max_deadline=4, max_files=3, seed=4)
        Simulation(scheduler, wl, num_slots=4).run()
    assert myopic.state.current_cost_per_slot() == pytest.approx(
        ahead.state.current_cost_per_slot(), rel=1e-6
    )


def test_only_current_files_are_committed(line3):
    current = TransferRequest(0, 1, 4.0, 2, release_slot=0)
    future = TransferRequest(1, 2, 4.0, 2, release_slot=1)
    scheduler = LookaheadPostcardScheduler(
        line3, horizon=20,
        preview=lambda s: [future] if s == 1 else [],
        lookahead=2,
    )
    schedule = scheduler.on_slot(0, [current])
    assert {e.request_id for e in schedule.entries} == {current.request_id}
    assert future.request_id not in scheduler.state.completions


def test_lookahead_avoids_a_foreseeable_trap():
    """A slot-0 file can take a cheap link or an expensive one; a huge
    slot-1 file will need the cheap link's full capacity.  The myopic
    scheduler grabs the cheap link; the lookahead one steps aside."""
    from repro.net.topology import Datacenter, Link, Topology

    # 0 -> 1 twice: a cheap path via 2 and a pricey direct link.
    topology = Topology(
        [Datacenter(0), Datacenter(1), Datacenter(2), Datacenter(3)],
        [
            Link(0, 1, price=5.0, capacity=10.0),   # pricey direct
            Link(0, 2, price=1.0, capacity=10.0),   # cheap relay, hop 1
            Link(2, 1, price=1.0, capacity=10.0),   # cheap relay, hop 2
            Link(3, 2, price=9.0, capacity=10.0),   # slot-1 file's only entry
        ],
    )
    small = TransferRequest(0, 1, 10.0, 2, release_slot=0)
    # The future file monopolizes link (2,1) at slot 1.
    big = TransferRequest(3, 1, 10.0, 2, release_slot=1)

    def run(lookahead):
        scheduler = LookaheadPostcardScheduler(
            topology, horizon=20,
            preview=lambda s: [big.with_release(1)] if s == 1 else [],
            lookahead=lookahead,
        )
        scheduler.on_slot(0, [small.with_release(0)])
        later = big.with_release(1)
        scheduler.on_slot(1, [later])
        return scheduler.state.current_cost_per_slot()

    assert run(2) <= run(0) + 1e-6


def test_infeasible_future_falls_back_to_myopic(line3):
    current = TransferRequest(0, 1, 4.0, 2, release_slot=0)
    impossible_future = TransferRequest(0, 2, 1.0, 1, release_slot=1)
    scheduler = LookaheadPostcardScheduler(
        line3, horizon=20,
        preview=lambda s: [impossible_future] if s == 1 else [],
        lookahead=1,
    )
    schedule = scheduler.on_slot(0, [current])
    assert schedule.delivered_volume(current) == pytest.approx(4.0)


def test_release_mismatch(line3):
    scheduler = LookaheadPostcardScheduler(line3, 10, preview=lambda s: [])
    with pytest.raises(SchedulingError):
        scheduler.on_slot(0, [TransferRequest(0, 1, 1.0, 1, release_slot=4)])


def test_full_run_with_simulator():
    topo = complete_topology(4, capacity=30.0, seed=5)
    workload = PaperWorkload(topo, max_deadline=3, max_files=3, seed=6)
    scheduler = LookaheadPostcardScheduler(
        topo, horizon=20, preview=workload.requests_at, lookahead=2,
        on_infeasible="drop",
    )
    result = Simulation(scheduler, workload, num_slots=5).run()
    assert result.max_lateness() == 0
