"""Backend-specific behavior and cross-backend agreement on fixed LPs."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.lp import Model, SolveStatus
from repro.lp.backends import get_backend, register_backend
from repro.lp.backends.base import Backend


def test_get_backend_names():
    assert get_backend("highs").name == "highs"
    assert get_backend("simplex").name == "simplex"


def test_get_backend_unknown():
    with pytest.raises(SolverError, match="available"):
        get_backend("cplex")


def test_register_backend():
    class Fake(Backend):
        name = "fake"

        def solve(self, model, **options):
            raise NotImplementedError

    register_backend("fake", Fake)
    assert isinstance(get_backend("fake"), Fake)


def _transport_model():
    """A 2x3 transportation problem with known optimum 46."""
    m = Model("transport")
    supply = [20, 30]
    demand = [10, 25, 15]
    cost = [[2, 4, 5], [3, 1, 7]]
    x = {}
    for i in range(2):
        for j in range(3):
            x[i, j] = m.add_variable(f"x[{i},{j}]")
    for i in range(2):
        m.add_constraint(sum((x[i, j] for j in range(1, 3)), x[i, 0].as_expr()) <= supply[i])
    for j in range(3):
        m.add_constraint(x[0, j] + x[1, j] == demand[j])
    m.minimize(
        sum(
            (cost[i][j] * x[i, j] for i in range(2) for j in range(3) if (i, j) != (0, 0)),
            cost[0][0] * x[0, 0],
        )
    )
    return m


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_transportation_problem(backend):
    m = _transport_model()
    solution = m.solve(backend)
    # Optimum 125: x[1,1]=25 (cost 25), x[0,2]=15 (75), x[0,0]=5 (10),
    # x[1,0]=5 (15).
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(125.0, abs=1e-6)


def test_backends_agree_on_transport():
    a = _transport_model().solve("highs")
    b = _transport_model().solve("simplex")
    assert a.objective == pytest.approx(b.objective, abs=1e-6)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_degenerate_problem(backend):
    # Multiple optima: any split of x+y=1 has the same cost.
    m = Model()
    x, y = m.add_variable("x"), m.add_variable("y")
    m.add_constraint(x + y == 1)
    m.minimize(x + y)
    solution = m.solve(backend)
    assert solution.objective == pytest.approx(1.0)
    assert solution.value(x) + solution.value(y) == pytest.approx(1.0)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_redundant_constraints(backend):
    m = Model()
    x = m.add_variable("x", lb=1.0)
    m.add_constraint(x >= 1)
    m.add_constraint(x >= 1)
    m.add_constraint(2 * x >= 2)
    m.minimize(x)
    assert m.solve(backend).objective == pytest.approx(1.0)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_variable_with_equal_bounds(backend):
    m = Model()
    x = m.add_variable("x", lb=3.0, ub=3.0)
    y = m.add_variable("y")
    m.add_constraint(y >= x)
    m.minimize(y)
    assert m.solve(backend).objective == pytest.approx(3.0)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_negative_lower_bounds(backend):
    m = Model()
    x = m.add_variable("x", lb=-5.0, ub=-1.0)
    m.minimize(x)
    assert m.solve(backend).objective == pytest.approx(-5.0)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_upper_bound_only_variable(backend):
    m = Model()
    x = m.add_variable("x", lb=None, ub=10.0)
    m.maximize(x)
    assert m.solve(backend).objective == pytest.approx(10.0)


def test_simplex_iteration_limit():
    m = Model()
    xs = m.add_variables(5)
    for i in range(4):
        m.add_constraint(xs[i] + xs[i + 1] >= 1)
    m.minimize(sum(xs[1:], xs[0].as_expr()))
    with pytest.raises(SolverError):
        m.solve("simplex", max_iter=1)


def test_solution_repr():
    m = Model()
    x = m.add_variable("x", lb=2.0)
    m.minimize(x)
    text = repr(m.solve())
    assert "optimal" in text and "2" in text
