"""Unit tests for lowering a Model to sparse standard form."""

import numpy as np
import pytest

from repro.lp import Model, compile_model
from repro.lp.constraint import Sense


def test_empty_model():
    problem = compile_model(Model())
    assert problem.num_variables == 0
    assert problem.num_inequalities == 0
    assert problem.num_equalities == 0


def test_objective_vector_and_constant():
    m = Model()
    x, y = m.add_variable("x"), m.add_variable("y")
    m.minimize(2 * x - y + 7)
    problem = compile_model(m)
    assert problem.c.tolist() == [2.0, -1.0]
    assert problem.c0 == 7.0
    assert not problem.maximize


def test_maximize_negates_costs():
    m = Model()
    x = m.add_variable("x")
    m.maximize(3 * x)
    problem = compile_model(m)
    assert problem.c.tolist() == [-3.0]
    assert problem.maximize


def test_le_row_layout():
    m = Model()
    x, y = m.add_variable("x"), m.add_variable("y")
    m.add_constraint(2 * x + 3 * y <= 12)
    problem = compile_model(m)
    assert problem.a_ub.toarray().tolist() == [[2.0, 3.0]]
    assert problem.b_ub.tolist() == [12.0]


def test_ge_row_is_negated():
    m = Model()
    x = m.add_variable("x")
    m.add_constraint(x >= 4)
    problem = compile_model(m)
    assert problem.a_ub.toarray().tolist() == [[-1.0]]
    assert problem.b_ub.tolist() == [-4.0]


def test_eq_rows_separate():
    m = Model()
    x, y = m.add_variable("x"), m.add_variable("y")
    m.add_constraint(x + y == 5)
    m.add_constraint(x <= 2)
    problem = compile_model(m)
    assert problem.num_equalities == 1
    assert problem.num_inequalities == 1
    assert problem.a_eq.toarray().tolist() == [[1.0, 1.0]]
    assert problem.b_eq.tolist() == [5.0]


def test_bounds_passed_through():
    m = Model()
    m.add_variable("a", lb=1.0, ub=2.0)
    m.add_variable("b", lb=None)
    problem = compile_model(m)
    assert tuple(problem.bounds[0]) == (1.0, 2.0)
    assert tuple(problem.bounds[1]) == (float("-inf"), float("inf"))


def test_zero_coefficients_not_stored():
    m = Model()
    x, y = m.add_variable("x"), m.add_variable("y")
    m.add_constraint(x + y - y <= 3)
    problem = compile_model(m)
    # The y coefficient cancels to zero and must not appear.
    assert problem.a_ub.nnz == 1


def test_sparse_shapes_match():
    m = Model()
    xs = m.add_variables(10)
    for i in range(9):
        m.add_constraint(xs[i] + xs[i + 1] <= 1)
    m.minimize(sum(xs[1:], xs[0].as_expr()))
    problem = compile_model(m)
    assert problem.a_ub.shape == (9, 10)
    assert problem.c.shape == (10,)
