"""Unit + property tests for LP dual values (shadow prices)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.lp import Model
from repro.lp.constraint import Sense


def test_simple_ge_dual():
    # min 3x s.t. x >= 4: relaxing the rhs by 1 changes the optimum by 3.
    m = Model()
    x = m.add_variable("x")
    con = m.add_constraint(x >= 4)
    m.minimize(3 * x)
    solution = m.solve()
    assert solution.has_duals
    assert solution.dual(con) == pytest.approx(3.0)


def test_simple_le_dual_in_max():
    # max 2x s.t. x <= 5: one more unit of rhs is worth 2.
    m = Model()
    x = m.add_variable("x")
    con = m.add_constraint(x <= 5)
    m.maximize(2 * x)
    solution = m.solve()
    assert solution.dual(con) == pytest.approx(2.0)


def test_eq_dual():
    m = Model()
    x = m.add_variable("x")
    y = m.add_variable("y")
    con = m.add_constraint(x + y == 10)
    m.minimize(2 * x + 3 * y)
    solution = m.solve()
    # Cheapest way to satisfy one more unit of the equality is x at 2.
    assert solution.dual(con) == pytest.approx(2.0)


def test_slack_constraint_has_zero_dual():
    m = Model()
    x = m.add_variable("x", lb=1.0)
    binding = m.add_constraint(x >= 1)  # ties with the bound; may bind
    slack = m.add_constraint(x <= 100)  # far from optimal x = 1
    m.minimize(x)
    solution = m.solve()
    assert solution.dual(slack) == pytest.approx(0.0, abs=1e-9)


def test_simplex_backend_has_no_duals():
    m = Model()
    x = m.add_variable("x")
    con = m.add_constraint(x >= 1)
    m.minimize(x)
    solution = m.solve("simplex")
    assert not solution.has_duals
    with pytest.raises(ModelError):
        solution.dual(con)


def test_unknown_constraint_rejected():
    m = Model()
    x = m.add_variable("x")
    m.add_constraint(x >= 1)
    m.minimize(x)
    solution = m.solve()
    m2 = Model()
    y = m2.add_variable("y")
    foreign = y >= 0
    with pytest.raises(ModelError):
        solution.dual(foreign)


@st.composite
def bounded_lps(draw):
    n = draw(st.integers(1, 4))
    anchor = [draw(st.integers(0, 5)) for _ in range(n)]
    m_count = draw(st.integers(1, 5))
    cons = []
    for _ in range(m_count):
        coeffs = [draw(st.integers(-3, 3)) for _ in range(n)]
        slack = draw(st.integers(0, 6))
        kind = draw(st.sampled_from(["le", "ge"]))
        at = sum(c * a for c, a in zip(coeffs, anchor))
        rhs = at + slack if kind == "le" else at - slack
        cons.append((coeffs, kind, rhs))
    obj = [draw(st.integers(-3, 3)) for _ in range(n)]
    return n, cons, obj


@settings(max_examples=40, deadline=None)
@given(bounded_lps())
def test_complementary_slackness(spec):
    """At an optimum: every constraint with a non-zero dual is tight,
    and duals carry the right sign for a minimization."""
    n, cons, obj = spec
    m = Model()
    xs = [m.add_variable(f"x{i}", lb=0.0, ub=10.0) for i in range(n)]
    handles = []
    for coeffs, kind, rhs in cons:
        expr = sum((c * x for c, x in zip(coeffs[1:], xs[1:])), coeffs[0] * xs[0])
        handles.append(
            m.add_constraint(expr <= rhs if kind == "le" else expr >= rhs)
        )
    m.minimize(sum((c * x for c, x in zip(obj[1:], xs[1:])), obj[0] * xs[0]))
    solution = m.solve()
    for (coeffs, kind, rhs), con in zip(cons, handles):
        if con.expr.is_constant():
            continue  # trivially-true constraints are dropped unregistered
        dual = solution.dual(con) if solution.has_duals else 0.0
        value = solution.value(con.expr) + rhs  # lhs evaluated
        slack = rhs - value if kind == "le" else value - rhs
        if abs(dual) > 1e-7:
            assert slack == pytest.approx(0.0, abs=1e-6)
        # Sign: relaxing a <= in a min problem cannot increase cost.
        if kind == "le":
            assert dual <= 1e-9
        else:
            assert dual >= -1e-9
