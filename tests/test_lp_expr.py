"""Unit tests for LP expressions and variables."""

import pytest

from repro.errors import ModelError
from repro.lp import LinExpr, Model
from repro.lp.constraint import Sense


@pytest.fixture
def model():
    return Model("t")


def test_variable_as_expr(model):
    x = model.add_variable("x")
    expr = x.as_expr()
    assert expr.coeffs == {x.index: 1.0}
    assert expr.constant == 0.0


def test_addition_of_variables(model):
    x, y = model.add_variable("x"), model.add_variable("y")
    expr = x + y
    assert expr.coeffs == {x.index: 1.0, y.index: 1.0}


def test_addition_collects_like_terms(model):
    x = model.add_variable("x")
    expr = x + x + x
    assert expr.coeffs == {x.index: 3.0}


def test_scalar_multiplication(model):
    x = model.add_variable("x")
    expr = 3 * x - x / 2
    assert expr.coeffs[x.index] == pytest.approx(2.5)


def test_subtraction_and_negation(model):
    x, y = model.add_variable("x"), model.add_variable("y")
    expr = -(x - y) + 1
    assert expr.coeffs[x.index] == -1.0
    assert expr.coeffs[y.index] == 1.0
    assert expr.constant == 1.0


def test_rsub_scalar(model):
    x = model.add_variable("x")
    expr = 5 - x
    assert expr.coeffs[x.index] == -1.0
    assert expr.constant == 5.0


def test_expr_multiplication_by_expr_rejected(model):
    x, y = model.add_variable("x"), model.add_variable("y")
    with pytest.raises(TypeError):
        _ = x.as_expr() * y.as_expr()  # type: ignore[operator]


def test_sum_helper(model):
    xs = model.add_variables(4, prefix="v")
    expr = LinExpr.sum(xs)
    assert all(expr.coeffs[v.index] == 1.0 for v in xs)
    mixed = LinExpr.sum([xs[0], 2.0, xs[0] + xs[1]])
    assert mixed.coeffs[xs[0].index] == 2.0
    assert mixed.constant == 2.0


def test_from_terms(model):
    x, y = model.add_variable("x"), model.add_variable("y")
    expr = LinExpr.from_terms([(2.0, x), (3.0, y), (1.0, x)], constant=4.0)
    assert expr.coeffs == {x.index: 3.0, y.index: 3.0}
    assert expr.constant == 4.0


def test_mixing_models_rejected():
    m1, m2 = Model("a"), Model("b")
    x, y = m1.add_variable("x"), m2.add_variable("y")
    with pytest.raises(ModelError):
        _ = x + y


def test_comparisons_produce_constraints(model):
    x = model.add_variable("x")
    le = x <= 3
    ge = x >= 1
    eq = x == 2
    assert le.sense is Sense.LE and le.rhs == pytest.approx(3)
    assert ge.sense is Sense.GE and ge.rhs == pytest.approx(1)
    assert eq.sense is Sense.EQ and eq.rhs == pytest.approx(2)


def test_constraint_has_no_truth_value(model):
    x = model.add_variable("x")
    with pytest.raises(TypeError):
        bool(x <= 3)


def test_is_constant(model):
    x = model.add_variable("x")
    assert LinExpr({}, 5.0).is_constant()
    assert not (x + 1).is_constant()
    assert (x - x).is_constant()


def test_repr_is_stable(model):
    x, y = model.add_variable("x"), model.add_variable("y")
    text = repr(2 * x + y + 1)
    assert "2" in text and "1" in text
