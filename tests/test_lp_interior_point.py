"""Unit + property tests for the interior-point backend."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError, UnboundedError
from repro.lp import Model
from repro.lp.backends import get_backend


def test_backend_registered():
    assert get_backend("interior_point").name == "interior_point"


def test_diet_problem():
    m = Model()
    x, y = m.add_variable("x"), m.add_variable("y")
    m.add_constraint(x + 2 * y >= 4)
    m.add_constraint(3 * x + y >= 6)
    m.minimize(2 * x + 3 * y)
    solution = m.solve("interior_point")
    assert solution.objective == pytest.approx(6.8, abs=1e-5)
    assert solution.iterations < 50


def test_maximize_with_bounds():
    m = Model()
    a = m.add_variable("a", lb=0, ub=5)
    b = m.add_variable("b", lb=None)
    m.add_constraint(a + b <= 10)
    m.add_constraint(b <= 3)
    m.maximize(2 * a + b + 7)
    assert m.solve("interior_point").objective == pytest.approx(20.0, abs=1e-5)


def test_equality_constraints():
    m = Model()
    x, y = m.add_variable("x"), m.add_variable("y")
    m.add_constraint(x + y == 10)
    m.add_constraint(x - y == 2)
    m.minimize(x)
    solution = m.solve("interior_point")
    assert solution.value(x) == pytest.approx(6.0, abs=1e-5)


def test_unbounded_detected():
    m = Model()
    v = m.add_variable("v")
    u = m.add_variable("u")
    m.add_constraint(v - u == 1)
    m.minimize(-v)
    with pytest.raises(UnboundedError):
        m.solve("interior_point")


def test_infeasible_reported_as_failure():
    # IPM has no clean phase-1; infeasibility surfaces as a solver
    # failure (SolverError) rather than silently wrong numbers.
    m = Model()
    w = m.add_variable("w", ub=1)
    m.add_constraint(w >= 2)
    m.minimize(w)
    with pytest.raises(SolverError):
        m.solve("interior_point")


def test_unconstrained_box():
    m = Model()
    x = m.add_variable("x", lb=2.0)
    m.minimize(x)
    assert m.solve("interior_point").objective == pytest.approx(2.0, abs=1e-5)


def test_postcard_fig3_instance():
    """The paper's worked example solved with the paper's solver family."""
    from repro.core import build_postcard_model
    from repro.core.state import NetworkState
    from repro.net.generators import fig3_topology
    from repro.traffic import TransferRequest

    state = NetworkState(fig3_topology(), horizon=100)
    built = build_postcard_model(
        state,
        [
            TransferRequest(2, 4, 8.0, 4, release_slot=0),
            TransferRequest(1, 4, 10.0, 2, release_slot=0),
        ],
    )
    _, solution = built.solve(backend="interior_point")
    assert solution.objective == pytest.approx(98.0 / 3.0, abs=1e-4)


_coef = st.integers(-4, 4)


@st.composite
def feasible_lps(draw):
    """Random LPs with a known interior feasible point (the anchor is
    strictly inside every inequality), so IPM convergence is fair."""
    n = draw(st.integers(1, 4))
    anchor = [draw(st.integers(1, 8)) for _ in range(n)]
    m_count = draw(st.integers(1, 5))
    cons = []
    for _ in range(m_count):
        coeffs = [draw(_coef) for _ in range(n)]
        slack = draw(st.integers(1, 10))
        kind = draw(st.sampled_from(["le", "ge"]))
        at = sum(c * a for c, a in zip(coeffs, anchor))
        rhs = at + slack if kind == "le" else at - slack
        cons.append((coeffs, kind, rhs))
    obj = [draw(_coef) for _ in range(n)]
    return n, cons, obj


def _build(spec):
    n, cons, obj = spec
    m = Model()
    xs = [m.add_variable(f"x{i}", lb=0.0, ub=10.0) for i in range(n)]
    for coeffs, kind, rhs in cons:
        expr = sum((c * x for c, x in zip(coeffs[1:], xs[1:])), coeffs[0] * xs[0])
        m.add_constraint(expr <= rhs if kind == "le" else expr >= rhs)
    m.minimize(sum((c * x for c, x in zip(obj[1:], xs[1:])), obj[0] * xs[0]))
    return m


@settings(max_examples=40, deadline=None)
@given(feasible_lps())
def test_ipm_matches_highs_on_feasible_lps(spec):
    reference = _build(spec).solve("highs")
    solution = _build(spec).solve("interior_point")
    assert solution.objective == pytest.approx(
        reference.objective, abs=1e-4, rel=1e-4
    )
