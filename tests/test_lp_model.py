"""Unit tests for Model construction and solving behavior."""

import pytest

from repro.errors import InfeasibleError, ModelError, SolverError, UnboundedError
from repro.lp import Model


def test_add_variable_defaults():
    m = Model()
    x = m.add_variable("x")
    assert x.lb == 0.0
    assert x.ub == float("inf")


def test_add_variable_bounds_validated():
    m = Model()
    with pytest.raises(ModelError):
        m.add_variable("x", lb=2.0, ub=1.0)


def test_add_variables_names():
    m = Model()
    xs = m.add_variables(3, prefix="f")
    assert [v.name for v in xs] == ["f[0]", "f[1]", "f[2]"]
    assert m.num_variables == 3


def test_add_constraint_rejects_non_constraint():
    m = Model()
    with pytest.raises(ModelError):
        m.add_constraint(42)  # type: ignore[arg-type]


def test_trivially_true_constant_constraint_dropped():
    m = Model()
    x = m.add_variable("x")
    m.add_constraint(x - x <= 5)  # 0 <= 5, constant and true
    assert m.num_constraints == 0


def test_constant_false_constraint_raises():
    m = Model()
    x = m.add_variable("x")
    with pytest.raises(ModelError):
        m.add_constraint(x - x >= 5)  # 0 >= 5


def test_foreign_constraint_rejected():
    m1, m2 = Model(), Model()
    x = m1.add_variable("x")
    with pytest.raises(ModelError):
        m2.add_constraint(x >= 0)


def test_objective_must_be_linear():
    m = Model()
    with pytest.raises(ModelError):
        m.minimize("nonsense")  # type: ignore[arg-type]


def test_scalar_objective_allowed():
    m = Model()
    m.add_variable("x")
    m.minimize(7)
    solution = m.solve()
    assert solution.objective == pytest.approx(7.0)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_basic_minimize(backend):
    m = Model()
    x = m.add_variable("x")
    y = m.add_variable("y")
    m.add_constraint(x + y >= 10)
    m.minimize(3 * x + 5 * y)
    solution = m.solve(backend)
    assert solution.objective == pytest.approx(30.0)
    assert solution.value(x) == pytest.approx(10.0)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_basic_maximize(backend):
    m = Model()
    x = m.add_variable("x", ub=4.0)
    y = m.add_variable("y", ub=6.0)
    m.add_constraint(x + y <= 8)
    m.maximize(x + 2 * y)
    solution = m.solve(backend)
    assert solution.objective == pytest.approx(14.0)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_objective_constant_term(backend):
    m = Model()
    x = m.add_variable("x", lb=1.0)
    m.minimize(2 * x + 100)
    solution = m.solve(backend)
    assert solution.objective == pytest.approx(102.0)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_infeasible_raises(backend):
    m = Model()
    x = m.add_variable("x", ub=1.0)
    m.add_constraint(x >= 5)
    m.minimize(x)
    with pytest.raises(InfeasibleError):
        m.solve(backend)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_unbounded_raises(backend):
    m = Model()
    x = m.add_variable("x")
    m.maximize(x)
    with pytest.raises(UnboundedError):
        m.solve(backend)


def test_unknown_backend():
    m = Model()
    m.add_variable("x")
    m.minimize(0)
    with pytest.raises(SolverError):
        m.solve("gurobi")


def test_max_epigraph_tracks_maximum():
    m = Model()
    u = m.add_variable("u", lb=2.0)
    z = m.add_max_epigraph([u, 3 * u - 5, 1.0], name="z")
    m.minimize(z)
    solution = m.solve()
    # At u = 2: max(2, 1, 1) = 2.
    assert solution.objective == pytest.approx(2.0)


def test_max_epigraph_with_lb():
    m = Model()
    u = m.add_variable("u")
    z = m.add_max_epigraph([u], lb=7.0)
    m.minimize(z)
    assert m.solve().objective == pytest.approx(7.0)


def test_max_epigraph_empty_rejected():
    m = Model()
    with pytest.raises(ModelError):
        m.add_max_epigraph([])


def test_solution_value_of_expression():
    m = Model()
    x = m.add_variable("x", lb=3.0)
    y = m.add_variable("y", lb=4.0)
    m.minimize(x + y)
    solution = m.solve()
    assert solution.value(2 * x - y + 1) == pytest.approx(3.0)
    assert solution.value(5) == pytest.approx(5.0)


def test_solution_guards_model_identity():
    m1, m2 = Model(), Model()
    x1 = m1.add_variable("x")
    m1.minimize(x1)
    m2.add_variable("x")
    m2.minimize(0)
    solution2 = m2.solve()
    with pytest.raises(ModelError):
        solution2.value(x1)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_equality_constraints(backend):
    m = Model()
    x = m.add_variable("x")
    y = m.add_variable("y")
    m.add_constraint(x + y == 10)
    m.add_constraint(x - y == 2)
    m.minimize(x)
    solution = m.solve(backend)
    assert solution.value(x) == pytest.approx(6.0)
    assert solution.value(y) == pytest.approx(4.0)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
def test_free_variable(backend):
    m = Model()
    x = m.add_variable("x", lb=None)
    m.add_constraint(x >= -10)
    m.minimize(x)
    solution = m.solve(backend)
    assert solution.value(x) == pytest.approx(-10.0)
