"""Property-based cross-validation of the two LP backends.

Random small LPs are generated and solved with both HiGHS and the pure
simplex implementation; they must agree on feasibility and, when
optimal, on the objective value.  Constraints are built around a known
feasible point so a healthy share of instances is feasible.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InfeasibleError, UnboundedError
from repro.lp import Model
from repro.lp.constraint import Sense

_coef = st.integers(-4, 4)


@st.composite
def lp_specs(draw):
    """A declarative random LP: (n, constraints, objective coefs)."""
    n = draw(st.integers(1, 5))
    anchor = [draw(st.integers(0, 10)) for _ in range(n)]
    m_count = draw(st.integers(0, 6))
    constraints = []
    for _ in range(m_count):
        coeffs = [draw(_coef) for _ in range(n)]
        kind = draw(st.sampled_from(["le", "ge", "eq"]))
        slack = draw(st.integers(0, 10))
        lhs_at_anchor = sum(c * a for c, a in zip(coeffs, anchor))
        if kind == "le":
            rhs = lhs_at_anchor + slack
        elif kind == "ge":
            rhs = lhs_at_anchor - slack
        else:
            rhs = lhs_at_anchor
        constraints.append((coeffs, kind, rhs))
    objective = [draw(_coef) for _ in range(n)]
    return n, constraints, objective


def _build(spec):
    n, constraints, objective = spec
    model = Model("prop")
    xs = [model.add_variable(f"x{i}", lb=0.0, ub=10.0) for i in range(n)]
    for coeffs, kind, rhs in constraints:
        expr = sum((c * x for c, x in zip(coeffs[1:], xs[1:])), coeffs[0] * xs[0])
        if kind == "le":
            model.add_constraint(expr <= rhs)
        elif kind == "ge":
            model.add_constraint(expr >= rhs)
        else:
            model.add_constraint(expr == rhs)
    model.minimize(
        sum((c * x for c, x in zip(objective[1:], xs[1:])), objective[0] * xs[0])
    )
    return model


def _solve(model, backend):
    try:
        return ("optimal", model.solve(backend).objective)
    except InfeasibleError:
        return ("infeasible", None)
    except UnboundedError:  # pragma: no cover - box bounds prevent this
        return ("unbounded", None)


@settings(max_examples=60, deadline=None)
@given(lp_specs())
def test_backends_agree_on_random_lps(spec):
    status_a, obj_a = _solve(_build(spec), "highs")
    status_b, obj_b = _solve(_build(spec), "simplex")
    assert status_a == status_b
    if status_a == "optimal":
        assert obj_a == pytest.approx(obj_b, abs=1e-6, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(lp_specs())
def test_highs_solution_is_feasible(spec):
    model = _build(spec)
    try:
        solution = model.solve("highs")
    except InfeasibleError:
        return
    for con in model.constraints:
        value = solution.value(con.expr)
        if con.sense is Sense.LE:
            assert value <= 1e-6
        elif con.sense is Sense.GE:
            assert value >= -1e-6
        else:
            assert value == pytest.approx(0.0, abs=1e-6)
    for var in model.variables:
        v = solution.value(var)
        assert var.lb - 1e-9 <= v <= var.ub + 1e-9


@settings(max_examples=40, deadline=None)
@given(lp_specs())
def test_anchored_instances_with_only_slack_constraints_feasible(spec):
    """If every constraint is an inequality (has slack toward the
    anchor), the anchor point itself is feasible, so solve must not
    report infeasibility."""
    n, constraints, objective = spec
    if any(kind == "eq" for _c, kind, _r in constraints):
        return
    model = _build((n, constraints, objective))
    solution = model.solve("highs")
    assert solution is not None
