"""Unit tests for the combinatorial flow algorithms (vs networkx)."""

import networkx as nx
import pytest

from repro.errors import SolverError, TopologyError
from repro.mcmf import FlowNetwork, dinic_max_flow, max_concurrent_flow, min_cost_flow


def diamond():
    """The classic 4-node diamond: 0 -> {1,2} -> 3."""
    net = FlowNetwork(4)
    net.add_edge(0, 1, capacity=10, cost=1)
    net.add_edge(0, 2, capacity=5, cost=2)
    net.add_edge(1, 3, capacity=7, cost=1)
    net.add_edge(2, 3, capacity=8, cost=1)
    net.add_edge(1, 2, capacity=3, cost=0)
    return net


class TestFlowNetwork:
    def test_validation(self):
        with pytest.raises(TopologyError):
            FlowNetwork(0)
        net = FlowNetwork(2)
        with pytest.raises(TopologyError):
            net.add_edge(0, 5, capacity=1)
        with pytest.raises(TopologyError):
            net.add_edge(0, 1, capacity=-1)

    def test_edge_bookkeeping(self):
        net = FlowNetwork(2)
        idx = net.add_edge(0, 1, capacity=4, cost=3)
        assert net.edge_flow(idx) == 0.0
        assert net.edge_flows() == []
        net.adj[0][0].push(2.0)
        assert net.edge_flow(idx) == 2.0
        assert net.total_cost() == pytest.approx(6.0)
        net.reset_flows()
        assert net.edge_flow(idx) == 0.0

    def test_from_edges(self):
        net = FlowNetwork.from_edges(3, [(0, 1, 2.0, 1.0), (1, 2, 2.0, 1.0)])
        assert dinic_max_flow(net, 0, 2) == pytest.approx(2.0)


class TestMaxFlow:
    def test_diamond(self):
        # Max flow 0->3 = 15: 0->1 carries 10 (7 on to 3, 3 via the
        # shortcut to 2), 0->2 carries 5, and 2->3 carries 8.
        assert dinic_max_flow(diamond(), 0, 3) == pytest.approx(15.0)

    def test_matches_networkx_on_diamond(self):
        g = nx.DiGraph()
        for e in [(0, 1, 10), (0, 2, 5), (1, 3, 7), (2, 3, 8), (1, 2, 3)]:
            g.add_edge(e[0], e[1], capacity=e[2])
        expected, _ = nx.maximum_flow(g, 0, 3)
        assert dinic_max_flow(diamond(), 0, 3) == pytest.approx(expected)

    def test_disconnected(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, capacity=5)
        assert dinic_max_flow(net, 0, 2) == 0.0

    def test_validation(self):
        net = FlowNetwork(3)
        with pytest.raises(TopologyError):
            dinic_max_flow(net, 1, 1)
        with pytest.raises(TopologyError):
            dinic_max_flow(net, 0, 9)

    def test_flow_conservation(self):
        net = diamond()
        value = dinic_max_flow(net, 0, 3)
        balance = [0.0] * 4
        for src, dst, flow in net.edge_flows():
            balance[src] -= flow
            balance[dst] += flow
        assert balance[0] == pytest.approx(-value)
        assert balance[3] == pytest.approx(value)
        assert balance[1] == pytest.approx(0.0)
        assert balance[2] == pytest.approx(0.0)


class TestMinCostFlow:
    def test_prefers_cheap_path(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, capacity=10, cost=1)
        net.add_edge(1, 2, capacity=10, cost=1)
        net.add_edge(0, 2, capacity=10, cost=5)
        cost = min_cost_flow(net, 0, 2, amount=5)
        assert cost == pytest.approx(10.0)  # via the 2-hop cost-2 path

    def test_spills_to_expensive_path(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, capacity=4, cost=1)
        net.add_edge(1, 2, capacity=4, cost=1)
        net.add_edge(0, 2, capacity=10, cost=5)
        cost = min_cost_flow(net, 0, 2, amount=6)
        assert cost == pytest.approx(4 * 2 + 2 * 5)

    def test_matches_networkx(self):
        net = diamond()
        cost = min_cost_flow(net, 0, 3, amount=12)
        g = nx.DiGraph()
        for e, (cap, c) in {
            (0, 1): (10, 1), (0, 2): (5, 2), (1, 3): (7, 1),
            (2, 3): (8, 1), (1, 2): (3, 0),
        }.items():
            g.add_edge(*e, capacity=cap, weight=c)
        g.nodes[0]["demand"] = -12
        g.nodes[3]["demand"] = 12
        expected = nx.min_cost_flow_cost(g)
        assert cost == pytest.approx(expected)

    def test_insufficient_capacity(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, capacity=3, cost=1)
        with pytest.raises(SolverError):
            min_cost_flow(net, 0, 1, amount=5)

    def test_zero_amount(self):
        assert min_cost_flow(diamond(), 0, 3, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(TopologyError):
            min_cost_flow(diamond(), 1, 1, 1.0)
        with pytest.raises(TopologyError):
            min_cost_flow(diamond(), 0, 3, -1.0)

    def test_negative_cycle_detected(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, capacity=5, cost=-2)
        net.add_edge(1, 0, capacity=5, cost=-2)
        with pytest.raises(SolverError):
            min_cost_flow(net, 0, 1, amount=1)


class TestMaxConcurrentFlow:
    def test_single_commodity_equals_maxflow_fraction(self):
        # Demand 30 through a 15-capacity network: lambda = 0.5.
        edges = [(0, 1, 10.0), (0, 2, 5.0), (1, 3, 7.0), (2, 3, 8.0), (1, 2, 3.0)]
        lam, flows = max_concurrent_flow(4, edges, [(0, 3, 30.0)])
        assert lam == pytest.approx(0.5)

    def test_lambda_capped(self):
        edges = [(0, 1, 100.0)]
        lam, _ = max_concurrent_flow(2, edges, [(0, 1, 1.0)], cap_lambda=1.0)
        assert lam == pytest.approx(1.0)

    def test_two_commodities_share_bottleneck(self):
        # Both commodities cross the same 10-capacity edge with demand
        # 10 each: lambda = 0.5.
        edges = [(0, 1, 10.0), (2, 0, 100.0), (1, 3, 100.0)]
        commodities = [(0, 1, 10.0), (2, 3, 10.0)]
        lam, flows = max_concurrent_flow(4, edges, commodities, cap_lambda=10.0)
        assert lam == pytest.approx(0.5)
        # Flows reported per commodity respect the shared edge.
        total_on_bottleneck = sum(f.get((0, 1), 0.0) for f in flows)
        assert total_on_bottleneck <= 10.0 + 1e-6

    def test_validation(self):
        with pytest.raises(TopologyError):
            max_concurrent_flow(2, [], [])
        with pytest.raises(TopologyError):
            max_concurrent_flow(2, [], [(0, 0, 1.0)])
        with pytest.raises(TopologyError):
            max_concurrent_flow(2, [], [(0, 1, 0.0)])
        with pytest.raises(TopologyError):
            max_concurrent_flow(2, [], [(0, 5, 1.0)])
        with pytest.raises(TopologyError):
            max_concurrent_flow(2, [(0, 1, -1.0)], [(0, 1, 1.0)])
