"""Property-based tests: our flow algorithms agree with networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.mcmf import FlowNetwork, dinic_max_flow, min_cost_flow


@st.composite
def random_graphs(draw):
    """A random directed graph with integer capacities and costs."""
    n = draw(st.integers(2, 7))
    max_edges = n * (n - 1)
    pair_pool = [(i, j) for i in range(n) for j in range(n) if i != j]
    count = draw(st.integers(1, min(12, max_edges)))
    indices = draw(
        st.lists(
            st.integers(0, len(pair_pool) - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    edges = []
    for idx in indices:
        src, dst = pair_pool[idx]
        capacity = draw(st.integers(1, 20))
        cost = draw(st.integers(0, 9))
        edges.append((src, dst, float(capacity), float(cost)))
    return n, edges


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_dinic_matches_networkx(graph):
    n, edges = graph
    net = FlowNetwork.from_edges(n, edges)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for src, dst, capacity, _cost in edges:
        g.add_edge(src, dst, capacity=capacity)
    ours = dinic_max_flow(net, 0, n - 1)
    theirs, _ = nx.maximum_flow(g, 0, n - 1)
    assert ours == pytest.approx(theirs, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(random_graphs(), st.integers(1, 10))
def test_min_cost_flow_matches_networkx(graph, amount):
    n, edges = graph
    net = FlowNetwork.from_edges(n, edges)
    # Only compare when the amount is routable at all.
    capacity_net = FlowNetwork.from_edges(n, edges)
    if dinic_max_flow(capacity_net, 0, n - 1) < amount - 1e-9:
        with pytest.raises(SolverError):
            min_cost_flow(net, 0, n - 1, float(amount))
        return

    ours = min_cost_flow(net, 0, n - 1, float(amount))

    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for src, dst, capacity, cost in edges:
        if g.has_edge(src, dst):
            continue
        g.add_edge(src, dst, capacity=capacity, weight=cost)
    g.nodes[0]["demand"] = -amount
    g.nodes[n - 1]["demand"] = amount
    theirs = nx.min_cost_flow_cost(g)
    assert ours == pytest.approx(theirs, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_min_cost_flow_conserves_and_respects_capacity(graph):
    n, edges = graph
    probe = FlowNetwork.from_edges(n, edges)
    routable = dinic_max_flow(probe, 0, n - 1)
    if routable < 1e-9:
        return
    amount = routable / 2.0
    net = FlowNetwork.from_edges(n, edges)
    min_cost_flow(net, 0, n - 1, amount)
    balance = [0.0] * n
    caps = {}
    for src, dst, capacity, _cost in edges:
        caps[(src, dst)] = caps.get((src, dst), 0.0) + capacity
    used = {}
    for src, dst, flow in net.edge_flows():
        assert flow >= -1e-9
        used[(src, dst)] = used.get((src, dst), 0.0) + flow
        balance[src] -= flow
        balance[dst] += flow
    for key, flow in used.items():
        assert flow <= caps[key] + 1e-6
    assert balance[0] == pytest.approx(-amount, abs=1e-6)
    assert balance[n - 1] == pytest.approx(amount, abs=1e-6)
    for node in range(1, n - 1):
        assert balance[node] == pytest.approx(0.0, abs=1e-6)
