"""Unit tests for streaming metrics, Prometheus exposition, and SLOs."""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS, Histogram, MetricsSnapshot
from repro.obs.prom import metric_name, render_prometheus, validate_prometheus
from repro.obs.slo import SloMonitor, SloThresholds


# -- histogram -------------------------------------------------------------


def test_histogram_bounds_validation():
    with pytest.raises(ObservabilityError, match="strictly increasing"):
        Histogram([1.0, 1.0, 2.0])
    with pytest.raises(ObservabilityError, match="strictly increasing"):
        Histogram([])


def test_histogram_exact_stats():
    hist = Histogram()
    for value in (0.001, 0.01, 0.1):
        hist.observe(value)
    assert hist.count == 3
    assert hist.sum == pytest.approx(0.111)
    assert hist.mean == pytest.approx(0.037)
    assert hist.min == 0.001
    assert hist.max == 0.1


def test_histogram_quantile_accuracy_bound():
    """Rank-interpolated quantiles stay within one bucket ratio of the
    exact value (the documented accuracy contract for the default
    log-spaced bounds, ratio 10^(1/4) ~ 1.78)."""
    ratio = 10.0 ** 0.25
    values = [1e-4 * (1.13 ** i) for i in range(80)]  # 0.1ms .. ~1.5s
    hist = Histogram()
    for value in values:
        hist.observe(value)
    ordered = sorted(values)
    for q in (0.50, 0.90, 0.99):
        exact = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
        estimate = hist.quantile(q)
        assert exact / ratio <= estimate <= exact * ratio, (
            f"q={q}: estimate {estimate} vs exact {exact}"
        )


def test_histogram_quantile_clamps_to_observed_range():
    hist = Histogram()
    hist.observe(0.005)
    assert hist.quantile(0.0) == 0.005
    assert hist.quantile(1.0) == 0.005
    assert hist.quantile(0.5) == 0.005
    with pytest.raises(ObservabilityError, match="quantile"):
        hist.quantile(1.5)


def test_histogram_overflow_and_negative_samples():
    hist = Histogram([0.1, 1.0])
    hist.observe(-5.0)   # clamps into bucket 0
    hist.observe(50.0)   # overflow bucket
    assert hist.counts[0] == 1
    assert hist.counts[-1] == 1
    assert hist.min == -5.0
    assert hist.max == 50.0
    assert hist.quantile(1.0) == 50.0


def test_histogram_empty_queries():
    hist = Histogram()
    assert hist.quantile(0.5) == 0.0
    assert hist.mean == 0.0
    assert hist.percentiles() == {"count": 0}


def test_histogram_merge_equals_union():
    left, right, union = Histogram(), Histogram(), Histogram()
    for i, value in enumerate(0.001 * (2 ** i) for i in range(20)):
        (left if i % 2 else right).observe(value)
        union.observe(value)
    left.merge(right)
    assert left.count == union.count
    assert left.sum == pytest.approx(union.sum)
    assert left.counts == union.counts
    for q in (0.5, 0.9, 0.99):
        assert left.quantile(q) == pytest.approx(union.quantile(q))


def test_histogram_merge_rejects_mismatched_bounds():
    with pytest.raises(ObservabilityError, match="different bucket bounds"):
        Histogram([0.1, 1.0]).merge(Histogram([0.2, 2.0]))


def test_histogram_dict_round_trip():
    hist = Histogram()
    for value in (1e-4, 3e-3, 0.2, 7.0, 500.0):
        hist.observe(value)
    payload = json.loads(json.dumps(hist.to_dict()))  # must be JSON-safe
    restored = Histogram.from_dict(payload)
    assert restored.bounds == hist.bounds
    assert restored.counts == hist.counts
    assert restored.percentiles() == pytest.approx(hist.percentiles())
    empty = Histogram.from_dict(Histogram().to_dict())
    assert empty.count == 0
    assert empty.min == math.inf


def test_default_bounds_cover_latency_range():
    assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-5)
    assert DEFAULT_LATENCY_BOUNDS[-1] >= 200.0


# -- the snapshot sink -----------------------------------------------------


def _folded_snapshot():
    sink = MetricsSnapshot()
    registry = obs.Registry()
    registry.add_sink(sink)
    with registry.span("service.slot", slot=0):
        pass
    with pytest.raises(RuntimeError):
        with registry.span("service.slot"):
            raise RuntimeError("boom")
    registry.counter("service.admitted", 3)
    registry.counter("service.admitted", 2)
    registry.gauge("service.queue_depth", 4)
    registry.gauge("service.queue_depth", 1)
    registry.gauge("service.decision_s", 0.012)
    registry.gauge("service.decision_s", 0.034)
    return sink


def test_metrics_snapshot_folds_events():
    sink = _folded_snapshot()
    snap = sink.snapshot()
    assert snap["counters"]["service.admitted"] == {"total": 5.0, "count": 2}
    gauge = snap["gauges"]["service.queue_depth"]
    assert (gauge["last"], gauge["min"], gauge["max"]) == (1.0, 1.0, 4.0)
    span_hist = snap["histograms"]["service.slot"]
    assert span_hist["kind"] == "span"
    assert span_hist["count"] == 2
    assert span_hist["errors"] == 1
    # Seconds-valued gauges get a histogram of their own.
    decision = snap["histograms"]["service.decision_s"]
    assert decision["kind"] == "gauge"
    assert decision["count"] == 2
    assert sink.counter_total("service.admitted") == 5.0
    assert sink.gauge_last("service.queue_depth") == 1.0
    assert sink.histogram("service.slot").count == 2
    assert sink.gauge_last("missing") is None


def test_metrics_snapshot_is_idempotent_and_json_safe():
    sink = _folded_snapshot()
    first = sink.snapshot()
    second = sink.snapshot()
    assert first == second
    json.dumps(first)  # must not raise
    # Reading never resets the fold.
    assert sink.counter_total("service.admitted") == 5.0


# -- prometheus exposition -------------------------------------------------


def test_metric_name_mangling():
    assert metric_name("service.decision_s") == "postcard_service_decision_s"
    assert metric_name("slo.ok") == "postcard_slo_ok"


def test_render_prometheus_round_trips_the_lint():
    sink = _folded_snapshot()
    snapshot = sink.snapshot()
    snapshot["slo"] = {
        "admission_ratio": {"value": 0.97, "budget": 0.95, "ok": True},
    }
    text = render_prometheus(snapshot)
    assert "# TYPE postcard_service_admitted_total counter" in text
    assert "postcard_service_admitted_total 5.0" in text
    assert 'postcard_service_slot_summary{quantile="0.99"}' in text
    assert "postcard_slo_admission_ratio_ok 1.0" in text
    assert validate_prometheus(text) > 0


def test_render_prometheus_skips_empty_histograms():
    text = render_prometheus({
        "counters": {"c": {"total": 1.0, "count": 1}},
        "histograms": {"empty": {"count": 0}},
    })
    assert "empty" not in text
    assert validate_prometheus(text) == 1


def test_validate_prometheus_rejects_classic_bugs():
    with pytest.raises(ObservabilityError, match="no TYPE header"):
        validate_prometheus("orphan 1.0\n")
    with pytest.raises(ObservabilityError, match="duplicate metric family"):
        validate_prometheus(
            "# TYPE postcard_x gauge\npostcard_x 1\n"
            "# TYPE postcard_x gauge\npostcard_x 2\n"
        )
    with pytest.raises(ObservabilityError, match="interleaved"):
        validate_prometheus(
            "# TYPE postcard_a gauge\n"
            "# TYPE postcard_b gauge\n"
            "postcard_a 1\n"
        )
    with pytest.raises(ObservabilityError, match="non-numeric"):
        validate_prometheus("# TYPE postcard_x gauge\npostcard_x lots\n")
    with pytest.raises(ObservabilityError, match="unparseable"):
        validate_prometheus("# TYPE postcard_x gauge\n!!! ???\n")
    with pytest.raises(ObservabilityError, match="no samples"):
        validate_prometheus("# TYPE postcard_x gauge\n")


# -- SLO monitor -----------------------------------------------------------


def test_slo_all_ok_when_idle():
    states = SloMonitor(window=8).evaluate()
    assert set(states) == {
        "admission_ratio", "decision_p99_s", "checkpoint_p99_s",
        "intake_depth", "degraded_slots",
    }
    assert all(state["ok"] for state in states.values())


def test_slo_detects_breaches_against_budgets():
    monitor = SloMonitor(
        SloThresholds(
            min_admission_ratio=0.9,
            decision_budget_s=0.1,
            checkpoint_budget_s=0.5,
            max_intake_depth=4,
        ),
        window=8,
    )
    monitor.record_slot(admitted=1, rejected=3, decision_s=0.2, depth=9)
    monitor.record_checkpoint(2.0)
    states = monitor.evaluate()
    assert not states["admission_ratio"]["ok"]
    assert not states["decision_p99_s"]["ok"]
    assert not states["checkpoint_p99_s"]["ok"]
    assert not states["intake_depth"]["ok"]
    assert states["admission_ratio"]["value"] == pytest.approx(0.25)
    assert states["intake_depth"]["value"] == 9.0


def test_slo_window_rolls_off_old_samples():
    monitor = SloMonitor(SloThresholds(min_admission_ratio=0.9), window=4)
    monitor.record_slot(0, 4, 0.001, 0)  # bad slot
    assert not monitor.evaluate()["admission_ratio"]["ok"]
    for _ in range(4):  # four good slots push the bad one out
        monitor.record_slot(4, 0, 0.001, 0)
    state = monitor.evaluate()["admission_ratio"]
    assert state["ok"]
    assert state["value"] == 1.0
    assert state["window"] == 4


def test_slo_emits_gauges_and_breach_edges():
    monitor = SloMonitor(
        SloThresholds(min_admission_ratio=0.9, max_intake_depth=100),
        window=4,
    )
    registry = obs.Registry()
    previous = obs.set_registry(registry)
    try:
        sink = registry.add_sink(MetricsSnapshot())
        monitor.record_slot(0, 4, 0.001, 0)
        monitor.evaluate(emit=True)
        monitor.evaluate(emit=True)  # still breaching: no new edge
        assert monitor.breaches == 1
        assert sink.counter_total("slo.breaches") == 1
        assert sink.gauge_last("slo.admission_ratio") == 0.0
        assert sink.gauge_last("slo.ok") == 0.0
        for _ in range(4):
            monitor.record_slot(4, 0, 0.001, 0)
        monitor.evaluate(emit=True)
        assert sink.gauge_last("slo.ok") == 1.0
        monitor.record_slot(0, 40, 0.001, 0)
        monitor.evaluate(emit=True)  # ok -> breach again
        assert monitor.breaches == 2
    finally:
        obs.set_registry(previous)


def test_slo_evaluate_without_emit_is_pure():
    monitor = SloMonitor(SloThresholds(min_admission_ratio=0.9), window=4)
    registry = obs.Registry()
    previous = obs.set_registry(registry)
    try:
        sink = registry.add_sink(MetricsSnapshot())
        monitor.record_slot(0, 4, 0.001, 0)
        monitor.evaluate()
        monitor.evaluate()
        assert monitor.breaches == 0
        assert sink.num_events == 0
    finally:
        obs.set_registry(previous)


def test_slo_rejects_bad_window():
    with pytest.raises(ValueError, match="window"):
        SloMonitor(window=0)
