"""Unit tests for shared-upstream multicast optimization."""

import pytest

from repro.core import PostcardScheduler
from repro.core.state import NetworkState
from repro.extensions import solve_multicast
from repro.net.generators import complete_topology, line_topology, star_topology
from repro.traffic import expand_multicast


def test_single_destination_matches_unicast(line3):
    state = NetworkState(line3, horizon=20)
    result = solve_multicast(state, 0, [2], 6.0, deadline_slots=3)
    unicast_state = NetworkState(line3, horizon=20)
    from repro.core import build_postcard_model
    from repro.traffic import TransferRequest

    _, unicast = build_postcard_model(
        unicast_state, [TransferRequest(0, 2, 6.0, 3, release_slot=0)]
    ).solve()
    assert result.cost_per_slot == pytest.approx(unicast.objective, rel=1e-6)


def test_shared_first_hop_on_star():
    """Replicating from one leaf to two others via the hub: the leaf's
    uplink carries the data ONCE under multicast, twice under the
    paper's per-destination expansion."""
    topo = star_topology(4, capacity=50.0, spoke_price=1.0)
    state = NetworkState(topo, horizon=20)
    result = solve_multicast(state, 1, [2, 3], 12.0, deadline_slots=4)

    # Separate-file baseline on a fresh state.
    separate = PostcardScheduler(star_topology(4, capacity=50.0, spoke_price=1.0), horizon=20)
    separate.on_slot(0, expand_multicast(1, [2, 3], 12.0, 4, release_slot=0))

    assert result.cost_per_slot <= separate.state.current_cost_per_slot() + 1e-6
    # The uplink (1 -> 0) carries at most the file size in total.
    uplink_total = sum(
        e.volume
        for e in result.schedule.transit_entries()
        if (e.src, e.dst) == (1, 0)
    )
    assert uplink_total <= 12.0 + 1e-6


def test_all_destinations_served():
    topo = complete_topology(5, capacity=40.0, seed=6)
    state = NetworkState(topo, horizon=20)
    result = solve_multicast(state, 0, [1, 2, 3], 25.0, deadline_slots=3)
    assert set(result.completions) == {1, 2, 3}
    deadline_layer = 0 + 3
    assert all(slot < deadline_layer for slot in result.completions.values())


def test_respects_capacity():
    topo = complete_topology(4, capacity=10.0, seed=8)
    state = NetworkState(topo, horizon=20)
    result = solve_multicast(state, 0, [1, 2], 18.0, deadline_slots=3)
    volumes = result.schedule.link_slot_volumes()
    for (src, dst, _slot), volume in volumes.items():
        assert volume <= topo.link(src, dst).capacity + 1e-6


def test_never_worse_than_separate_files():
    topo = complete_topology(6, capacity=30.0, seed=9)
    state = NetworkState(topo, horizon=20)
    result = solve_multicast(state, 0, [2, 3, 4], 20.0, deadline_slots=4)

    separate = PostcardScheduler(
        complete_topology(6, capacity=30.0, seed=9), horizon=20
    )
    separate.on_slot(0, expand_multicast(0, [2, 3, 4], 20.0, 4, release_slot=0))
    assert (
        result.cost_per_slot
        <= separate.state.current_cost_per_slot() + 1e-6
    )
