"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.net.generators import complete_topology
from repro.obs.registry import _NULL_SPAN, Registry


# -- registry basics ------------------------------------------------------


def test_disabled_span_is_cached_noop():
    registry = Registry()
    assert registry.span("anything") is _NULL_SPAN
    assert registry.span("other", attr=1) is _NULL_SPAN
    with registry.span("x"):
        pass  # must be usable as a context manager


def test_enabled_registry_emits_span_events():
    registry = Registry()
    collector = registry.add_sink(obs.Collector(keep_events=True))
    with registry.span("stage", backend="simplex"):
        pass
    assert collector.num_events == 1
    event = collector.events[0]
    assert event["type"] == "span"
    assert event["name"] == "stage"
    assert event["attrs"] == {"backend": "simplex"}
    assert event["dur"] >= 0.0
    assert event["error"] is False


def test_span_nesting_depth_and_parent():
    registry = Registry()
    collector = registry.add_sink(obs.Collector(keep_events=True))
    with registry.span("outer"):
        with registry.span("middle"):
            with registry.span("inner"):
                pass
    by_name = {e["name"]: e for e in collector.events}
    assert by_name["outer"]["depth"] == 0
    assert by_name["outer"]["parent"] is None
    assert by_name["middle"]["depth"] == 1
    assert by_name["middle"]["parent"] == "outer"
    assert by_name["inner"]["depth"] == 2
    assert by_name["inner"]["parent"] == "middle"
    # Inner spans complete first.
    assert [e["name"] for e in collector.events] == ["inner", "middle", "outer"]


def test_span_exception_safety():
    """An exception unwinds the stack and flags the event, then
    propagates; subsequent spans see a clean stack."""
    registry = Registry()
    collector = registry.add_sink(obs.Collector(keep_events=True))
    with pytest.raises(ValueError):
        with registry.span("outer"):
            with registry.span("inner"):
                raise ValueError("boom")
    assert registry._stack == []
    by_name = {e["name"]: e for e in collector.events}
    assert by_name["inner"]["error"] is True
    assert by_name["outer"]["error"] is True
    assert collector.spans["inner"].errors == 1
    with registry.span("after"):
        pass
    assert collector.events[-1]["depth"] == 0


def test_timed_span_measures_without_sinks():
    registry = Registry()
    with registry.timed_span("work") as span:
        sum(range(10000))
    assert span.seconds > 0.0


def test_counters_and_gauges_aggregate():
    registry = Registry()
    collector = registry.add_sink(obs.Collector())
    registry.counter("pivots", 5)
    registry.counter("pivots", 7)
    registry.counter("pivots")  # default increment of 1
    registry.gauge("lambda", 0.25)
    registry.gauge("lambda", 0.75)
    stat = collector.counters["pivots"]
    assert stat.count == 3
    assert stat.total == 13
    assert stat.max == 7
    gauge = collector.gauges["lambda"]
    assert gauge.count == 2
    assert gauge.last == 0.75
    assert gauge.min == 0.25
    assert gauge.max == 0.75


def test_collector_self_time_attribution():
    registry = Registry()
    collector = registry.add_sink(obs.Collector())
    with registry.span("parent"):
        with registry.span("child"):
            pass
    parent = collector.spans["parent"]
    child = collector.spans["child"]
    assert parent.child_seconds == pytest.approx(child.total)
    assert parent.self_seconds == pytest.approx(parent.total - child.total)


def test_add_sink_rejects_non_sinks():
    with pytest.raises(TypeError):
        Registry().add_sink(object())


def test_collecting_context_detaches():
    registry = obs.get_registry()
    with obs.collecting() as collector:
        assert registry.enabled
        with obs.span("inside"):
            pass
    assert not registry.enabled
    assert collector.spans["inside"].count == 1
    # After detach, new events no longer reach the collector.
    obs.counter("late", 1)
    assert "late" not in collector.counters


def test_set_registry_swaps_default():
    replacement = Registry()
    previous = obs.set_registry(replacement)
    try:
        sink = replacement.add_sink(obs.Collector())
        obs.counter("routed", 2)
        assert sink.counter_total("routed") == 2
    finally:
        obs.set_registry(previous)


# -- ambient trace context ------------------------------------------------


def test_trace_context_attaches_to_every_event():
    registry = Registry()
    collector = registry.add_sink(obs.Collector(keep_events=True))
    with registry.trace(trace_ids=["t-1"], slot=3):
        registry.counter("inner.count", 1)
        registry.gauge("inner.level", 0.5)
        with registry.span("inner.span"):
            pass
    registry.counter("outside", 1)
    by_name = {e["name"]: e for e in collector.events}
    for name in ("inner.count", "inner.level", "inner.span"):
        assert by_name[name]["attrs"]["trace_ids"] == ["t-1"]
        assert by_name[name]["attrs"]["slot"] == 3
    assert "attrs" not in by_name["outside"]


def test_trace_frames_nest_inner_wins_event_wins():
    registry = Registry()
    collector = registry.add_sink(obs.Collector(keep_events=True))
    with registry.trace(slot=1, lane="fast"):
        with registry.trace(slot=2):
            registry.counter("a", 1)
            registry.counter("b", 1, lane="lp")
    events = {e["name"]: e for e in collector.events}
    # Inner frame wins on collisions; outer keys still apply.
    assert events["a"]["attrs"] == {"slot": 2, "lane": "fast"}
    # The event's own attrs win over every frame.
    assert events["b"]["attrs"]["lane"] == "lp"


def test_trace_context_unwinds_through_exceptions():
    registry = Registry()
    collector = registry.add_sink(obs.Collector(keep_events=True))
    with pytest.raises(ValueError):
        with registry.trace(trace_ids=["t-9"]):
            raise ValueError("boom")
    assert registry._context == []
    registry.counter("after", 1)
    assert "attrs" not in collector.events[-1]


def test_trace_context_is_free_without_sinks():
    """The no-sink fast path is preserved with a trace frame open: span()
    still hands out the cached no-op singleton and counters return
    before building an event (the micro-check the acceptance criteria
    ask for in place of a bench suite)."""
    registry = Registry()
    with registry.trace(trace_ids=["t-1"]):
        assert registry.span("anything") is _NULL_SPAN
        registry.counter("free", 1)
        registry.gauge("free.level", 1.0)
    assert registry.span("after") is _NULL_SPAN


# -- sink lifecycle mid-run ------------------------------------------------


def test_sink_added_and_removed_mid_run():
    """A sink attached mid-run sees only events from attachment to
    detachment; the registry keeps serving other sinks throughout."""
    registry = Registry()
    early = registry.add_sink(obs.Collector(keep_events=True))
    registry.counter("phase", 1)

    late = registry.add_sink(obs.Collector(keep_events=True))
    registry.counter("phase", 1)

    registry.remove_sink(late)
    registry.counter("phase", 1)

    assert early.counter_total("phase") == 3
    assert late.counter_total("phase") == 1
    # Removing an already-removed sink is a no-op.
    registry.remove_sink(late)
    assert registry.enabled
    registry.remove_sink(early)
    assert not registry.enabled


def test_sink_removed_inside_open_span_still_gets_no_event():
    registry = Registry()
    sink = registry.add_sink(obs.Collector(keep_events=True))
    span = registry.span("stage")
    with span:
        registry.remove_sink(sink)
    # The span completed after detachment: nothing reached the sink,
    # and the registry's stack unwound cleanly.
    assert sink.num_events == 0
    assert registry._stack == []


# -- JSONL sink round-trip ------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    registry = Registry()
    with obs.JsonlSink(path) as sink:
        registry.add_sink(sink)
        with registry.span("outer", tag="x"):
            registry.counter("count", 3)
        registry.gauge("level", 1.5)
        registry.remove_sink(sink)
    assert sink.num_events == 3

    events = obs.load_events(path)
    assert [e["type"] for e in events] == ["counter", "span", "gauge"]
    collector = obs.Collector().replay(events)
    assert collector.counter_total("count") == 3
    assert collector.spans["outer"].count == 1
    assert collector.gauges["level"].last == 1.5
    # The rendered report mentions every name.
    text = obs.render_events_report(events)
    assert "outer" in text and "count" in text and "level" in text


def test_load_events_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "span", "name": "ok", "dur": 0.1}\nnot json\n')
    with pytest.raises(ObservabilityError, match="bad.jsonl:2"):
        obs.load_events(path)


def test_load_events_rejects_unknown_shape(tmp_path):
    path = tmp_path / "odd.jsonl"
    path.write_text('{"figure": "fig6", "means": {}}\n')
    with pytest.raises(ObservabilityError, match="not an observability event"):
        obs.load_events(path)


def test_load_events_missing_file(tmp_path):
    with pytest.raises(ObservabilityError, match="cannot read"):
        obs.load_events(tmp_path / "nope.jsonl")


def test_load_events_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text('\n{"type": "counter", "name": "c", "value": 1}\n\n')
    assert len(obs.load_events(path)) == 1


# -- report rendering -----------------------------------------------------


def test_render_report_empty_collector():
    assert "(no events recorded)" in obs.render_report(obs.Collector())


def test_render_report_sections():
    collector = obs.Collector()
    collector.emit({"type": "span", "name": "lp.solve", "dur": 0.5,
                    "depth": 0, "parent": None})
    collector.emit({"type": "counter", "name": "pivots", "value": 42})
    collector.emit({"type": "gauge", "name": "lam", "value": 0.5})
    text = obs.render_report(collector, title="unit test")
    assert "== unit test ==" in text
    assert "lp.solve" in text
    assert "pivots" in text
    assert "42" in text
    assert "lam" in text


# -- end-to-end through the simulation stack ------------------------------


def _run_simulation():
    from repro.core import PostcardScheduler
    from repro.sim import Simulation
    from repro.traffic import PaperWorkload

    topology = complete_topology(4, capacity=30.0, seed=0)
    scheduler = PostcardScheduler(topology, horizon=8, on_infeasible="drop")
    workload = PaperWorkload(topology, max_deadline=3, max_files=3, seed=5)
    return Simulation(scheduler, workload, 3).run()


def test_simulation_emits_stage_breakdown():
    with obs.collecting() as collector:
        result = _run_simulation()
    # Every hot-path stage shows up with nonzero time.
    for name in ("sim.run", "sim.scheduler", "sim.record", "sim.audit",
                 "timeexp.build", "lp.compile", "lp.solve",
                 "scheduler.build_model"):
        assert name in collector.spans, f"missing span {name}"
        assert collector.spans[name].total > 0.0, f"zero time in {name}"
    assert collector.counter_total("lp.cols") > 0
    assert collector.counter_total("timeexp.arcs") > 0
    assert collector.counter_total("sim.requests") == result.total_requests


def test_simulation_timing_breakdown_matches_result():
    """The collector's sim.scheduler total is the same measurement the
    result reports as solve_seconds, and the scheduler's internal
    stages sum to no more than the scheduler envelope."""
    with obs.collecting() as collector:
        result = _run_simulation()
    sched = collector.spans["sim.scheduler"].total
    assert sched == pytest.approx(result.solve_seconds_total, rel=1e-6)
    internal = collector.spans["scheduler.solve"].total
    assert internal <= sched
    # Nested LP stages fit inside the scheduler solve envelope.
    # lp.compile is itself nested inside lp.solve (backends lower the
    # model under their solve span), so it is not added separately.
    lp_total = (collector.spans["lp.solve"].total
                + collector.spans["scheduler.build_model"].total)
    assert lp_total <= internal * (1 + 1e-6)
    assert collector.spans["lp.compile"].total <= (
        collector.spans["lp.solve"].total * (1 + 1e-6)
    )
    # Envelope minus internals is engine/commit overhead, small but >= 0.
    assert sched - internal >= 0.0
    assert result.overhead_seconds_total > 0.0
    assert result.audit_seconds > 0.0
    assert len(result.slots) == result.num_slots
    assert result.solve_seconds_total == pytest.approx(
        sum(r.solve_seconds for r in result.slots)
    )


def test_simulation_runs_clean_without_sinks():
    """No sink attached: same simulation, no events, results intact."""
    registry = obs.get_registry()
    assert not registry.enabled
    result = _run_simulation()
    assert result.total_requests > 0
    assert result.solve_seconds_total > 0.0


def test_jsonl_events_from_simulation_render(tmp_path):
    path = tmp_path / "sim-events.jsonl"
    registry = obs.get_registry()
    sink = obs.JsonlSink(path)
    registry.add_sink(sink)
    try:
        _run_simulation()
    finally:
        registry.remove_sink(sink)
        sink.close()
    events = obs.load_events(path)
    assert events, "simulation produced no events"
    text = obs.render_events_report(events)
    assert "lp.solve" in text and "sim.scheduler" in text
    # Round-trip: every line is valid standalone JSON.
    for line in path.read_text().splitlines():
        json.loads(line)
