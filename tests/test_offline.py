"""Unit tests for the offline (hindsight-optimal) solver."""

import pytest

from repro.errors import SchedulingError
from repro.core import (
    PostcardScheduler,
    empirical_competitive_ratio,
    solve_offline,
)
from repro.net.generators import complete_topology, fig3_topology
from repro.traffic import PaperWorkload, TransferRequest


def test_needs_requests(fig3):
    with pytest.raises(SchedulingError):
        solve_offline(fig3, [], horizon=10)


def test_single_batch_equals_online(fig3):
    # With one release slot, online and offline see the same problem.
    files = [
        TransferRequest(2, 4, 8.0, 4, release_slot=3),
        TransferRequest(1, 4, 10.0, 2, release_slot=3),
    ]
    offline = solve_offline(fig3, files, horizon=100)
    assert offline.cost_per_slot == pytest.approx(98.0 / 3.0)
    offline.schedule.validate(files)


def test_offline_bounds_online():
    topo = complete_topology(5, capacity=30.0, seed=19)
    workload = PaperWorkload(topo, max_deadline=4, max_files=3, seed=8)
    horizon = 30

    online = PostcardScheduler(topo, horizon=horizon)
    all_requests = []
    for slot in range(5):
        requests = workload.requests_at(slot)
        online.on_slot(slot, requests)
        all_requests.extend(requests)

    # The offline solver must see fresh copies (ids are reused).
    offline = solve_offline(topo, all_requests, horizon=horizon)
    ratio = empirical_competitive_ratio(
        online.state.current_cost_per_slot(), offline
    )
    assert ratio >= 1.0 - 1e-9


def test_offline_result_state_billed(fig3):
    files = [TransferRequest(1, 4, 10.0, 2, release_slot=0)]
    offline = solve_offline(fig3, files, horizon=50)
    assert offline.state.current_cost_per_slot() == pytest.approx(
        offline.cost_per_slot
    )
    assert files[0].request_id in offline.state.completions


def test_competitive_ratio_zero_cases(fig3):
    files = [TransferRequest(1, 4, 10.0, 2, release_slot=0)]
    offline = solve_offline(fig3, files, horizon=50)
    assert empirical_competitive_ratio(offline.cost_per_slot, offline) == pytest.approx(1.0)

    class FakeZero:
        cost_per_slot = 0.0

    assert empirical_competitive_ratio(0.0, FakeZero()) == 1.0
    with pytest.raises(SchedulingError):
        empirical_competitive_ratio(5.0, FakeZero())
