"""The paper's worked examples, reproduced to the digit.

These tests pin the headline numbers of the paper's two illustrative
figures; if any formulation detail drifts, they fail loudly.
"""

import pytest

from repro.baselines import DirectScheduler
from repro.core import PostcardScheduler
from repro.flowbased import FlowBasedScheduler, VARIANT_TWO_PHASE
from repro.net.generators import fig1_topology, fig3_topology
from repro.traffic import TransferRequest


class TestFig1:
    """6 MB from D2 to D3 within 15 minutes (3 slots)."""

    def request(self):
        return TransferRequest(2, 3, 6.0, 3, release_slot=0)

    def test_direct_costs_20_per_slot(self):
        scheduler = DirectScheduler(fig1_topology(), horizon=100)
        scheduler.on_slot(0, [self.request()])
        # Fig. 1(a): 2 MB per interval on the price-10 link.
        assert scheduler.state.current_cost_per_slot() == pytest.approx(20.0)

    def test_postcard_costs_12_per_slot(self):
        scheduler = PostcardScheduler(fig1_topology(), horizon=100)
        scheduler.on_slot(0, [self.request()])
        # Fig. 1(b): 3 MB peaks on the price-1 and price-3 links.
        assert scheduler.state.current_cost_per_slot() == pytest.approx(12.0)

    def test_postcard_uses_the_relay_path(self):
        scheduler = PostcardScheduler(fig1_topology(), horizon=100)
        schedule = scheduler.on_slot(0, [self.request()])
        links_used = {(e.src, e.dst) for e in schedule.transit_entries()}
        assert links_used == {(2, 1), (1, 3)}

    def test_deadline_met(self):
        scheduler = PostcardScheduler(fig1_topology(), horizon=100)
        request = self.request()
        scheduler.on_slot(0, [request])
        assert scheduler.state.completions[request.request_id] <= 2


class TestFig3:
    """File 1 = (2->4, 8 GB, T=4), File 2 = (1->4, 10 GB, T=2) at t=3."""

    def files(self):
        return [
            TransferRequest(2, 4, 8.0, 4, release_slot=3),
            TransferRequest(1, 4, 10.0, 2, release_slot=3),
        ]

    def test_postcard_costs_32_67(self):
        scheduler = PostcardScheduler(fig3_topology(), horizon=100)
        scheduler.on_slot(3, self.files())
        assert scheduler.state.current_cost_per_slot() == pytest.approx(98.0 / 3.0)

    def test_flow_based_costs_50(self):
        scheduler = FlowBasedScheduler(fig3_topology(), horizon=100)
        scheduler.on_slot(3, self.files())
        assert scheduler.state.current_cost_per_slot() == pytest.approx(50.0)

    def test_two_phase_matches_lp_here(self):
        scheduler = FlowBasedScheduler(
            fig3_topology(), horizon=100, variant=VARIANT_TWO_PHASE
        )
        scheduler.on_slot(3, self.files())
        assert scheduler.state.current_cost_per_slot() == pytest.approx(50.0)

    def test_direct_costs_52(self):
        scheduler = DirectScheduler(fig3_topology(), horizon=100)
        scheduler.on_slot(3, self.files())
        assert scheduler.state.current_cost_per_slot() == pytest.approx(52.0)

    def test_postcard_stores_at_intermediate_node(self):
        scheduler = PostcardScheduler(fig3_topology(), horizon=100)
        schedule = scheduler.on_slot(3, self.files())
        # The optimum stores part of File 1 (at DC 2 and/or DC 1) to
        # ride link (1,4) after File 2 vacates it.
        assert schedule.total_storage_volume() > 0
        file1, file2 = self.files()
        # File 2 saturates the direct cheap link in both its slots.
        volumes = schedule.link_slot_volumes()
        assert volumes.get((1, 4, 3), 0.0) == pytest.approx(5.0)
        assert volumes.get((1, 4, 4), 0.0) == pytest.approx(5.0)

    def test_deadlines_met(self):
        scheduler = PostcardScheduler(fig3_topology(), horizon=100)
        files = self.files()
        scheduler.on_slot(3, files)
        for request in files:
            assert (
                scheduler.state.completions[request.request_id] <= request.last_slot
            )

    def test_ordering_postcard_beats_flow_beats_direct(self):
        post = PostcardScheduler(fig3_topology(), horizon=100)
        post.on_slot(3, self.files())
        flow = FlowBasedScheduler(fig3_topology(), horizon=100)
        flow.on_slot(3, self.files())
        direct = DirectScheduler(fig3_topology(), horizon=100)
        direct.on_slot(3, self.files())
        assert (
            post.state.current_cost_per_slot()
            < flow.state.current_cost_per_slot()
            < direct.state.current_cost_per_slot()
        )
