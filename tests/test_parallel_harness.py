"""Determinism of the parallel run harness.

Every :class:`~repro.sim.parallel.RunTask` rebuilds its topology,
workload, and fault model from seeds inside the worker, so a comparison
grid's results must be a pure function of (setting, schedulers, seeds)
— identical for ``--jobs 1``, ``--jobs 2``, ``--jobs 4``, and the
sequential :func:`~repro.sim.runner.run_comparison` loop, with or
without seeded surprise outages.
"""

import pytest

from repro.errors import SimulationError
from repro.registry import scheduler_factory
from repro.sim import (
    ExperimentSetting,
    FaultSpec,
    RunTask,
    run_comparison,
    run_comparison_parallel,
    run_tasks,
)

SETTING = ExperimentSetting(
    "par-test",
    capacity=30.0,
    max_deadline=3,
    num_datacenters=5,
    num_slots=5,
    max_files=3,
)
SCHEDULERS = ["postcard", "direct"]


def _costs(jobs, base_seed, faults=None, runs=3):
    comparison = run_comparison_parallel(
        SETTING,
        SCHEDULERS,
        runs=runs,
        base_seed=base_seed,
        jobs=jobs,
        faults=faults,
    )
    return comparison.costs


@pytest.mark.parametrize("base_seed", [0, 17, 4242])
def test_job_count_never_changes_results(base_seed):
    serial = _costs(jobs=1, base_seed=base_seed)
    assert _costs(jobs=2, base_seed=base_seed) == serial
    assert _costs(jobs=4, base_seed=base_seed) == serial


def test_parallel_matches_sequential_driver():
    factories = {name: scheduler_factory(name) for name in SCHEDULERS}
    sequential = run_comparison(SETTING, factories, runs=3, base_seed=9)
    parallel = run_comparison_parallel(
        SETTING, SCHEDULERS, runs=3, base_seed=9, jobs=4
    )
    assert parallel.costs == sequential.costs
    assert list(parallel.results) == list(sequential.results)


def test_run_comparison_jobs_delegates():
    factories = {name: scheduler_factory(name) for name in SCHEDULERS}
    serial = run_comparison(SETTING, factories, runs=2, base_seed=3)
    fanned = run_comparison(SETTING, factories, runs=2, base_seed=3, jobs=2)
    assert fanned.costs == serial.costs


def test_determinism_under_surprise_faults():
    faults = FaultSpec(
        outage_probability=0.3, mean_duration=2.0, announced=False
    )
    serial = _costs(jobs=1, base_seed=5, faults=faults)
    assert _costs(jobs=2, base_seed=5, faults=faults) == serial
    assert _costs(jobs=4, base_seed=5, faults=faults) == serial
    # The fault model actually bit: some run saw disrupted traffic.
    comparison = run_comparison_parallel(
        SETTING, SCHEDULERS, runs=3, base_seed=5, jobs=2, faults=faults
    )
    assert any(
        r.disrupted_gb > 0
        for results in comparison.results.values()
        for r in results
    )


def test_results_assembled_in_task_order():
    tasks = [
        RunTask(setting=SETTING, scheduler=name, run=run, base_seed=1)
        for run in range(2)
        for name in SCHEDULERS
    ]
    out = run_tasks(tasks, jobs=3)
    assert [(name, run) for name, run, _ in out] == [
        (t.scheduler, t.run) for t in tasks
    ]


def test_run_task_rejects_unknown_topology_family():
    with pytest.raises(SimulationError):
        RunTask(setting=SETTING, scheduler="postcard", run=0, topology="ring")


def test_negative_jobs_rejected():
    with pytest.raises(SimulationError):
        run_tasks([], jobs=-1)


def test_jobs_with_factory_overrides_rejected():
    factories = {name: scheduler_factory(name) for name in SCHEDULERS}
    with pytest.raises(SimulationError):
        run_comparison(
            SETTING,
            factories,
            runs=1,
            jobs=2,
            fault_factory=lambda t, s, seed: None,
        )


def test_jobs_with_unregistered_scheduler_rejected():
    with pytest.raises(SimulationError):
        run_comparison(
            SETTING, {"bespoke": lambda t, h: None}, runs=1, jobs=2
        )
