"""Unit tests for path decomposition of schedules."""

import pytest

from repro.errors import SchedulingError
from repro.core import PostcardScheduler, decompose_paths
from repro.core.paths import TimedPath
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.net.generators import complete_topology, fig1_topology, fig3_topology
from repro.timeexp.graph import ArcKind
from repro.traffic import TransferRequest


def test_timed_path_properties():
    path = TimedPath(((2, 0), (1, 1), (1, 2), (3, 3)), 3.0)
    assert path.hop_count == 2
    assert path.storage_slots == 1
    assert path.departure_slot == 0
    assert path.arrival_slot == 3
    text = path.describe()
    assert "2->1" in text and "hold@1" in text and "1->3" in text


def test_fig1_decomposition():
    scheduler = PostcardScheduler(fig1_topology(), horizon=100)
    request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
    schedule = scheduler.on_slot(0, [request])
    paths = decompose_paths(schedule, request)
    assert sum(p.volume for p in paths) == pytest.approx(6.0)
    # All volume relays via DC 1.
    for path in paths:
        dcs = [node[0] for node in path.nodes]
        assert dcs[0] == 2 and dcs[-1] == 3
        assert 1 in dcs


def test_fig3_decomposition_shows_storage():
    scheduler = PostcardScheduler(fig3_topology(), horizon=100)
    file1 = TransferRequest(2, 4, 8.0, 4, release_slot=0)
    file2 = TransferRequest(1, 4, 10.0, 2, release_slot=0)
    schedule = scheduler.on_slot(0, [file1, file2])

    paths1 = decompose_paths(schedule, file1)
    assert sum(p.volume for p in paths1) == pytest.approx(8.0)
    assert any(p.storage_slots > 0 for p in paths1)

    paths2 = decompose_paths(schedule, file2)
    assert sum(p.volume for p in paths2) == pytest.approx(10.0)
    # File 2 goes direct 1 -> 4 with no time to spare.
    for path in paths2:
        assert path.hop_count == 1


def test_deadlines_respected_in_paths():
    topo = complete_topology(5, capacity=30.0, seed=3)
    scheduler = PostcardScheduler(topo, horizon=50)
    requests = [
        TransferRequest(0, 1, 25.0, 3, release_slot=0),
        TransferRequest(1, 2, 25.0, 4, release_slot=0),
    ]
    schedule = scheduler.on_slot(0, requests)
    for request in requests:
        for path in decompose_paths(schedule, request):
            assert path.departure_slot >= request.release_slot
            assert path.arrival_slot <= request.release_slot + request.deadline_slots


def test_undelivered_schedule_rejected():
    request = TransferRequest(0, 2, 6.0, 3, release_slot=0)
    partial = TransferSchedule(
        [ScheduleEntry(request.request_id, 0, 1, 0, 6.0)]
    )
    with pytest.raises(SchedulingError, match="not fully"):
        decompose_paths(partial, request)


def test_two_parallel_paths():
    request = TransferRequest(0, 2, 8.0, 2, release_slot=0)
    rid = request.request_id
    schedule = TransferSchedule(
        [
            # 4 GB via node 1, 4 GB direct later.
            ScheduleEntry(rid, 0, 1, 0, 4.0),
            ScheduleEntry(rid, 1, 2, 1, 4.0),
            ScheduleEntry(rid, 0, 0, 0, 4.0, ArcKind.HOLDOVER),
            ScheduleEntry(rid, 0, 2, 1, 4.0),
        ]
    )
    paths = decompose_paths(schedule, request)
    assert sum(p.volume for p in paths) == pytest.approx(8.0)
    hop_counts = sorted(p.hop_count for p in paths)
    assert hop_counts == [1, 2]
