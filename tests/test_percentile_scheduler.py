"""Unit tests for the percentile-aware scheduler extension."""

import pytest

from repro.errors import SchedulingError
from repro.charging import PercentileCharging
from repro.core import PostcardScheduler
from repro.extensions import PercentileAwareScheduler
from repro.net.generators import complete_topology, line_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TransferRequest


def test_parameters_validated(line3):
    with pytest.raises(SchedulingError):
        PercentileAwareScheduler(line3, 10, q=0)
    with pytest.raises(SchedulingError):
        PercentileAwareScheduler(line3, 10, q=101)
    with pytest.raises(SchedulingError):
        PercentileAwareScheduler(line3, 10, q=95, on_infeasible="pray")


def test_q100_has_no_budget(line3):
    scheduler = PercentileAwareScheduler(line3, horizon=10, q=100)
    assert scheduler.burst_budget == 0
    request = TransferRequest(0, 1, 8.0, 4, release_slot=0)
    scheduler.on_slot(0, [request])
    reference = PostcardScheduler(line3, horizon=10)
    reference.on_slot(0, [TransferRequest(0, 1, 8.0, 4, release_slot=0)])
    assert scheduler.state.current_cost_per_slot() == pytest.approx(
        reference.state.current_cost_per_slot()
    )


def test_budget_size(line3):
    scheduler = PercentileAwareScheduler(line3, horizon=100, q=95)
    assert scheduler.burst_budget == 5
    scheduler90 = PercentileAwareScheduler(line3, horizon=100, q=90)
    assert scheduler90.burst_budget == 10


def test_burst_slot_is_amnestied(line3):
    """One big file, generous deadline: the q=90 scheduler bursts it
    into amnestied slots instead of spreading, and its q-percentile
    bill beats the standard scheduler's."""
    q = 90.0
    horizon = 40
    request = TransferRequest(0, 1, 40.0, 8, release_slot=0)

    aware = PercentileAwareScheduler(line3, horizon=horizon, q=q)
    aware.on_slot(0, [request])

    standard = PostcardScheduler(line3, horizon=horizon)
    standard.on_slot(0, [TransferRequest(0, 1, 40.0, 8, release_slot=0)])

    bill_aware = aware.billed_cost_per_slot()
    bill_standard = standard.state.ledger.cost_per_slot(PercentileCharging(q))
    assert bill_aware <= bill_standard + 1e-6
    # It used at least one amnesty.
    assert any(slots for slots in aware.amnesty.values())


def test_budget_never_exceeded(line3):
    scheduler = PercentileAwareScheduler(line3, horizon=20, q=90)
    for slot in range(4):
        request = TransferRequest(0, 1, 9.0, 2, release_slot=slot)
        scheduler.on_slot(slot, [request])
    for key, slots in scheduler.amnesty.items():
        assert len(slots) <= scheduler.burst_budget


def test_effective_charged_volume_ignores_amnesty(line3):
    scheduler = PercentileAwareScheduler(line3, horizon=30, q=90)
    request = TransferRequest(0, 1, 30.0, 3, release_slot=0)
    scheduler.on_slot(0, [request])
    raw_peak = scheduler.state.ledger.peak_volume(0, 1)
    effective = scheduler.effective_charged_volume(0, 1)
    assert effective <= raw_peak


def test_simulation_run_and_audit():
    topo = complete_topology(4, capacity=30.0, seed=12)
    scheduler = PercentileAwareScheduler(
        topo, horizon=30, q=90, on_infeasible="drop"
    )
    workload = PaperWorkload(topo, max_deadline=4, max_files=3, seed=3)
    result = Simulation(scheduler, workload, num_slots=6).run()
    assert result.max_lateness() == 0
    # The q-bill is never above the max bill.
    assert scheduler.billed_cost_per_slot() <= (
        scheduler.state.ledger.cost_per_slot() + 1e-9
    )
