"""Unit tests for charging-period rollover."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.charging.schemes import MaxCharging
from repro.core import PostcardScheduler
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.net.generators import complete_topology, line_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TraceWorkload, TransferRequest


def _send(state, src, dst, volume, slot):
    request = TransferRequest(src, dst, volume, 1, release_slot=slot)
    state.commit(
        TransferSchedule([ScheduleEntry(request.request_id, src, dst, slot, volume)]),
        [request],
    )
    return request


class TestLedgerRanges:
    def test_samples_range(self, line3):
        from repro.charging import TrafficLedger

        ledger = TrafficLedger(line3, horizon=20)
        ledger.record(0, 1, 3, 5.0)
        ledger.record(0, 1, 12, 7.0)
        first = ledger.samples_range(0, 1, 0, 10)
        second = ledger.samples_range(0, 1, 10, 20)
        assert first[3] == 5.0 and first.sum() == 5.0
        assert second[2] == 7.0 and second.sum() == 7.0
        with pytest.raises(Exception):
            ledger.samples_range(0, 1, 5, 5)

    def test_peak_in_range(self, line3):
        from repro.charging import TrafficLedger

        ledger = TrafficLedger(line3, horizon=20)
        ledger.record(0, 1, 3, 5.0)
        ledger.record(0, 1, 12, 7.0)
        assert ledger.peak_in_range(0, 1, 0, 10) == 5.0
        assert ledger.peak_in_range(0, 1, 10, 20) == 7.0
        assert ledger.peak_in_range(0, 1, 4, 10) == 0.0

    def test_period_cost(self, line3):
        from repro.charging import TrafficLedger

        ledger = TrafficLedger(line3, horizon=20)
        ledger.record(0, 1, 3, 5.0)   # period 1 peak: 5
        ledger.record(0, 1, 12, 7.0)  # period 2 peak: 7
        assert ledger.period_cost(0, 10) == pytest.approx(5.0 * 10)
        assert ledger.period_cost(10, 20) == pytest.approx(7.0 * 10)


class TestStatePeriods:
    def test_paid_peaks_expire(self, line3):
        state = NetworkState(line3, horizon=40)
        _send(state, 0, 1, 8.0, slot=2)
        assert state.paid_headroom(0, 1, 5) == 8.0

        bill = state.start_new_period(10)
        assert bill == pytest.approx(8.0 * 10)
        assert state.banked_period_bills == [bill]
        # The old peak no longer grants free traffic.
        assert state.charged_volume(0, 1) == 0.0
        assert state.paid_headroom(0, 1, 12) == 0.0

    def test_in_flight_traffic_seeds_new_period(self, line3):
        state = NetworkState(line3, horizon=40)
        # Committed into slot 12 (beyond the upcoming boundary).
        _send(state, 0, 1, 6.0, slot=12)
        state.start_new_period(10)
        assert state.charged_volume(0, 1) == 6.0

    def test_boundary_must_advance(self, line3):
        state = NetworkState(line3, horizon=40)
        state.start_new_period(10)
        with pytest.raises(SchedulingError):
            state.start_new_period(10)


class TestSimulationPeriods:
    def test_validation(self, line3):
        scheduler = PostcardScheduler(line3, horizon=10)
        with pytest.raises(SimulationError):
            Simulation(scheduler, TraceWorkload([]), 5, slots_per_period=-1)

    def test_two_periods_billed_independently(self, line3):
        # One file per period on the same link; with rollover both
        # periods pay, without it the second would be free.
        requests = [
            TransferRequest(0, 1, 6.0, 2, release_slot=0),
            TransferRequest(0, 1, 6.0, 2, release_slot=5),
        ]
        scheduler = PostcardScheduler(line3, horizon=20)
        result = Simulation(
            scheduler, TraceWorkload(requests), num_slots=8, slots_per_period=5
        ).run()
        assert len(result.period_bills) == 2
        assert all(bill > 0 for bill in result.period_bills)
        assert result.total_bill == pytest.approx(sum(result.period_bills))

    def test_period_peak_arithmetic(self):
        """Ledger identity: on every link, the sum of per-period peaks
        is at least the whole-horizon peak (each period's peak is at
        most the global one, and the global peak lives in some
        period).  Note the *bills* are not one-sidedly ordered —
        rollover forfeits free-riding but also bills smaller peaks for
        shorter spans."""
        topo = complete_topology(4, capacity=40.0, seed=14)
        workload = PaperWorkload(topo, max_deadline=3, max_files=3, seed=6)
        requests = workload.all_requests(8)

        scheduler = PostcardScheduler(topo, horizon=20)
        Simulation(
            scheduler, TraceWorkload(requests), 8, slots_per_period=4
        ).run()
        ledger = scheduler.state.ledger
        for link in topo.links:
            global_peak = ledger.peak_in_range(link.src, link.dst, 0, 20)
            period_peaks = [
                ledger.peak_in_range(link.src, link.dst, start, start + 4)
                for start in range(0, 20, 4)
            ]
            assert max(period_peaks) == pytest.approx(global_peak)
            assert sum(period_peaks) >= global_peak - 1e-9

    def test_periods_and_faults_compose(self):
        """Outages and period rollover together: the audit still holds
        and dead link-slots carry nothing across both periods."""
        from repro.sim import FaultModel, Outage

        topo = complete_topology(4, capacity=40.0, seed=22)
        faults = FaultModel([Outage(0, 1, 2, 6)])
        scheduler = PostcardScheduler(topo, horizon=30, on_infeasible="drop")
        scheduler.state.fault_model = faults
        workload = PaperWorkload(topo, max_deadline=3, max_files=2, seed=7)
        result = Simulation(
            scheduler, workload, num_slots=8, slots_per_period=4
        ).run()
        assert result.max_lateness() == 0
        assert len(result.period_bills) == 2
        for slot in range(2, 6):
            assert scheduler.state.ledger.volume(0, 1, slot) == 0.0

    def test_scheduler_reacts_to_expired_headroom(self, line3):
        """After a boundary, a file that would have been free re-pays:
        the state's cost-per-slot rises again in period 2."""
        requests = [
            TransferRequest(0, 1, 8.0, 2, release_slot=0),
            TransferRequest(0, 1, 8.0, 2, release_slot=6),
        ]
        scheduler = PostcardScheduler(line3, horizon=30)
        Simulation(
            scheduler, TraceWorkload(requests), num_slots=8, slots_per_period=5
        ).run()
        # Period 2's own peak is 4 (8 GB over 2 slots), charged afresh.
        assert scheduler.state.current_cost_per_slot() == pytest.approx(4.0)
