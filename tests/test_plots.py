"""Unit tests for terminal plotting helpers."""

import pytest

from repro.analysis.plots import (
    bar_chart,
    cost_trajectory_sketch,
    sparkline,
    utilization_rows,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_extremes_mapped_to_ends(self):
        line = sparkline([10, 0, 10])
        assert line == "█▁█"


class TestBarChart:
    def test_empty(self):
        assert bar_chart([]) == ""

    def test_proportions(self):
        chart = bar_chart([("a", 2.0), ("bb", 4.0)], width=4)
        lines = chart.splitlines()
        assert lines[0].startswith("a ")
        assert lines[0].count("█") == 2
        assert lines[1].count("█") == 4
        assert "4" in lines[1]

    def test_zero_values(self):
        chart = bar_chart([("a", 0.0)], width=4)
        assert "█" not in chart


class TestUtilizationRows:
    def test_skips_infinite_capacity(self):
        text = utilization_rows({(0, 1): [1.0]}, {(0, 1): float("inf")})
        assert text == ""

    def test_orders_by_peak(self):
        samples = {(0, 1): [1.0, 2.0], (1, 2): [9.0, 1.0]}
        caps = {(0, 1): 10.0, (1, 2): 10.0}
        lines = utilization_rows(samples, caps).splitlines()
        assert "( 1, 2)" in lines[0]
        assert "90%" in lines[0]

    def test_top_limits_rows(self):
        samples = {(i, i + 1): [1.0] for i in range(5)}
        caps = {key: 10.0 for key in samples}
        assert len(utilization_rows(samples, caps, top=2).splitlines()) == 2


class TestCostTrajectorySketch:
    def test_empty(self):
        assert cost_trajectory_sketch([]) == "(no data)"

    def test_range_annotated(self):
        text = cost_trajectory_sketch([10.0, 20.0, 30.0])
        assert "[10 .. 30]" in text

    def test_downsamples(self):
        text = cost_trajectory_sketch(list(range(1000)), width=50)
        spark = text.split("  ")[0]
        assert len(spark) == 50
