"""Unit tests for the online Postcard scheduler."""

import pytest

from repro.errors import InfeasibleError, SchedulingError
from repro.core import PostcardScheduler
from repro.net.generators import complete_topology, line_topology
from repro.traffic import TransferRequest


def test_empty_slot_is_noop(line3):
    scheduler = PostcardScheduler(line3, horizon=10)
    schedule = scheduler.on_slot(0, [])
    assert not schedule
    assert scheduler.state.current_cost_per_slot() == 0.0


def test_release_slot_mismatch_rejected(line3):
    scheduler = PostcardScheduler(line3, horizon=10)
    request = TransferRequest(0, 1, 1.0, 2, release_slot=5)
    with pytest.raises(SchedulingError):
        scheduler.on_slot(0, [request])


def test_unknown_policies_rejected(line3):
    with pytest.raises(SchedulingError):
        PostcardScheduler(line3, horizon=10, on_infeasible="panic")


def test_schedules_are_committed(line3):
    scheduler = PostcardScheduler(line3, horizon=10)
    request = TransferRequest(0, 2, 6.0, 2, release_slot=0)
    schedule = scheduler.on_slot(0, [request])
    assert schedule.delivered_volume(request) == pytest.approx(6.0)
    assert scheduler.state.completions[request.request_id] <= request.last_slot
    assert scheduler.last_objective == pytest.approx(
        scheduler.state.current_cost_per_slot()
    )


def test_online_rounds_respect_earlier_commitments(line3):
    scheduler = PostcardScheduler(line3, horizon=20)
    # Round 1 fills link (0,1) at slot 1 completely via a 2-slot file.
    r1 = TransferRequest(0, 1, 20.0, 2, release_slot=0)
    scheduler.on_slot(0, [r1])
    # Round 2 wants the same link in overlapping slots; capacity math
    # must hold across rounds (audited by commit).
    r2 = TransferRequest(0, 1, 10.0, 2, release_slot=1)
    scheduler.on_slot(1, [r2])
    ledger = scheduler.state.ledger
    for slot in range(4):
        assert ledger.volume(0, 1, slot) <= 10.0 + 1e-6


def test_infeasible_raises_by_default(line3):
    scheduler = PostcardScheduler(line3, horizon=10)
    impossible = TransferRequest(0, 2, 1.0, 1, release_slot=0)  # 2 hops, 1 slot
    with pytest.raises(InfeasibleError):
        scheduler.on_slot(0, [impossible])


def test_infeasible_drop_policy(line3):
    scheduler = PostcardScheduler(line3, horizon=10, on_infeasible="drop")
    impossible = TransferRequest(0, 2, 1.0, 1, release_slot=0)
    feasible = TransferRequest(0, 1, 5.0, 1, release_slot=0)
    schedule = scheduler.on_slot(0, [impossible, feasible])
    assert scheduler.state.rejected and scheduler.state.rejected[0] is impossible
    assert schedule.delivered_volume(feasible) == pytest.approx(5.0)


def test_drop_policy_can_empty_the_slot(line3):
    scheduler = PostcardScheduler(line3, horizon=10, on_infeasible="drop")
    impossible = TransferRequest(0, 2, 1.0, 1, release_slot=0)
    schedule = scheduler.on_slot(0, [impossible])
    assert not schedule
    assert len(scheduler.state.rejected) == 1


def test_storage_ablation_never_beats_full():
    topo = complete_topology(4, capacity=20.0, seed=11)
    requests = [
        TransferRequest(0, 1, 15.0, 3, release_slot=0),
        TransferRequest(1, 2, 25.0, 3, release_slot=0),
        TransferRequest(0, 3, 10.0, 3, release_slot=0),
    ]
    full = PostcardScheduler(topo, horizon=10)
    full.on_slot(0, [r.with_release(0) for r in requests])

    hot = PostcardScheduler(topo, horizon=10, storage="destination_only")
    hot.on_slot(0, [r.with_release(0) for r in requests])

    assert (
        full.state.current_cost_per_slot()
        <= hot.state.current_cost_per_slot() + 1e-6
    )


def test_simplex_backend_agrees_on_tiny_instance(line3):
    a = PostcardScheduler(line3, horizon=10, backend="highs")
    b = PostcardScheduler(line3, horizon=10, backend="simplex")
    for s, scheduler in ((0, a), (0, b)):
        request = TransferRequest(0, 2, 4.0, 3, release_slot=0)
        scheduler.on_slot(0, [request])
    assert a.state.current_cost_per_slot() == pytest.approx(
        b.state.current_cost_per_slot(), abs=1e-6
    )
