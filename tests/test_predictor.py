"""Unit tests for noisy arrival previews."""

import pytest

from repro.errors import WorkloadError
from repro.core import LookaheadPostcardScheduler
from repro.net.generators import complete_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload
from repro.traffic.predictor import NoisyPreview


@pytest.fixture
def setup():
    topo = complete_topology(5, capacity=40.0, seed=6)
    workload = PaperWorkload(topo, max_deadline=4, max_files=4, seed=7)
    return topo, workload


def test_validation(setup):
    topo, workload = setup
    with pytest.raises(WorkloadError):
        NoisyPreview(workload, topo, miss_rate=1.5)
    with pytest.raises(WorkloadError):
        NoisyPreview(workload, topo, phantom_rate=-1)
    with pytest.raises(WorkloadError):
        NoisyPreview(workload, topo, size_noise=-0.1)


def test_perfect_preview_matches_workload(setup):
    topo, workload = setup
    preview = NoisyPreview(workload, topo)
    real = workload.requests_at(3)
    seen = preview(3)
    assert len(seen) == len(real)
    for a, b in zip(real, seen):
        assert (a.source, a.destination, a.size_gb) == (b.source, b.destination, b.size_gb)
        assert a.request_id != b.request_id  # previews never alias reality


def test_misses_drop_files(setup):
    topo, workload = setup
    preview = NoisyPreview(workload, topo, miss_rate=1.0)
    assert preview(3) == []


def test_phantoms_add_files(setup):
    topo, workload = setup
    preview = NoisyPreview(workload, topo, miss_rate=1.0, phantom_rate=3.0, seed=1)
    counts = [len(preview(s)) for s in range(20)]
    assert sum(counts) > 0
    assert 1.0 < sum(counts) / len(counts) < 6.0


def test_size_noise_perturbs(setup):
    topo, workload = setup
    preview = NoisyPreview(workload, topo, size_noise=0.3, seed=2)
    real = workload.requests_at(0)
    seen = preview(0)
    assert any(
        abs(a.size_gb - b.size_gb) > 1e-9 for a, b in zip(real, seen)
    )
    assert all(b.size_gb > 0 for b in seen)


def test_deterministic_per_slot(setup):
    topo, workload = setup
    preview = NoisyPreview(workload, topo, miss_rate=0.5, seed=4)
    a = [(r.source, r.size_gb) for r in preview(5)]
    b = [(r.source, r.size_gb) for r in preview(5)]
    assert a == b


def test_score_requires_tracking(setup):
    topo, workload = setup
    preview = NoisyPreview(workload, topo)
    assert preview.scoreboard is None
    with pytest.raises(WorkloadError, match="track_accuracy"):
        preview.score(0)


def test_perfect_preview_scores_zero_error(setup):
    topo, workload = setup
    preview = NoisyPreview(workload, topo, track_accuracy=True)
    for slot in range(5):
        summary = preview.score(slot)
    assert summary["observations"] > 0
    assert summary["mape"] == 0.0
    assert summary["bias"] == 0.0


def test_misses_score_as_under_forecast(setup):
    topo, workload = setup
    preview = NoisyPreview(workload, topo, miss_rate=1.0, track_accuracy=True)
    for slot in range(5):
        summary = preview.score(slot)
    assert summary["mape"] == pytest.approx(1.0)
    assert summary["bias"] == pytest.approx(-1.0)


def test_phantoms_score_as_over_forecast(setup):
    topo, workload = setup
    preview = NoisyPreview(
        workload, topo, phantom_rate=3.0, seed=1, track_accuracy=True
    )
    for slot in range(10):
        summary = preview.score(slot)
    assert summary["mape"] > 0.0
    assert summary["bias"] > 0.0
    # Per-pair detail is available through the shared scoreboard API.
    assert preview.scoreboard.keys()


def test_lookahead_with_noisy_preview_stays_feasible(setup):
    """A wrong preview must never break the committed schedules: the
    controller re-solves each slot with the real files."""
    topo, workload = setup
    preview = NoisyPreview(
        workload, topo, miss_rate=0.4, phantom_rate=2.0, size_noise=0.3, seed=5
    )
    scheduler = LookaheadPostcardScheduler(
        topo, horizon=20, preview=preview, lookahead=2, on_infeasible="drop"
    )
    result = Simulation(scheduler, workload, num_slots=5).run()
    assert result.max_lateness() == 0


def test_noisy_lookahead_between_myopic_and_oracle(setup):
    """On average a noisy preview should not do much worse than no
    preview at all (phantoms only make the co-optimization cautious),
    though this is a statistical tendency — here we just check the
    noisy variant stays within a loose band of the oracle's cost."""
    topo, workload_template = setup

    def run(preview_factory):
        workload = PaperWorkload(topo, max_deadline=4, max_files=4, seed=7)
        scheduler = LookaheadPostcardScheduler(
            topo, horizon=20, preview=preview_factory(workload),
            lookahead=2, on_infeasible="drop",
        )
        Simulation(scheduler, workload, num_slots=5).run()
        return scheduler.state.current_cost_per_slot()

    oracle_cost = run(lambda w: w.requests_at)
    noisy_cost = run(
        lambda w: NoisyPreview(w, topo, miss_rate=0.3, phantom_rate=1.0, seed=9)
    )
    assert noisy_cost <= oracle_cost * 2.0
