"""Unit tests for the global-cloud topology preset."""

import pytest

from repro.net.presets import (
    GLOBAL_REGIONS,
    Region,
    global_cloud_topology,
    haversine_km,
    link_price,
    price_matrix,
)


def test_haversine_known_distances():
    # Dublin <-> Frankfurt is about 1100 km.
    dublin, frankfurt = GLOBAL_REGIONS[2], GLOBAL_REGIONS[3]
    d = haversine_km(dublin.lat, dublin.lon, frankfurt.lat, frankfurt.lon)
    assert 900 < d < 1300
    # A point to itself is 0.
    assert haversine_km(10, 20, 10, 20) == pytest.approx(0.0)
    # Antipodal-ish: half the circumference is ~20000 km.
    assert 19000 < haversine_km(0, 0, 0, 180) < 21000


def test_price_ordering_matches_transit_reality():
    by_name = {r.name: r for r in GLOBAL_REGIONS}
    domestic = link_price(by_name["us-east"], by_name["us-west"])
    transatlantic = link_price(by_name["us-east"], by_name["eu-west"])
    transpacific = link_price(by_name["us-west"], by_name["ap-southeast"])
    assert domestic < transatlantic < transpacific


def test_asymmetric_markets():
    by_name = {r.name: r for r in GLOBAL_REGIONS}
    out_of_sa = link_price(by_name["sa-east"], by_name["us-east"])
    into_sa = link_price(by_name["us-east"], by_name["sa-east"])
    assert out_of_sa > into_sa  # pricier egress from the expensive market


def test_topology_construction():
    topo = global_cloud_topology(capacity=80.0)
    assert topo.num_datacenters == 8
    assert topo.is_complete()
    assert all(l.capacity == 80.0 for l in topo.links)
    assert topo.datacenter(0).name == "us-east"
    assert topo.datacenter(0).region == "na"


def test_topology_is_deterministic():
    a = global_cloud_topology()
    b = global_cloud_topology()
    assert [l.price for l in a.links] == [l.price for l in b.links]


def test_custom_regions():
    regions = [
        Region("a", "x", 0.0, 0.0, 1.0),
        Region("b", "x", 0.0, 10.0, 1.0),
    ]
    topo = global_cloud_topology(capacity=10.0, regions=regions)
    assert topo.num_datacenters == 2
    assert topo.num_links == 2


def test_price_matrix_covers_all_pairs():
    matrix = price_matrix()
    assert len(matrix) == 8 * 7
    assert all(price > 0 for price in matrix.values())


def test_preset_works_with_scheduler():
    from repro.core import PostcardScheduler
    from repro.traffic import TransferRequest

    topo = global_cloud_topology(capacity=50.0)
    scheduler = PostcardScheduler(topo, horizon=20)
    request = TransferRequest(0, 4, 30.0, 3, release_slot=0)  # us-east -> ap
    schedule = scheduler.on_slot(0, [request])
    assert schedule.delivered_volume(request) == pytest.approx(30.0)
