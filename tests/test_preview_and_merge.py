"""Unit tests for NetworkState.preview_cost and MergedWorkload."""

import pytest

from repro.errors import WorkloadError
from repro.core import build_postcard_model
from repro.core.state import NetworkState
from repro.traffic import (
    MergedWorkload,
    PoissonWorkload,
    TraceWorkload,
    TransferRequest,
)


class TestPreviewCost:
    def test_matches_commit(self, line3):
        state = NetworkState(line3, horizon=20)
        request = TransferRequest(0, 1, 8.0, 2, release_slot=0)
        built = build_postcard_model(state, [request])
        schedule, solution = built.solve()

        previewed = state.preview_cost(schedule)
        assert previewed == pytest.approx(solution.objective)
        assert state.current_cost_per_slot() == 0.0  # nothing committed

        state.commit(schedule, [request])
        assert state.current_cost_per_slot() == pytest.approx(previewed)

    def test_free_riding_previewed_as_free(self, line3):
        from repro.core.schedule import ScheduleEntry, TransferSchedule

        state = NetworkState(line3, horizon=20)
        r0 = TransferRequest(0, 1, 8.0, 1, release_slot=0)
        state.commit(
            TransferSchedule([ScheduleEntry(r0.request_id, 0, 1, 0, 8.0)]), [r0]
        )
        cost_before = state.current_cost_per_slot()
        # A later, smaller transfer rides the paid peak.
        r1 = TransferRequest(0, 1, 5.0, 1, release_slot=5)
        trial = TransferSchedule([ScheduleEntry(r1.request_id, 0, 1, 5, 5.0)])
        assert state.preview_cost(trial) == pytest.approx(cost_before)

    def test_empty_schedule_is_status_quo(self, line3):
        from repro.core.schedule import TransferSchedule

        state = NetworkState(line3, horizon=20)
        assert state.preview_cost(TransferSchedule()) == pytest.approx(
            state.current_cost_per_slot()
        )


class TestMergedWorkload:
    def test_needs_components(self):
        with pytest.raises(WorkloadError):
            MergedWorkload([])

    def test_concatenates_per_slot(self):
        a = TraceWorkload([TransferRequest(0, 1, 1.0, 2, release_slot=0)])
        b = TraceWorkload(
            [
                TransferRequest(1, 2, 2.0, 2, release_slot=0),
                TransferRequest(2, 3, 3.0, 2, release_slot=1),
            ]
        )
        merged = MergedWorkload([a, b])
        assert len(merged.requests_at(0)) == 2
        assert len(merged.requests_at(1)) == 1
        assert len(merged.all_requests(2)) == 3

    def test_mixture_runs_through_simulator(self, small_complete):
        from repro.core import PostcardScheduler
        from repro.sim import Simulation
        from repro.traffic import FlashCrowdWorkload

        merged = MergedWorkload(
            [
                PoissonWorkload(small_complete, max_deadline=3, rate=1.0, seed=1),
                FlashCrowdWorkload(
                    small_complete, max_deadline=3, base_rate=0.0,
                    burst_probability=0.5, burst_files=3,
                    min_size=5.0, max_size=15.0, seed=2,
                ),
            ]
        )
        scheduler = PostcardScheduler(small_complete, horizon=20, on_infeasible="drop")
        result = Simulation(scheduler, merged, num_slots=5).run()
        assert result.max_lateness() == 0
        assert result.total_requests > 0
