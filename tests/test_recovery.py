"""Salvage-and-replan recovery from surprise outages.

The invariants under test: a surprise failure never crashes a run, the
post-run audit passes with voided traffic excluded, per-run accounting
sums (disrupted = salvaged + lost), and with zero outages the recovery
machinery leaves results bit-identical to a fault-free run.
"""

import pytest

from repro.baselines import DirectScheduler
from repro.core import PostcardScheduler, ReplanningPostcardScheduler
from repro.errors import RecoveryError
from repro.net.generators import complete_topology, line_topology
from repro.sim import FaultModel, Outage, RecoveryManager, Simulation
from repro.traffic import PaperWorkload, TransferRequest
from repro.traffic.workload import TraceWorkload


def line4():
    return line_topology(4, capacity=10.0)


class TestSalvageViaReplan:
    def test_full_salvage_on_single_slot_failure(self, line3):
        """A one-slot surprise failure on the only link: the voided
        volume is re-sent after the outage, still within deadline."""
        scheduler = PostcardScheduler(line3, horizon=10)
        scheduler.state.fault_model = FaultModel(
            [Outage(0, 1, 0, 1, announced=False)]
        )
        request = TransferRequest(0, 1, 6.0, 4, release_slot=0)
        result = Simulation(
            scheduler, TraceWorkload([request]), num_slots=6
        ).run()

        assert result.disrupted_gb == pytest.approx(6.0)
        assert result.salvaged_gb == pytest.approx(6.0)
        assert result.lost_gb == 0.0
        assert result.deadline_misses == 0
        assert result.salvage_rate == pytest.approx(1.0)
        assert request.request_id in scheduler.state.completions
        # The dead slot carries nothing; the volume moved afterwards.
        assert scheduler.state.ledger.volume(0, 1, 0) == 0.0
        assert sum(
            scheduler.state.ledger.volume(0, 1, s) for s in range(1, 5)
        ) == pytest.approx(6.0)

    def test_parked_data_survives_midpath_failure(self):
        """Data already relayed to an intermediate node is not re-sent
        from the source: the replan starts from where the bytes sit."""
        topo = line4()
        scheduler = PostcardScheduler(topo, horizon=12)
        # Kill the middle hop (1,2) at slot 1 only, as a surprise.
        scheduler.state.fault_model = FaultModel(
            [Outage(1, 2, 1, 2, announced=False)]
        )
        request = TransferRequest(0, 3, 6.0, 6, release_slot=0)
        result = Simulation(
            scheduler, TraceWorkload([request]), num_slots=8
        ).run()

        assert result.lost_gb == 0.0
        assert result.max_lateness() == 0
        # Whatever the failure disrupted was fully salvaged.
        assert result.salvaged_gb == pytest.approx(result.disrupted_gb)
        # Nothing ever re-crossed (0,1) beyond the original 6 GB: the
        # salvage restarted from the stranded supplies, not the source.
        total_01 = sum(
            scheduler.state.ledger.volume(0, 1, s) for s in range(12)
        )
        assert total_01 == pytest.approx(6.0)

    def test_replanning_scheduler_uses_resupply_hook(self, line3):
        scheduler = ReplanningPostcardScheduler(line3, horizon=10)
        scheduler.state.fault_model = FaultModel(
            [Outage(0, 1, 0, 1, announced=False)]
        )
        request = TransferRequest(0, 1, 6.0, 4, release_slot=0)
        result = Simulation(
            scheduler, TraceWorkload([request]), num_slots=6
        ).run()
        assert result.salvaged_gb == pytest.approx(result.disrupted_gb)
        assert result.lost_gb == 0.0
        assert result.recovery_replans >= 1
        assert request.request_id in scheduler.state.completions


class TestSloViolation:
    def test_unrecoverable_failure_is_recorded_not_raised(self, line3):
        """The only link dies for the file's whole remaining window:
        nothing can be salvaged, and the run records the loss."""
        scheduler = PostcardScheduler(line3, horizon=12)
        scheduler.state.fault_model = FaultModel(
            [Outage(0, 1, 0, 12, announced=False)]
        )
        request = TransferRequest(0, 1, 6.0, 3, release_slot=0)
        result = Simulation(
            scheduler, TraceWorkload([request]), num_slots=6
        ).run()

        assert result.disrupted_gb == pytest.approx(6.0)
        assert result.salvaged_gb == 0.0
        assert result.lost_gb == pytest.approx(6.0)
        assert result.deadline_misses == 1
        assert result.slo_violations == [request.request_id]
        assert result.salvage_rate == 0.0
        # The failed file is no longer recorded as completed.
        assert request.request_id not in scheduler.state.completions

    def test_partial_salvage_splits_accounting(self, line3):
        """Capacity after the failure covers only part of the file:
        salvaged + lost must still sum to the disrupted volume."""
        scheduler = PostcardScheduler(line3, horizon=12)
        # Dead for slots 0-2; deadline allows slot 3 only (10 GB room).
        scheduler.state.fault_model = FaultModel(
            [Outage(0, 1, 0, 3, announced=False)]
        )
        request = TransferRequest(0, 1, 14.0, 4, release_slot=0)
        result = Simulation(
            scheduler, TraceWorkload([request]), num_slots=6
        ).run()

        assert result.disrupted_gb == pytest.approx(14.0)
        assert result.salvaged_gb == pytest.approx(10.0)
        assert result.lost_gb == pytest.approx(4.0)
        assert result.deadline_misses == 1
        assert result.salvaged_gb + result.lost_gb == pytest.approx(
            result.disrupted_gb
        )


class TestZeroOutageIdentity:
    def test_empty_fault_model_is_bit_identical(self, small_complete):
        def run(with_faults):
            scheduler = PostcardScheduler(
                small_complete, horizon=16, on_infeasible="drop"
            )
            if with_faults:
                scheduler.state.fault_model = FaultModel([])
            workload = PaperWorkload(
                small_complete, max_deadline=4, max_files=3, seed=5
            )
            return scheduler, Simulation(scheduler, workload, num_slots=8).run()

        sched_a, plain = run(False)
        sched_b, faulted = run(True)
        assert faulted.final_cost_per_slot == plain.final_cost_per_slot
        # request_ids are process-global counters, so compare the
        # multiset of completion slots rather than raw id keys.
        assert sorted(sched_a.state.completions.values()) == sorted(
            sched_b.state.completions.values()
        )
        assert sched_a.state.charged_snapshot() == sched_b.state.charged_snapshot()
        assert faulted.disrupted_gb == 0.0
        assert faulted.salvaged_gb == 0.0
        assert faulted.slo_violations == []

    def test_announced_outages_skip_recovery_path(self, small_complete):
        """Announced-only faults never instantiate a RecoveryManager;
        the scheduler simply plans around them."""
        scheduler = PostcardScheduler(
            small_complete, horizon=16, on_infeasible="drop"
        )
        scheduler.state.fault_model = FaultModel.random(
            small_complete, num_slots=6, outage_probability=0.3, seed=1
        )
        workload = PaperWorkload(small_complete, max_deadline=4, max_files=3, seed=5)
        result = Simulation(scheduler, workload, num_slots=8).run()
        assert result.disrupted_gb == 0.0
        assert result.recovery_replans == 0


class TestRandomChaos:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_random_surprise_runs_clean(self, seed):
        """Seeded chaos: random surprise outages over a real workload
        complete without raising, pass the audit, and balance the
        salvage ledger."""
        topo = complete_topology(5, capacity=40.0, seed=seed)
        faults = FaultModel.random(
            topo,
            num_slots=8,
            outage_probability=0.4,
            mean_duration=2.0,
            seed=seed,
            announced=False,
        )
        scheduler = PostcardScheduler(topo, horizon=20, on_infeasible="drop")
        scheduler.state.fault_model = faults
        workload = PaperWorkload(topo, max_deadline=4, max_files=4, seed=seed + 100)
        result = Simulation(scheduler, workload, num_slots=8).run(audit=True)

        assert result.salvaged_gb + result.lost_gb == pytest.approx(
            result.disrupted_gb
        )
        # Ground truth: no surviving ledger volume on any downed slot.
        ledger = scheduler.state.ledger
        for src, dst in ledger.used_links():
            down = faults.downtime_slots(src, dst)
            for slot, volume in ledger.usage(src, dst).volumes.items():
                assert slot not in down or volume <= 1e-9

    def test_direct_scheduler_salvages_too(self):
        """Recovery is scheduler-agnostic: even the LP-free direct
        baseline gets its committed traffic salvaged."""
        topo = complete_topology(4, capacity=30.0, seed=2)
        faults = FaultModel.random(
            topo, num_slots=6, outage_probability=0.5, seed=4, announced=False
        )
        scheduler = DirectScheduler(topo, horizon=16, on_infeasible="drop")
        scheduler.state.fault_model = faults
        workload = PaperWorkload(topo, max_deadline=4, max_files=3, seed=8)
        result = Simulation(scheduler, workload, num_slots=6).run(audit=True)
        assert result.salvaged_gb + result.lost_gb == pytest.approx(
            result.disrupted_gb
        )


class TestRecoveryManagerInternals:
    def test_reconstruct_rejects_negative_supply(self, line3):
        scheduler = PostcardScheduler(line3, horizon=10)
        manager = RecoveryManager(scheduler, FaultModel([]))
        request = TransferRequest(0, 2, 6.0, 4, release_slot=0)
        from repro.core.schedule import ScheduleEntry

        # An executed entry moving volume that was never at its tail.
        bogus = [ScheduleEntry(request.request_id, 1, 2, 0, 99.0)]
        with pytest.raises(RecoveryError, match="negative"):
            manager._reconstruct(request, bogus)

    def test_slot_report_lands_in_slot_records(self, line3):
        scheduler = PostcardScheduler(line3, horizon=10)
        scheduler.state.fault_model = FaultModel(
            [Outage(0, 1, 0, 1, announced=False)]
        )
        request = TransferRequest(0, 1, 6.0, 4, release_slot=0)
        result = Simulation(
            scheduler, TraceWorkload([request]), num_slots=6
        ).run()
        hit = [r for r in result.slots if r.disrupted_gb > 0]
        assert len(hit) == 1
        assert hit[0].slot == 0
        assert hit[0].salvaged_gb == pytest.approx(6.0)
        assert "salvaged" in result.summary()


class TestChaosWithFlakySolver:
    def test_surprise_outages_plus_flaky_solver_complete_cleanly(self):
        """The ISSUE acceptance scenario: surprise failures AND a
        solver that intermittently blows up — the run still finishes,
        audits, and balances its salvage accounting."""
        from repro.errors import SolverError
        from repro.lp.backends import (
            ResilientBackend,
            get_backend,
            register_backend,
        )
        from repro.lp.backends.base import Backend

        class FlakyEveryOther(Backend):
            name = "flaky-every-other"
            calls = 0

            def solve(self, model, **options):
                FlakyEveryOther.calls += 1
                if FlakyEveryOther.calls % 2 == 1:
                    raise SolverError("injected transient failure")
                return get_backend("highs").solve(model, **options)

        class FlakyChain(ResilientBackend):
            name = "flaky-chain"

            def __init__(self):
                super().__init__(
                    chain=("flaky-every-other", "highs"),
                    max_attempts=2,
                    sleep=lambda s: None,
                )

        register_backend("flaky-every-other", FlakyEveryOther)
        register_backend("flaky-chain", FlakyChain)

        topo = complete_topology(5, capacity=40.0, seed=3)
        faults = FaultModel.random(
            topo, num_slots=8, outage_probability=0.4, seed=3, announced=False
        )
        scheduler = PostcardScheduler(
            topo, horizon=20, on_infeasible="drop", backend="flaky-chain"
        )
        scheduler.state.fault_model = faults
        workload = PaperWorkload(topo, max_deadline=4, max_files=4, seed=103)
        result = Simulation(scheduler, workload, num_slots=8).run(audit=True)

        assert FlakyEveryOther.calls > 0  # the flaky path really ran
        assert result.salvaged_gb + result.lost_gb == pytest.approx(
            result.disrupted_gb
        )
