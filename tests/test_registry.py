"""Unit tests for the scheduler registry."""

import pytest

from repro.errors import ReproError
from repro.core.interfaces import Scheduler
from repro.net.generators import line_topology
from repro.registry import (
    make_scheduler,
    register_scheduler,
    scheduler_factory,
    scheduler_names,
)


def test_names_cover_all_families():
    names = scheduler_names()
    assert "postcard" in names
    assert "flow-based" in names
    assert "flow-2phase" in names
    assert "direct" in names
    assert "greedy" in names
    assert "q-aware" in names
    assert "postcard-replan" in names
    assert "postcard-no-storage" in names
    assert names == sorted(names)


@pytest.mark.parametrize("name", [
    "postcard", "flow-based", "flow-2phase", "direct", "greedy",
    "q-aware", "postcard-replan", "postcard-no-storage",
])
def test_every_factory_builds_a_scheduler(name, line3):
    scheduler = make_scheduler(name, line3, horizon=10)
    assert isinstance(scheduler, Scheduler)
    assert scheduler.state.topology is line3


def test_unknown_name_rejected(line3):
    with pytest.raises(ReproError, match="available"):
        make_scheduler("quantum", line3, 10)
    with pytest.raises(ReproError):
        scheduler_factory("quantum")


def test_register_custom(line3):
    from repro.baselines import DirectScheduler

    register_scheduler("custom-direct", lambda t, h: DirectScheduler(t, h))
    scheduler = make_scheduler("custom-direct", line3, 10)
    assert isinstance(scheduler, DirectScheduler)
    assert "custom-direct" in scheduler_names()
