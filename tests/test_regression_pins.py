"""Regression pins: exact objectives on one seeded instance.

These values were computed once with the released implementation and
are pinned (to 1e-6 relative) so that any future change silently
shifting optimizer behavior — a formulation tweak, a tolerance change,
an RNG reordering — fails loudly here rather than drifting the
benchmark tables.  If a change is *intended* to move these numbers,
re-pin them in the same commit and say why.

Instance: 6 DCs (seed 2026, c=30), 5 files (PaperWorkload seed 7,
max T=4, fixed deadlines) released at slot 0.
"""

import pytest

from repro.core import (
    PostcardScheduler,
    build_postcard_model,
    solve_offline,
    solve_soft_deadline,
)
from repro.core.bounds import dual_lower_bound
from repro.core.state import NetworkState
from repro.baselines import DirectScheduler, GreedyStoreAndForwardScheduler
from repro.extensions import solve_multicast
from repro.flowbased import FlowBasedScheduler, solve_flow_column_generation
from repro.flowbased.model import build_flow_model
from repro.flowbased.two_phase import solve_two_phase
from repro.net.generators import complete_topology, fig1_topology, fig3_topology
from repro.traffic import PaperWorkload, TransferRequest

REL = 1e-6

PINS = {
    "postcard": 245.05191826427395,
    "flow_lp": 238.6471425596179,
    "two_phase_committed": 238.6471425596179,
    "greedy": 245.05191826427398,
    "colgen": 238.6471425596179,
    "offline": 245.05191826427395,
    "soft_penalty_1": 239.81076455149415,
    "multicast_2dest": 95.89833767161684,
}


@pytest.fixture(scope="module")
def instance():
    topo = complete_topology(6, capacity=30.0, seed=2026)
    workload = PaperWorkload(topo, max_deadline=4, min_files=5, max_files=5, seed=7)
    requests = workload.requests_at(0)
    return topo, requests


def _fresh(requests):
    return [r.with_release(0) for r in requests]


def test_pin_postcard(instance):
    topo, requests = instance
    state = NetworkState(topo, horizon=30)
    _, solution = build_postcard_model(state, _fresh(requests)).solve()
    assert solution.objective == pytest.approx(PINS["postcard"], rel=REL)


def test_pin_flow_lp(instance):
    topo, requests = instance
    state = NetworkState(topo, horizon=30)
    _, solution = build_flow_model(state, _fresh(requests)).solve()
    assert solution.objective == pytest.approx(PINS["flow_lp"], rel=REL)


def test_pin_two_phase(instance):
    topo, requests = instance
    state = NetworkState(topo, horizon=30)
    fresh = _fresh(requests)
    schedule, _lam, _p2 = solve_two_phase(state, fresh)
    state.commit(schedule, fresh)
    assert state.current_cost_per_slot() == pytest.approx(
        PINS["two_phase_committed"], rel=REL
    )


def test_pin_greedy(instance):
    topo, requests = instance
    scheduler = GreedyStoreAndForwardScheduler(topo, horizon=30)
    scheduler.on_slot(0, _fresh(requests))
    assert scheduler.state.current_cost_per_slot() == pytest.approx(
        PINS["greedy"], rel=REL
    )


def test_pin_colgen(instance):
    topo, requests = instance
    state = NetworkState(topo, horizon=30)
    result = solve_flow_column_generation(state, _fresh(requests))
    assert result.objective == pytest.approx(PINS["colgen"], rel=REL)


def test_pin_offline(instance):
    topo, requests = instance
    result = solve_offline(topo, _fresh(requests), horizon=30)
    assert result.cost_per_slot == pytest.approx(PINS["offline"], rel=REL)


def test_pin_soft(instance):
    topo, requests = instance
    state = NetworkState(topo, horizon=30)
    result = solve_soft_deadline(
        state, _fresh(requests), extension=2, lateness_penalty=1.0
    )
    assert result.solution.objective == pytest.approx(
        PINS["soft_penalty_1"], rel=REL
    )


def test_pin_multicast(instance):
    topo, _requests = instance
    state = NetworkState(topo, horizon=30)
    result = solve_multicast(state, 0, [2, 3], 25.0, 3)
    assert result.cost_per_slot == pytest.approx(PINS["multicast_2dest"], rel=REL)


def test_pin_dual_bound_bracket(instance):
    """The subgradient bound depends on float scheduling details, so it
    is pinned loosely: it must stay a valid, *useful* bracket."""
    topo, requests = instance
    state = NetworkState(topo, horizon=30)
    result = dual_lower_bound(state, _fresh(requests), iterations=100)
    assert 0.8 * PINS["postcard"] <= result.lower_bound <= PINS["postcard"] + 1e-6


def test_pin_orderings(instance):
    """The cross-method orderings this instance exhibits (flow beats
    S&F here: ample slack, short horizon) are part of the snapshot."""
    assert PINS["flow_lp"] <= PINS["postcard"]
    assert PINS["colgen"] == pytest.approx(PINS["flow_lp"], rel=REL)
    assert PINS["offline"] == pytest.approx(PINS["postcard"], rel=REL)
    assert PINS["soft_penalty_1"] <= PINS["postcard"] + 1e-9


# -- fast-path pins -------------------------------------------------------
#
# The incremental scheduling path (cached time-expanded arcs, direct
# fast assembly, warm-start hints) promises *bit-identical* results to
# the from-scratch reference, so it must hit the very same pins.


def test_pin_postcard_fast_assembly(instance):
    topo, requests = instance
    state = NetworkState(topo, horizon=30)
    built = build_postcard_model(state, _fresh(requests), assembly="fast")
    _, solution = built.solve()
    assert solution.objective == pytest.approx(PINS["postcard"], rel=REL)


def test_pin_postcard_incremental_scheduler(instance):
    """The production configuration: incremental + warm (defaults)."""
    topo, requests = instance
    scheduler = PostcardScheduler(topo, horizon=30)
    assert scheduler.incremental and scheduler.warm_start
    scheduler.on_slot(0, _fresh(requests))
    assert scheduler.last_objective == pytest.approx(PINS["postcard"], rel=REL)


# -- paper-example pins ---------------------------------------------------
#
# The worked examples of Secs. I and IV, run through the fast path:
# Fig. 1 costs 20 direct vs. 12 optimized; Fig. 3 costs 52 direct,
# 50 flow-based, 98/3 = 32.67 with store-and-forward.

FIG1_REQUEST = dict(source=2, destination=3, size_gb=6.0, deadline_slots=3)


def _fig3_files():
    return [
        TransferRequest(2, 4, 8.0, 4, release_slot=3),
        TransferRequest(1, 4, 10.0, 2, release_slot=3),
    ]


def test_pin_paper_fig1():
    direct = DirectScheduler(fig1_topology(), horizon=100)
    direct.on_slot(0, [TransferRequest(release_slot=0, **FIG1_REQUEST)])
    assert direct.state.current_cost_per_slot() == pytest.approx(20.0, rel=REL)

    postcard = PostcardScheduler(fig1_topology(), horizon=100)
    postcard.on_slot(0, [TransferRequest(release_slot=0, **FIG1_REQUEST)])
    assert postcard.state.current_cost_per_slot() == pytest.approx(12.0, rel=REL)


def test_pin_paper_fig3():
    direct = DirectScheduler(fig3_topology(), horizon=100)
    direct.on_slot(3, _fig3_files())
    assert direct.state.current_cost_per_slot() == pytest.approx(52.0, rel=REL)

    flow = FlowBasedScheduler(fig3_topology(), 100)
    flow.on_slot(3, _fig3_files())
    assert flow.state.current_cost_per_slot() == pytest.approx(50.0, rel=REL)

    postcard = PostcardScheduler(fig3_topology(), horizon=100)
    postcard.on_slot(3, _fig3_files())
    assert postcard.state.current_cost_per_slot() == pytest.approx(
        98.0 / 3.0, rel=REL
    )
