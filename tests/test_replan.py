"""Unit tests for the replanning Postcard scheduler."""

import pytest

from repro.errors import InfeasibleError, SchedulingError
from repro.core import PostcardScheduler, ReplanningPostcardScheduler
from repro.net.generators import complete_topology, fig3_topology, line_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TraceWorkload, TransferRequest


def drain_run(scheduler, requests, num_slots):
    """Simulate a trace plus enough empty slots to drain everything."""
    result = Simulation(scheduler, TraceWorkload(requests), num_slots).run()
    return result


def test_parameters_validated(line3):
    with pytest.raises(SchedulingError):
        ReplanningPostcardScheduler(line3, 10, on_infeasible="mutter")


def test_single_file_matches_commit_once(line3):
    """With one file and no later arrivals, replanning and commit-once
    face identical problems slot by slot."""
    request = TransferRequest(0, 2, 6.0, 3, release_slot=0)

    once = PostcardScheduler(line3, horizon=10)
    once.on_slot(0, [TransferRequest(0, 2, 6.0, 3, release_slot=0)])

    replan = ReplanningPostcardScheduler(line3, horizon=10)
    drain_run(replan, [request], num_slots=4)

    assert replan.state.current_cost_per_slot() == pytest.approx(
        once.state.current_cost_per_slot(), abs=1e-6
    )
    assert replan.state.completions[request.request_id] <= request.last_slot


def test_fig3_matches_offline_when_released_together(fig3):
    files = [
        TransferRequest(2, 4, 8.0, 4, release_slot=0),
        TransferRequest(1, 4, 10.0, 2, release_slot=0),
    ]
    scheduler = ReplanningPostcardScheduler(fig3, horizon=50)
    drain_run(scheduler, files, num_slots=5)
    assert scheduler.state.current_cost_per_slot() == pytest.approx(
        98.0 / 3.0, abs=1e-5
    )


def test_replanning_recovers_from_bad_commitment():
    """The signature win: a slot-1 arrival makes slot-0's plan
    regrettable; replanning adapts, commit-once cannot."""
    topo = fig3_topology()
    # File A (2->4, slack) arrives first and, myopically, grabs the
    # cheap link {1,4}; file B (1->4, tight) then has to pay more.
    file_a = TransferRequest(2, 4, 8.0, 5, release_slot=0)
    file_b = TransferRequest(1, 4, 10.0, 2, release_slot=1)

    once = PostcardScheduler(topo, horizon=50)
    once.on_slot(0, [TransferRequest(2, 4, 8.0, 5, release_slot=0)])
    once.on_slot(1, [TransferRequest(1, 4, 10.0, 2, release_slot=1)])

    replan = ReplanningPostcardScheduler(topo, horizon=50)
    drain_run(replan, [file_a, file_b], num_slots=7)

    assert (
        replan.state.current_cost_per_slot()
        <= once.state.current_cost_per_slot() + 1e-6
    )


def test_supplies_track_parked_data(line3):
    scheduler = ReplanningPostcardScheduler(line3, horizon=20)
    request = TransferRequest(0, 2, 6.0, 4, release_slot=0)
    scheduler.on_slot(0, [request])
    # After one slot the file is mid-flight: some volume left node 0.
    active = scheduler.active[0]
    assert active.remaining + active.delivered == pytest.approx(6.0)


def test_empty_slots_keep_draining(line3):
    scheduler = ReplanningPostcardScheduler(line3, horizon=20)
    request = TransferRequest(0, 2, 6.0, 4, release_slot=0)
    scheduler.on_slot(0, [request])
    for slot in range(1, 5):
        scheduler.on_slot(slot, [])
    assert request.request_id in scheduler.state.completions
    assert not scheduler.active


def test_infeasible_newcomer_dropped(line3):
    scheduler = ReplanningPostcardScheduler(line3, horizon=20, on_infeasible="drop")
    impossible = TransferRequest(0, 2, 1.0, 1, release_slot=0)
    fine = TransferRequest(0, 1, 5.0, 2, release_slot=0)
    scheduler.on_slot(0, [impossible, fine])
    assert [r.request_id for r in scheduler.state.rejected] == [
        impossible.request_id
    ]
    for slot in range(1, 4):
        scheduler.on_slot(slot, [])
    assert fine.request_id in scheduler.state.completions


def test_release_mismatch(line3):
    scheduler = ReplanningPostcardScheduler(line3, horizon=10)
    with pytest.raises(SchedulingError):
        scheduler.on_slot(0, [TransferRequest(0, 1, 1.0, 1, release_slot=2)])


def test_full_simulation_with_drain():
    topo = complete_topology(5, capacity=30.0, seed=15)
    workload = PaperWorkload(topo, max_deadline=3, max_files=3, seed=8)
    requests = workload.all_requests(4)  # arrivals only in slots 0-3
    scheduler = ReplanningPostcardScheduler(topo, horizon=20, on_infeasible="drop")
    result = Simulation(scheduler, TraceWorkload(requests), num_slots=8).run()
    assert result.max_lateness() == 0
    accounted = set(scheduler.state.completions) | {
        r.request_id for r in scheduler.state.rejected
    }
    assert {r.request_id for r in requests} <= accounted


def test_replanning_respects_faults(line3):
    """The replanner's future-capacity view honors the fault model."""
    from repro.sim import FaultModel, Outage

    scheduler = ReplanningPostcardScheduler(line3, horizon=20)
    scheduler.state.fault_model = FaultModel([Outage(0, 1, 0, 2)])
    request = TransferRequest(0, 1, 6.0, 4, release_slot=0)
    scheduler.on_slot(0, [request])
    for slot in range(1, 5):
        scheduler.on_slot(slot, [])
    ledger = scheduler.state.ledger
    assert ledger.volume(0, 1, 0) == 0.0
    assert ledger.volume(0, 1, 1) == 0.0
    assert request.request_id in scheduler.state.completions


def test_replanning_never_worse_than_commit_once_on_average():
    """Across seeds, replanning's final bill is at most commit-once's
    (ties allowed; per-instance wins occur when arrivals collide)."""
    topo = complete_topology(4, capacity=25.0, seed=16)
    total_once, total_replan = 0.0, 0.0
    for seed in range(3):
        workload = PaperWorkload(topo, max_deadline=4, max_files=3, seed=seed)
        requests = workload.all_requests(4)

        once = PostcardScheduler(topo, horizon=20, on_infeasible="drop")
        Simulation(once, TraceWorkload(requests), 8).run()
        total_once += once.state.current_cost_per_slot()

        replan = ReplanningPostcardScheduler(topo, horizon=20, on_infeasible="drop")
        Simulation(replan, TraceWorkload(requests), 8).run()
        total_replan += replan.state.current_cost_per_slot()

    assert total_replan <= total_once * 1.01
