"""Unit tests for the benchmark report generator."""

import json

import pytest

from repro.errors import SimulationError
from repro.sim.report import (
    latest_per_figure,
    load_records,
    render_markdown,
    write_report,
)


def record(figure="Fig. 6", postcard=10.0, flow=12.0):
    return {
        "figure": figure,
        "scale": "smoke",
        "setting": "fig6: c=30",
        "runs": 3,
        "means": {"postcard": postcard, "flow-based": flow},
        "half_widths": {"postcard": 1.0, "flow-based": 2.0},
        "rejected": {"postcard": 0, "flow-based": 1},
    }


def write_jsonl(path, records):
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")


def test_load_records(tmp_path):
    path = tmp_path / "r.jsonl"
    write_jsonl(path, [record(), record("Fig. 7")])
    records = load_records(path)
    assert len(records) == 2


def test_load_records_skips_blank_lines(tmp_path):
    path = tmp_path / "r.jsonl"
    path.write_text(json.dumps(record()) + "\n\n\n")
    assert len(load_records(path)) == 1


def test_load_records_rejects_junk(tmp_path):
    path = tmp_path / "r.jsonl"
    path.write_text("{broken\n")
    with pytest.raises(SimulationError, match="not valid JSON"):
        load_records(path)
    path.write_text('{"hello": 1}\n')
    with pytest.raises(SimulationError, match="not a benchmark record"):
        load_records(path)


def test_latest_per_figure():
    older = record(postcard=99.0)
    newer = record(postcard=10.0)
    latest = latest_per_figure([older, newer])
    assert latest["Fig. 6"]["means"]["postcard"] == 10.0


def test_render_markdown():
    text = render_markdown([record(), record("Fig. 7", postcard=5.0, flow=4.0)])
    assert "## Fig. 6" in text and "## Fig. 7" in text
    assert "**(best)**" in text
    # The winner of Fig. 7 is flow-based.
    fig7 = text.split("## Fig. 7")[1]
    assert fig7.index("flow-based **(best)**") < fig7.index("| postcard |")


def test_render_empty():
    assert "(no records)" in render_markdown([])


def test_write_report(tmp_path):
    src = tmp_path / "r.jsonl"
    write_jsonl(src, [record()])
    out = tmp_path / "report.md"
    count = write_report(src, out)
    assert count == 1
    assert "Fig. 6" in out.read_text()


def test_cli_report(tmp_path, capsys):
    from repro.cli import main

    src = tmp_path / "r.jsonl"
    write_jsonl(src, [record()])
    assert main(["report", str(src)]) == 0
    assert "Fig. 6" in capsys.readouterr().out

    out = tmp_path / "report.md"
    assert main(["report", str(src), "-o", str(out)]) == 0
    assert out.exists()
