"""Retry/backoff/fallback behavior of the resilient solver chain."""

import pytest

from repro.errors import InfeasibleError, SolverError
from repro.lp import Model
from repro.lp.backends import ResilientBackend, get_backend
from repro.lp.backends.base import Backend
from repro.lp.result import SolveStatus


def _tiny_model():
    """min x s.t. x >= 3  ->  optimum 3."""
    m = Model("tiny")
    x = m.add_variable("x")
    m.add_constraint(x.as_expr() >= 3)
    m.minimize(x.as_expr())
    return m


def _infeasible_model():
    m = Model("impossible")
    x = m.add_variable("x", ub=1.0)
    m.add_constraint(x.as_expr() >= 3)
    m.minimize(x.as_expr())
    return m


class FlakyBackend(Backend):
    """Raises SolverError ``failures`` times, then delegates to highs."""

    name = "flaky"

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def solve(self, model, **options):
        self.calls += 1
        if self.calls <= self.failures:
            raise SolverError("transient numerical blow-up")
        return get_backend("highs").solve(model, **options)


class DeadBackend(Backend):
    name = "dead"
    calls = 0

    def solve(self, model, **options):
        DeadBackend.calls += 1
        raise SolverError("permanently broken")


def test_registered_and_default_chain():
    backend = get_backend("resilient")
    assert isinstance(backend, ResilientBackend)
    assert backend.chain == ("highs", "simplex", "interior_point")


def test_healthy_solve_passes_through():
    backend = ResilientBackend()
    solution = backend.solve(_tiny_model())
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(3.0)
    assert backend.retries == 0
    assert backend.fallbacks == 0


def test_transient_failure_is_retried():
    flaky = FlakyBackend(failures=1)
    sleeps = []
    backend = ResilientBackend(
        chain=("flaky",),
        max_attempts=3,
        sleep=sleeps.append,
        factory=lambda name: flaky,
    )
    solution = backend.solve(_tiny_model())
    assert solution.status is SolveStatus.OPTIMAL
    assert flaky.calls == 2
    assert backend.retries == 1
    assert backend.fallbacks == 0
    assert sleeps == [pytest.approx(0.05)]


def test_backoff_doubles_and_caps():
    flaky = FlakyBackend(failures=4)
    sleeps = []
    backend = ResilientBackend(
        chain=("flaky",),
        max_attempts=5,
        backoff_base=0.1,
        backoff_max=0.3,
        sleep=sleeps.append,
        factory=lambda name: flaky,
    )
    backend.solve(_tiny_model())
    assert sleeps == [
        pytest.approx(0.1),
        pytest.approx(0.2),
        pytest.approx(0.3),  # capped
        pytest.approx(0.3),
    ]


def test_exhausted_backend_falls_through_chain():
    flaky = FlakyBackend(failures=99)  # never recovers

    def factory(name):
        return flaky if name == "flaky" else get_backend(name)

    backend = ResilientBackend(
        chain=("flaky", "highs"),
        max_attempts=2,
        sleep=lambda s: None,
        factory=factory,
    )
    solution = backend.solve(_tiny_model())
    assert solution.status is SolveStatus.OPTIMAL
    assert backend.fallbacks == 1
    assert backend.retries == 1  # one retry on flaky before falling through
    assert flaky.calls == 2


def test_whole_chain_exhausted_raises_with_cause():
    backend = ResilientBackend(
        chain=("dead",),
        max_attempts=2,
        sleep=lambda s: None,
        factory=lambda name: DeadBackend(),
    )
    with pytest.raises(SolverError, match="all backends"):
        backend.solve(_tiny_model())


def test_infeasible_is_conclusive_not_transient():
    """INFEASIBLE is an answer: no retry, no fallback, the typed
    exception from the model layer propagates on the first attempt."""
    calls = []

    class CountingHighs(Backend):
        name = "counting"

        def solve(self, model, **options):
            calls.append(1)
            return get_backend("highs").solve(model, **options)

    backend = ResilientBackend(
        chain=("counting", "counting"),
        max_attempts=3,
        sleep=lambda s: None,
        factory=lambda name: CountingHighs(),
    )
    solution = backend.solve(_infeasible_model())
    assert solution.status is SolveStatus.INFEASIBLE
    assert len(calls) == 1
    assert backend.retries == 0 and backend.fallbacks == 0


def test_infeasible_exception_propagates_immediately():
    calls = []

    class RaisingBackend(Backend):
        name = "raising"

        def solve(self, model, **options):
            calls.append(1)
            raise InfeasibleError("no feasible point")

    backend = ResilientBackend(
        chain=("raising",),
        max_attempts=5,
        sleep=lambda s: None,
        factory=lambda name: RaisingBackend(),
    )
    with pytest.raises(InfeasibleError):
        backend.solve(_tiny_model())
    assert len(calls) == 1


def test_error_status_counts_as_transient():
    class ErrorStatusBackend(Backend):
        name = "errstatus"

        def __init__(self):
            self.calls = 0

        def solve(self, model, **options):
            self.calls += 1
            if self.calls == 1:
                from repro.lp.result import Solution
                import numpy as np

                return Solution(
                    SolveStatus.ERROR, np.zeros(1), 0.0, model_id=-2
                )
            return get_backend("highs").solve(model, **options)

    flaky = ErrorStatusBackend()
    backend = ResilientBackend(
        chain=("errstatus",),
        max_attempts=2,
        sleep=lambda s: None,
        factory=lambda name: flaky,
    )
    solution = backend.solve(_tiny_model())
    assert solution.status is SolveStatus.OPTIMAL
    assert flaky.calls == 2


def test_validation():
    with pytest.raises(SolverError, match="chain"):
        ResilientBackend(chain=())
    with pytest.raises(SolverError, match="max_attempts"):
        ResilientBackend(max_attempts=0)


def test_scheduler_runs_on_resilient_backend(line3):
    """End to end: a Postcard scheduler solving through the chain
    produces the same answer as plain highs."""
    from repro.core import PostcardScheduler
    from repro.traffic import TransferRequest

    plain = PostcardScheduler(line3, horizon=10)
    chained = PostcardScheduler(line3, horizon=10, backend="resilient")
    for scheduler in (plain, chained):
        scheduler.on_slot(0, [TransferRequest(0, 1, 6.0, 4, release_slot=0)])
    assert chained.state.current_cost_per_slot() == pytest.approx(
        plain.state.current_cost_per_slot()
    )
