"""Billing-rollover tests: a broker that outlives its charging period.

With ``period_slots=P`` the slot loop closes the charging period at
every multiple of P instead of refusing submissions near the horizon:
the closed period's bill (max-charging over its own samples) is banked,
and the paid-peak watermark ``X_ij`` re-seeds from the volume in-flight
transfers have already committed past the boundary.  The money
invariants under test:

* **Conservation** — over >=3 cycles, every banked bill equals the bill
  recomputed independently from the full ledger for exactly that
  period's half-open slot range; periods partition the committed
  volume, so nothing is billed twice or dropped at a boundary.
* **Watermark re-seed** — after a rollover the charged volume per link
  is exactly the peak committed at-or-after the boundary (in-flight
  carry-over), not the old period's paid peak.
* **Crash equivalence** — a WAL broker killed mid-run and replayed
  lands on the same period_start, the same banked bills, and a
  strict-clean recovery verifier, even when the kill brackets a
  boundary.
"""

import pytest

from repro.charging.ledger import TrafficLedger
from repro.errors import ChargingError, ServiceError
from repro.net.generators import complete_topology
from repro.service import ServiceConfig, TransferBroker

PERIOD = 8


def make_broker(tmp_path=None, **overrides) -> TransferBroker:
    base = dict(
        port=0,
        datacenters=4,
        capacity=50.0,
        max_deadline=4,
        tick_seconds=0.0,
        period_slots=PERIOD,
    )
    if tmp_path is not None:
        base.update(checkpoint_dir=str(tmp_path), checkpoint_every=1, wal=True)
    base.update(overrides)
    return TransferBroker(ServiceConfig(**base))


def submit_fields(i, source=0, destination=1, size=3.0, deadline=3):
    return {
        "id": f"r{i}",
        "source": source,
        "destination": destination,
        "size_gb": size,
        "deadline_slots": deadline,
    }


def drive_cycles(broker, cycles=3, per_slot=1):
    """Submit a steady drip and tick through ``cycles`` full periods."""
    i = 0
    for slot in range(cycles * PERIOD + 1):
        # Skew sources/destinations so links build distinct peaks.
        for _ in range(per_slot):
            broker.submit(submit_fields(
                i, source=i % 3, destination=(i % 3) + 1,
                size=2.0 + (i % 4), deadline=1 + (i % 3),
            ))
            i += 1
        broker.process_slot()
    return i


def test_config_period_validation():
    with pytest.raises(ServiceError, match="period_slots"):
        ServiceConfig(period_slots=-1)
    # A transfer may straddle at most one boundary: the period must
    # strictly exceed the deadline bound.
    with pytest.raises(ServiceError, match="period_slots"):
        ServiceConfig(period_slots=8, max_deadline=8)
    with pytest.raises(ServiceError, match="period_prune"):
        ServiceConfig(period_prune=True)


def test_single_period_mode_still_refuses_past_horizon():
    broker = make_broker(period_slots=0, horizon=16)
    broker.next_slot = 14
    with pytest.raises(ServiceError, match="horizon"):
        broker.submit(submit_fields(0, deadline=3))


def test_rollover_banks_conserved_bills():
    broker = make_broker()
    submitted = drive_cycles(broker, cycles=3)
    state = broker.state
    assert state.period_start == 3 * PERIOD
    assert len(state.banked_period_bills) == 3
    assert broker.counts["admitted"] == submitted
    # Every banked bill re-derives from the untouched ledger for its
    # own half-open range — and only that range (no double-charging a
    # boundary slot into two periods).
    for k, banked in enumerate(state.banked_period_bills):
        recomputed = state.ledger.period_cost(k * PERIOD, (k + 1) * PERIOD)
        assert banked == pytest.approx(recomputed)
        assert banked > 0.0
    # The period ranges partition the committed volume: summing each
    # period's samples (plus the open tail) recovers every recorded
    # GB exactly once — nothing double-counted at a boundary, nothing
    # dropped.
    tail_end = max(
        state.period_start + 1,
        max(
            state.ledger.usage(src, dst).last_slot()
            for src, dst in state.ledger.used_links()
        ) + 1,
    )
    per_period_volume = sum(
        float(state.ledger.samples_range(src, dst, k * PERIOD,
                                         (k + 1) * PERIOD).sum())
        for src, dst in state.ledger.used_links()
        for k in range(3)
    ) + sum(
        float(state.ledger.samples_range(src, dst, state.period_start,
                                         tail_end).sum())
        for src, dst in state.ledger.used_links()
    )
    assert per_period_volume == pytest.approx(state.ledger.total_volume())


def test_boundary_slot_bills_into_exactly_one_period():
    topology = complete_topology(3, capacity=50.0, seed=0)
    ledger = TrafficLedger(topology, horizon=64)
    price = next(l for l in topology.links if l.key == (0, 1)).price
    ledger.record(0, 1, PERIOD - 1, 4.0)  # last slot of period 1
    ledger.record(0, 1, PERIOD, 9.0)      # first slot of period 2
    bill1 = ledger.period_cost(0, PERIOD)
    bill2 = ledger.period_cost(PERIOD, 2 * PERIOD)
    # Half-open ranges: the boundary slot's 9 GB bills into period 2
    # only; were it also counted in period 1 (max charging), bill1
    # would jump to 9 * price * PERIOD.
    assert bill1 == pytest.approx(price * 4.0 * PERIOD)
    assert bill2 == pytest.approx(price * 9.0 * PERIOD)


def test_rollover_reseeds_watermark_from_inflight_volume():
    broker = make_broker()
    # Fill slots right up to the boundary; the last submission's
    # deadline straddles it, committing volume past slot PERIOD.
    for slot in range(PERIOD - 1):
        broker.submit(submit_fields(slot, size=4.0, deadline=1))
        broker.process_slot()
    broker.submit(submit_fields(99, size=6.0, deadline=4))
    broker.process_slot()  # decides at slot PERIOD-1, may spill over
    state = broker.state
    pre_peaks = {
        link.key: state.ledger.peak_in_range(
            link.src, link.dst, PERIOD, PERIOD + state.horizon
        )
        for link in state.topology.links
    }
    broker.process_slot()  # crosses the boundary -> rollover
    assert state.period_start == PERIOD
    assert len(state.banked_period_bills) == 1
    for link in state.topology.links:
        assert state.charged_volume(link.src, link.dst) == pytest.approx(
            pre_peaks[link.key]
        )
    # The straddling transfer left volume in the new period, so at
    # least one watermark carried over non-zero — the re-seed is real,
    # not vacuous.
    assert any(peak > 0.0 for peak in pre_peaks.values())
    assert broker.stats()["periods_banked"] == 1
    assert broker.stats()["last_period_bill"] > 0.0


def test_rollover_fires_on_empty_slots_too():
    broker = make_broker()
    for _ in range(2 * PERIOD + 1):
        broker.process_slot()
    assert broker.state.period_start == 2 * PERIOD
    assert broker.state.banked_period_bills == [0.0, 0.0]


def test_wal_replay_reproduces_rollover(tmp_path):
    # Reference run: uninterrupted across 2 boundaries.
    ref = make_broker(tmp_path / "ref")
    drive_cycles(ref, cycles=2)
    # Crashed run: same inputs, new process resumes from WAL.
    crash_dir = tmp_path / "crash"
    first = make_broker(crash_dir)
    drive_cycles(first, cycles=2)
    # Simulate the kill: drop the object without any graceful close.
    del first
    resumed = make_broker(crash_dir)
    assert resumed.resumed
    report = resumed.verifier_report
    assert report is not None and report["ok"], report
    assert resumed.state.period_start == ref.state.period_start
    assert resumed.state.banked_period_bills == pytest.approx(
        ref.state.banked_period_bills
    )
    assert resumed.next_slot == ref.next_slot
    for link in ref.state.topology.links:
        assert resumed.state.charged_volume(
            link.src, link.dst
        ) == pytest.approx(ref.state.charged_volume(link.src, link.dst))


def test_ledger_prune_before_drops_closed_samples():
    topology = complete_topology(3, capacity=50.0, seed=0)
    ledger = TrafficLedger(topology, horizon=64)
    ledger.record(0, 1, 2, 5.0)
    ledger.record(0, 1, 9, 7.0)
    ledger.record(1, 2, 3, 1.0)
    dropped = ledger.prune_before(8)
    assert dropped == 2
    assert ledger.volume(0, 1, 2) == 0.0
    assert ledger.volume(0, 1, 9) == 7.0
    with pytest.raises(ChargingError):
        ledger.prune_before(-1)


def test_broker_period_prune_keeps_open_period_books():
    broker = make_broker(period_prune=True)
    drive_cycles(broker, cycles=2)
    state = broker.state
    # Closed-period samples are gone (that is the point of pruning)...
    assert state.ledger.period_cost(0, PERIOD) == 0.0
    # ...but the banked bills were taken first and survive.
    assert len(state.banked_period_bills) == 2
    assert all(bill > 0.0 for bill in state.banked_period_bills)
    # And the open period's books still satisfy the recovery verifier's
    # conservation check (watermark >= open-period peak).
    for link in state.topology.links:
        peak = state.ledger.peak_in_range(
            link.src, link.dst, state.period_start,
            state.period_start + state.horizon,
        )
        assert state.charged_volume(link.src, link.dst) >= peak - 1e-9
