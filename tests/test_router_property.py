"""Property tests for the fleet's consistent-hash shard router.

The :class:`~repro.service.router.ShardMap` is the fabric's routing
authority: every front end, relay planner, and fleet loadgen client
must agree on which shard owns a source datacenter, across processes
and restarts.  Three properties lock that down:

* **Determinism** — assignment is a pure function of (shard names,
  vnodes, version); rebuilding the map, reordering the shard list, or
  round-tripping it through its JSON payload never moves a key.
* **Balance** — with enough keys, consistent hashing with 128 vnodes
  keeps the busiest/least-busy shard ratio bounded (empirically <=
  1.66 for 2-8 shards over >=256 uniform keys; we gate at 2.0).
* **Minimal remap** — adding one shard to an N-shard map moves at
  most ~1/(N+1) of the keys (we gate at 2/(N+1)); removed-shard keys
  all land elsewhere without disturbing survivors.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.service.router import ShardMap

#: Balance/remap bounds need a dense keyspace; small key sets (say 16
#: datacenters over 4 shards) can legitimately skew 3:1.
KEYSPACE = 512

names_strategy = st.lists(
    st.sampled_from(
        ["us-east", "us-west", "eu", "ap", "sa", "af", "oc", "in"]
    ),
    min_size=2,
    max_size=8,
    unique=True,
)


@settings(max_examples=40, deadline=None)
@given(names=names_strategy, version=st.integers(1, 9))
def test_assignment_deterministic_across_rebuilds(names, version):
    reference = ShardMap(names, version=version)
    rebuilt = ShardMap(list(reversed(names)), version=version)
    roundtrip = ShardMap.loads_json(json.dumps(reference.to_payload()))
    assert rebuilt == reference
    assert roundtrip == reference
    for key in range(KEYSPACE):
        owner = reference.shard_for(key)
        assert rebuilt.shard_for(key) == owner
        assert roundtrip.shard_for(key) == owner


@settings(max_examples=40, deadline=None)
@given(names=names_strategy)
def test_assignment_balanced(names):
    shard_map = ShardMap(names)
    loads = shard_map.loads(range(KEYSPACE))
    assert sum(loads.values()) == KEYSPACE
    assert set(loads) == set(names)
    assert shard_map.load_ratio(range(KEYSPACE)) <= 2.0


@settings(max_examples=40, deadline=None)
@given(names=names_strategy, new_name=st.just("new-region"))
def test_shard_add_remaps_bounded_fraction(names, new_name):
    before = ShardMap(names)
    after = before.with_shard(new_name)
    assert after.version == before.version + 1
    moved = before.remapped_fraction(after, range(KEYSPACE))
    assert moved <= 2.0 / (len(names) + 1)
    # Every moved key lands on the new shard: stealing between
    # survivors would be extra churn consistent hashing exists to avoid.
    for key in range(KEYSPACE):
        old_owner = before.shard_for(key)
        new_owner = after.shard_for(key)
        if new_owner != old_owner:
            assert new_owner == new_name


@settings(max_examples=40, deadline=None)
@given(names=names_strategy)
def test_shard_remove_only_moves_orphans(names):
    before = ShardMap(names)
    victim = sorted(names)[0]
    after = before.without_shard(victim)
    for key in range(KEYSPACE):
        old_owner = before.shard_for(key)
        new_owner = after.shard_for(key)
        if old_owner != victim:
            assert new_owner == old_owner
        else:
            assert new_owner != victim
