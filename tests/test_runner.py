"""Unit tests for the experiment runner."""

import pytest

from repro.baselines import DirectScheduler
from repro.core import PostcardScheduler
from repro.flowbased import FlowBasedScheduler
from repro.sim.runner import (
    FIG4,
    FIG5,
    FIG6,
    FIG7,
    ExperimentSetting,
    run_comparison,
)


def tiny(setting_name, capacity, max_deadline):
    return ExperimentSetting(
        setting_name,
        capacity=capacity,
        max_deadline=max_deadline,
        num_datacenters=4,
        num_slots=4,
        max_files=3,
    )


FACTORIES = {
    "postcard": lambda t, h: PostcardScheduler(t, h, on_infeasible="drop"),
    "flow-based": lambda t, h: FlowBasedScheduler(t, h, on_infeasible="drop"),
}


def test_paper_settings_pinned():
    assert (FIG4.capacity, FIG4.max_deadline) == (100.0, 3)
    assert (FIG5.capacity, FIG5.max_deadline) == (100.0, 8)
    assert (FIG6.capacity, FIG6.max_deadline) == (30.0, 3)
    assert (FIG7.capacity, FIG7.max_deadline) == (30.0, 8)
    for setting in (FIG4, FIG5, FIG6, FIG7):
        assert setting.num_datacenters == 20
        assert setting.num_slots == 100
        assert setting.max_files == 20
        assert (setting.min_size, setting.max_size) == (10.0, 100.0)


def test_run_comparison_structure():
    comparison = run_comparison(
        tiny("t", 40.0, 3), FACTORIES, runs=2, base_seed=5
    )
    assert set(comparison.costs) == {"postcard", "flow-based"}
    assert all(len(v) == 2 for v in comparison.costs.values())
    ci = comparison.interval("postcard")
    assert ci.n == 2
    assert comparison.winner() in FACTORIES
    assert comparison.ratio("postcard", "postcard") == pytest.approx(1.0)
    table = comparison.to_table()
    assert "postcard" in table and "cost/slot" in table


def test_same_run_same_traffic():
    """All schedulers in one run index must see identical workloads:
    the direct scheduler's requested GB equals the others'."""
    factories = dict(FACTORIES)
    factories["direct"] = lambda t, h: DirectScheduler(t, h, on_infeasible="drop")
    comparison = run_comparison(tiny("t", 40.0, 3), factories, runs=1, base_seed=3)
    requested = {
        name: comparison.results[name][0].total_requested_gb for name in factories
    }
    assert len(set(round(v, 6) for v in requested.values())) == 1


def test_deterministic_given_seed():
    a = run_comparison(tiny("t", 40.0, 3), FACTORIES, runs=1, base_seed=9)
    b = run_comparison(tiny("t", 40.0, 3), FACTORIES, runs=1, base_seed=9)
    assert a.costs == b.costs


def test_describe():
    text = tiny("x", 30.0, 8).describe()
    assert "c=30" in text and "max T=8" in text


def test_custom_topology_and_workload_factories():
    from repro.net.generators import ring_topology
    from repro.traffic import PoissonWorkload

    seen = {"topologies": 0, "workloads": 0}

    def topo_factory(setting, seed):
        seen["topologies"] += 1
        return ring_topology(5, capacity=setting.capacity, price=2.0)

    def workload_factory(topology, setting, seed):
        seen["workloads"] += 1
        return PoissonWorkload(
            topology, max_deadline=setting.max_deadline, rate=1.0, seed=seed
        )

    comparison = run_comparison(
        tiny("custom", 40.0, 3),
        FACTORIES,
        runs=2,
        base_seed=4,
        topology_factory=topo_factory,
        workload_factory=workload_factory,
    )
    assert seen["topologies"] == 2               # one per run
    assert seen["workloads"] == 2 * len(FACTORIES)
    # The ring actually got used: schedulers saw 5 datacenters.
    any_result = comparison.results["postcard"][0]
    assert any_result.num_slots == 4


def test_fault_factory_attaches_per_scheduler_models():
    from repro.sim.faults import FaultModel

    built = []

    def fault_factory(topology, setting, seed):
        fm = FaultModel.random(
            topology,
            num_slots=setting.num_slots,
            outage_probability=0.5,
            seed=seed,
            announced=False,
        )
        built.append(fm)
        return fm

    comparison = run_comparison(
        tiny("chaos", 40.0, 3),
        FACTORIES,
        runs=2,
        base_seed=7,
        fault_factory=fault_factory,
    )
    # One fresh model per (run, scheduler): reveals never leak.
    assert len(built) == 2 * len(FACTORIES)
    assert len(set(map(id, built))) == len(built)
    for results in comparison.results.values():
        for result in results:
            assert result.salvaged_gb + result.lost_gb == pytest.approx(
                result.disrupted_gb
            )
    if any(
        r.disrupted_gb > 0
        for results in comparison.results.values()
        for r in results
    ):
        table = comparison.to_table()
        assert "salvaged" in table and "lost" in table
