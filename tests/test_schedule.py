"""Unit tests for TransferSchedule and its feasibility audits."""

import pytest

from repro.errors import SchedulingError
from repro.core.schedule import (
    SEMANTICS_FLUID,
    SEMANTICS_STORE_AND_FORWARD,
    ScheduleEntry,
    TransferSchedule,
)
from repro.timeexp.graph import ArcKind
from repro.traffic import TransferRequest


def hold(rid, node, slot, vol):
    return ScheduleEntry(rid, node, node, slot, vol, ArcKind.HOLDOVER)


def move(rid, src, dst, slot, vol):
    return ScheduleEntry(rid, src, dst, slot, vol)


def test_entry_validation():
    with pytest.raises(SchedulingError):
        ScheduleEntry(1, 0, 1, 0, -1.0)
    with pytest.raises(SchedulingError):
        ScheduleEntry(1, 0, 0, 0, 1.0)  # self loop must be holdover
    with pytest.raises(SchedulingError):
        ScheduleEntry(1, 0, 1, 0, 1.0, ArcKind.HOLDOVER)  # holdover must self-loop


def test_semantics_validation():
    with pytest.raises(SchedulingError):
        TransferSchedule([], semantics="quantum")


def test_zero_volume_entries_dropped():
    schedule = TransferSchedule([move(1, 0, 1, 0, 0.0)])
    assert len(schedule) == 0
    assert not schedule


def test_aggregations():
    schedule = TransferSchedule(
        [
            move(1, 0, 1, 0, 3.0),
            move(2, 0, 1, 0, 2.0),
            move(1, 1, 2, 1, 3.0),
            hold(1, 1, 0, 3.0),
        ]
    )
    assert schedule.link_slot_volumes() == {(0, 1, 0): 5.0, (1, 2, 1): 3.0}
    assert schedule.storage_slot_volumes() == {(1, 0): 3.0}
    assert schedule.total_transit_volume() == 8.0
    assert schedule.total_storage_volume() == 3.0
    assert schedule.slots_used() == [0, 1]
    assert len(schedule.entries_for_request(1)) == 3


def test_merge_same_semantics():
    a = TransferSchedule([move(1, 0, 1, 0, 1.0)])
    b = TransferSchedule([move(2, 0, 1, 0, 1.0)])
    merged = a.merge(b)
    assert len(merged) == 2


def test_merge_mixed_semantics_rejected():
    a = TransferSchedule([], semantics=SEMANTICS_STORE_AND_FORWARD)
    b = TransferSchedule([], semantics=SEMANTICS_FLUID)
    with pytest.raises(SchedulingError):
        a.merge(b)


def test_delivered_volume_and_completion():
    request = TransferRequest(0, 2, 6.0, 3, release_slot=0)
    rid = request.request_id
    schedule = TransferSchedule(
        [
            move(rid, 0, 1, 0, 6.0),
            move(rid, 1, 2, 1, 3.0),
            hold(rid, 1, 1, 3.0),
            move(rid, 1, 2, 2, 3.0),
        ]
    )
    assert schedule.delivered_volume(request) == pytest.approx(6.0)
    assert schedule.completion_slot(request) == 2


def test_completion_none_when_undelivered():
    request = TransferRequest(0, 2, 6.0, 3)
    schedule = TransferSchedule([move(request.request_id, 0, 1, 0, 6.0)])
    assert schedule.completion_slot(request) is None


def test_validate_full_delivery_required():
    request = TransferRequest(0, 1, 6.0, 3)
    schedule = TransferSchedule([move(request.request_id, 0, 1, 0, 5.0)])
    with pytest.raises(SchedulingError, match="delivers"):
        schedule.validate([request])


def test_validate_unknown_request():
    request = TransferRequest(0, 1, 6.0, 3)
    schedule = TransferSchedule([move(999999, 0, 1, 0, 6.0)])
    with pytest.raises(SchedulingError, match="unknown"):
        schedule.validate([request])


def test_validate_window():
    request = TransferRequest(0, 1, 6.0, 2, release_slot=1)
    schedule = TransferSchedule(
        [move(request.request_id, 0, 1, 3, 6.0)]  # slot 3 > last slot 2
    )
    with pytest.raises(SchedulingError, match="outside"):
        schedule.validate([request])


def test_validate_conservation_store_and_forward():
    request = TransferRequest(0, 2, 6.0, 3, release_slot=0)
    rid = request.request_id
    # Data "teleports": leaves 0 and arrives at 2 from node 1 without
    # ever reaching node 1.
    bad = TransferSchedule([move(rid, 0, 1, 0, 6.0), move(rid, 1, 2, 0, 6.0)])
    with pytest.raises(SchedulingError, match="conservation"):
        bad.validate([request])


def test_validate_good_store_and_forward():
    request = TransferRequest(0, 2, 6.0, 3, release_slot=0)
    rid = request.request_id
    good = TransferSchedule([move(rid, 0, 1, 0, 6.0), move(rid, 1, 2, 1, 6.0)])
    good.validate([request])  # no exception


def test_validate_fluid_allows_same_slot_relay():
    request = TransferRequest(0, 2, 6.0, 3, release_slot=0)
    rid = request.request_id
    fluid = TransferSchedule(
        [
            move(rid, 0, 1, 0, 2.0), move(rid, 1, 2, 0, 2.0),
            move(rid, 0, 1, 1, 2.0), move(rid, 1, 2, 1, 2.0),
            move(rid, 0, 1, 2, 2.0), move(rid, 1, 2, 2, 2.0),
        ],
        semantics=SEMANTICS_FLUID,
    )
    fluid.validate([request])  # no exception


def test_validate_fluid_rejects_imbalance():
    request = TransferRequest(0, 2, 4.0, 2, release_slot=0)
    rid = request.request_id
    bad = TransferSchedule(
        [
            move(rid, 0, 1, 0, 2.0), move(rid, 1, 2, 0, 1.0),
            move(rid, 0, 1, 1, 2.0), move(rid, 1, 2, 1, 3.0),
        ],
        semantics=SEMANTICS_FLUID,
    )
    with pytest.raises(SchedulingError, match="fluid conservation"):
        bad.validate([request])


def test_validate_fluid_rejects_holdover():
    request = TransferRequest(0, 1, 4.0, 2, release_slot=0)
    rid = request.request_id
    bad = TransferSchedule(
        [move(rid, 0, 1, 0, 4.0), hold(rid, 0, 0, 1.0)],
        semantics=SEMANTICS_FLUID,
    )
    with pytest.raises(SchedulingError, match="holdover"):
        bad.validate([request])


def test_validate_capacity():
    request = TransferRequest(0, 1, 6.0, 1, release_slot=0)
    schedule = TransferSchedule([move(request.request_id, 0, 1, 0, 6.0)])
    with pytest.raises(SchedulingError, match="capacity"):
        schedule.validate([request], capacity_fn=lambda s, d, n: 5.0)
    schedule.validate([request], capacity_fn=lambda s, d, n: 6.0)
