"""Property-based feasibility invariants for optimized schedules.

For random topologies and random request batches, every schedule the
Postcard and flow-based optimizers emit must satisfy: full delivery,
deadline windows, per-link-slot capacity, conservation under its own
semantics, and a cost no worse than trivial upper bounds.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import InfeasibleError
from repro.core import PostcardScheduler
from repro.core.state import NetworkState
from repro.core.formulation import build_postcard_model
from repro.flowbased.model import build_flow_model
from repro.net.generators import complete_topology
from repro.traffic import TransferRequest


@st.composite
def instances(draw):
    num_dcs = draw(st.integers(3, 5))
    capacity = draw(st.sampled_from([20.0, 40.0, 80.0]))
    seed = draw(st.integers(0, 50))
    count = draw(st.integers(1, 4))
    requests = []
    for _ in range(count):
        src = draw(st.integers(0, num_dcs - 1))
        dst = draw(st.integers(0, num_dcs - 1))
        if dst == src:
            dst = (src + 1) % num_dcs
        size = draw(st.integers(1, 30))
        deadline = draw(st.integers(2, 5))
        requests.append(TransferRequest(src, dst, float(size), deadline, release_slot=0))
    return num_dcs, capacity, seed, requests


@settings(max_examples=25, deadline=None)
@given(instances())
def test_postcard_schedules_are_feasible(instance):
    num_dcs, capacity, seed, requests = instance
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)
    state = NetworkState(topo, horizon=50)
    built = build_postcard_model(state, requests)
    try:
        schedule, solution = built.solve()
    except InfeasibleError:
        assume(False)
        return
    schedule.validate(requests, capacity_fn=state.residual_capacity)
    for request in requests:
        completion = schedule.completion_slot(request)
        assert completion is not None and completion <= request.last_slot

    # Cost sanity: bounded below by the cheapest-path bound, above by
    # the full direct-burst bound.
    lower = sum(0.0 for _ in requests)  # objective >= 0 trivially
    assert solution.objective >= lower
    upper = sum(
        topo.link(r.source, r.destination).price * r.size_gb for r in requests
    )
    assert solution.objective <= upper + 1e-6


@settings(max_examples=25, deadline=None)
@given(instances())
def test_flow_schedules_are_feasible(instance):
    num_dcs, capacity, seed, requests = instance
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)
    state = NetworkState(topo, horizon=50)
    built = build_flow_model(state, requests)
    try:
        schedule, _ = built.solve()
    except InfeasibleError:
        assume(False)
        return
    schedule.validate(requests, capacity_fn=state.residual_capacity)


@settings(max_examples=20, deadline=None)
@given(instances())
def test_postcard_cost_at_most_flow_cost_offline(instance):
    """On a cold network with one batch, Postcard's optimum can only be
    at least as good as the flow-based optimum: every constant-rate
    fluid flow along simple paths has a store-and-forward counterpart
    whose per-link peaks are no larger... except that pipelining delays
    can force S&F to concentrate volume when deadlines are tight.  The
    robust invariant is therefore one-sided only for single-hop-
    reachable traffic with slack deadlines; here we assert the weaker
    universal bound: Postcard is never worse than DOUBLE the flow cost
    when both are feasible and deadlines allow at least 2 extra slots
    of slack (empirically tight enough to catch regressions).
    """
    num_dcs, capacity, seed, requests = instance
    # Give everything slack so S&F pipelining is not the bottleneck.
    requests = [
        TransferRequest(r.source, r.destination, r.size_gb, r.deadline_slots + 2)
        for r in requests
    ]
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)

    try:
        s_state = NetworkState(topo, horizon=50)
        _, post_solution = build_postcard_model(s_state, requests).solve()
        f_state = NetworkState(topo, horizon=50)
        _, flow_solution = build_flow_model(f_state, requests).solve()
    except InfeasibleError:
        assume(False)
        return
    assert post_solution.objective <= 2.0 * flow_solution.objective + 1e-6
