"""Property: no plan ever places volume on a link outside its windows.

The acceptance bar for PR 9's time-varying topologies: under random
availability schedules and random workloads, both lanes — the fast
lane's window-aware ALAP placement and the LP over the gated
time-expanded graph — must keep every committed link-slot volume
inside the link's windows, with flow conservation intact at window
edges (data waits on holdover arcs while a link is dark).  Rejections
are always allowed; dark-slot traffic never is.
"""

from hypothesis import given, settings, strategies as st

from repro.heuristic import FastLaneScheduler
from repro.net import AvailabilityWindow, LinkSchedule
from repro.net.generators import complete_topology
from repro.registry import make_scheduler
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TransferRequest
from repro.units import VOLUME_ATOL


@st.composite
def windowed_instances(draw):
    num_dcs = draw(st.integers(3, 5))
    capacity = draw(st.sampled_from([15.0, 30.0, 60.0]))
    seed = draw(st.integers(0, 20))
    horizon = 12

    # A random subset of links gets random windows; some may stay dark.
    schedule = LinkSchedule()
    num_windowed = draw(st.integers(1, 6))
    for _ in range(num_windowed):
        src = draw(st.integers(0, num_dcs - 1))
        dst = draw(st.integers(0, num_dcs - 1))
        if dst == src:
            dst = (src + 1) % num_dcs
        schedule.schedule_link(src, dst)
        for _ in range(draw(st.integers(0, 2))):
            start = draw(st.integers(0, horizon - 1))
            length = draw(st.integers(1, 4))
            schedule.add_window(
                AvailabilityWindow(src, dst, start, start + length)
            )

    count = draw(st.integers(1, 4))
    requests = []
    for _ in range(count):
        src = draw(st.integers(0, num_dcs - 1))
        dst = draw(st.integers(0, num_dcs - 1))
        if dst == src:
            dst = (src + 1) % num_dcs
        size = draw(st.integers(2, 30))
        deadline = draw(st.integers(1, 6))
        requests.append(
            TransferRequest(src, dst, float(size), deadline, release_slot=0)
        )
    return num_dcs, capacity, seed, schedule, requests


def assert_no_dark_traffic(state, schedule):
    """Every ledger sample sits inside the carrying link's windows."""
    for src, dst in state.ledger.used_links():
        usage = state.ledger.usage(src, dst)
        for slot, volume in usage.volumes.items():
            if volume > VOLUME_ATOL:
                assert schedule.is_up(src, dst, slot), (
                    f"link ({src},{dst}) carries {volume} GB at dark "
                    f"slot {slot}"
                )


@settings(max_examples=30, deadline=None)
@given(windowed_instances())
def test_fast_lane_never_uses_dark_slots(instance):
    num_dcs, capacity, seed, schedule, requests = instance
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)
    scheduler = FastLaneScheduler(topo, horizon=30, on_infeasible="drop")
    scheduler.state.link_schedule = schedule
    planned = scheduler.on_slot(0, requests)

    assert_no_dark_traffic(scheduler.state, schedule)
    # Admitted files still complete by deadline — window edges must not
    # break the deadline guarantee, only tighten admission.
    rejected_ids = {r.request_id for r in scheduler.state.rejected}
    admitted = [r for r in requests if r.request_id not in rejected_ids]
    for request in admitted:
        assert scheduler.state.completions[request.request_id] <= request.last_slot
    # Conservation at window edges: the committed schedule revalidates
    # against window-gated raw capacity (dark slots carry nothing).
    planned.validate(
        admitted,
        capacity_fn=lambda s, d, n: (
            topo.link(s, d).capacity if schedule.is_up(s, d, n) else 0.0
        ),
    )


@settings(max_examples=15, deadline=None)
@given(windowed_instances())
def test_lp_scheduler_never_uses_dark_slots(instance):
    num_dcs, capacity, seed, schedule, requests = instance
    topo = complete_topology(num_dcs, capacity=capacity, seed=seed)
    scheduler = make_scheduler("postcard", topo, horizon=30)
    scheduler.state.link_schedule = schedule
    scheduler.on_slot(0, requests)
    assert_no_dark_traffic(scheduler.state, schedule)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10))
def test_leo_simulation_audits_clean(seed):
    """A LEO-preset end-to-end run completes with zero dark-slot volume.

    The engine's audit raises on dark-slot traffic, so a clean run *is*
    the assertion; the explicit re-check keeps the property visible
    even if the audit changes.
    """
    from repro.net.presets import leo_pass_schedule

    num_slots = 8
    topo = complete_topology(5, capacity=30.0, seed=seed)
    schedule = leo_pass_schedule(
        topo, num_slots + 4, fraction=0.5, period=4, pass_length=2, seed=seed
    )
    scheduler = make_scheduler("hybrid", topo, horizon=num_slots + 4)
    scheduler.state.link_schedule = schedule
    workload = PaperWorkload(topo, max_deadline=3, max_files=3, seed=seed + 1)
    Simulation(scheduler, workload, num_slots).run()
    assert_no_dark_traffic(scheduler.state, schedule)
