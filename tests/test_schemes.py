"""Unit tests for percentile charging schemes."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ChargingError
from repro.charging import MaxCharging, PercentileCharging


def test_max_charging_picks_peak():
    scheme = MaxCharging()
    assert scheme.charged_volume([1.0, 9.0, 3.0]) == 9.0
    assert scheme.charged_volume([]) == 0.0


def test_percentile_95_ignores_top_5_percent():
    scheme = PercentileCharging(95)
    samples = [0.0] * 95 + [100.0] * 5
    # Sorted ascending, the 95th of 100 samples (index 94) is 0.
    assert scheme.charged_volume(samples) == 0.0
    samples = [0.0] * 94 + [100.0] * 6
    assert scheme.charged_volume(samples) == 100.0


def test_percentile_50_is_lower_median():
    scheme = PercentileCharging(50)
    assert scheme.charged_volume([1, 2, 3, 4]) == 2.0


def test_percentile_validation():
    with pytest.raises(ChargingError):
        PercentileCharging(0)
    with pytest.raises(ChargingError):
        PercentileCharging(101)
    with pytest.raises(ChargingError):
        PercentileCharging(95).charged_volume([-1.0])
    with pytest.raises(ChargingError):
        MaxCharging().charged_volume([-1.0])


def test_max_charging_is_percentile_100():
    assert MaxCharging().q == 100.0


volumes = st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=50)


@given(volumes)
def test_charged_volume_is_an_observed_sample(samples):
    value = PercentileCharging(95).charged_volume(samples)
    assert value in np.asarray(samples, dtype=float)


@given(volumes, st.floats(1, 100), st.floats(1, 100))
def test_percentile_monotone_in_q(samples, q1, q2):
    lo, hi = sorted([q1, q2])
    assert (
        PercentileCharging(lo).charged_volume(samples)
        <= PercentileCharging(hi).charged_volume(samples)
    )


@given(volumes)
def test_max_dominates_all_percentiles(samples):
    peak = MaxCharging().charged_volume(samples)
    for q in (50, 90, 95, 99):
        assert PercentileCharging(q).charged_volume(samples) <= peak
