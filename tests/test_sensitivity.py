"""Unit tests for the parameter-sweep helper."""

import pytest

from repro.errors import ReproError
from repro.analysis import SweepResult, sweep


def test_validation():
    with pytest.raises(ReproError):
        sweep("x", [], lambda v, s: 0.0)
    with pytest.raises(ReproError):
        sweep("x", [1], lambda v, s: 0.0, runs=0)


def test_paired_seeds():
    seen = []

    def measure(value, seed):
        seen.append((value, seed))
        return float(value) * 10 + seed

    result = sweep("knob", [1, 2], measure, runs=3, base_seed=100)
    # Same seeds for every value: paired comparison.
    assert [(1, 100), (1, 101), (1, 102), (2, 100), (2, 101), (2, 102)] == seen
    assert result.intervals[1].mean == pytest.approx(10 + 101)
    assert result.intervals[2].mean == pytest.approx(20 + 101)


def test_monotone_and_spread():
    result = sweep("k", [1, 2, 4], lambda v, s: float(v), runs=2)
    assert result.is_monotone(increasing=True)
    assert not result.is_monotone(increasing=False)
    assert result.spread() == pytest.approx(4.0)


def test_monotone_slack():
    values = {1: 10.0, 2: 9.9, 3: 12.0}
    result = sweep("k", [1, 2, 3], lambda v, s: values[v], runs=1)
    assert not result.is_monotone(increasing=True)
    assert result.is_monotone(increasing=True, slack=0.2)


def test_table_rendering():
    result = sweep("price", [0.5, 1.0], lambda v, s: v * 2, runs=2,
                   metric="bill")
    table = result.to_table()
    assert "price" in table and "bill" in table and "1.00" in table


def test_end_to_end_storage_price_sweep():
    """The A7 ablation, rebuilt on the library helper in a few lines."""
    from repro.core import PostcardScheduler
    from repro.net.generators import complete_topology
    from repro.sim import Simulation
    from repro.traffic import PaperWorkload

    def measure(price, seed):
        topo = complete_topology(5, capacity=30.0, seed=seed)
        scheduler = PostcardScheduler(
            topo, horizon=20, storage_price=price, on_infeasible="drop"
        )
        workload = PaperWorkload(topo, max_deadline=4, max_files=3, seed=seed)
        Simulation(scheduler, workload, num_slots=4).run()
        return scheduler.state.current_cost_per_slot()

    result = sweep("storage $/GB-slot", [0.0, 5.0], measure, runs=2, base_seed=31)
    # Taxing storage cannot lower the WAN bill.
    assert result.is_monotone(increasing=True, slack=1e-6)
