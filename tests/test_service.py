"""Unit tests for the transfer-broker service (protocol, intake, broker)."""

import json

import pytest

from repro.errors import BackpressureError, ProtocolError, ServiceError
from repro.service import IntakeQueue, PendingTransfer, ServiceConfig, TransferBroker
from repro.service import protocol


# -- config ----------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ServiceError, match="datacenters"):
        ServiceConfig(datacenters=1)
    with pytest.raises(ServiceError, match="max_queue"):
        ServiceConfig(max_queue=0)
    with pytest.raises(ServiceError, match="tick_seconds"):
        ServiceConfig(tick_seconds=-1.0)
    with pytest.raises(ServiceError, match="checkpoint_every"):
        ServiceConfig(checkpoint_every=0)


def test_config_endpoint():
    assert ServiceConfig(port=7411).endpoint == "tcp:127.0.0.1:7411"
    assert ServiceConfig(socket_path="/tmp/x.sock").endpoint == "unix:/tmp/x.sock"


# -- protocol --------------------------------------------------------------


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError, match="JSON"):
        protocol.decode_line(b"{oops\n")
    with pytest.raises(ProtocolError, match="object"):
        protocol.decode_line(b"[1, 2]\n")
    with pytest.raises(ProtocolError, match="op"):
        protocol.decode_line(b'{"id": "x"}\n')
    with pytest.raises(ProtocolError, match="unknown op"):
        protocol.decode_line(b'{"op": "launch"}\n')
    with pytest.raises(ProtocolError, match="exceeds"):
        protocol.decode_line(b"x" * (protocol.MAX_LINE_BYTES + 1))


def test_encode_decode_round_trip():
    line = protocol.encode({"op": "ping", "n": 1})
    assert line.endswith(b"\n")
    assert protocol.decode_line(line) == {"op": "ping", "n": 1}


def test_validate_submit_normalizes():
    fields = protocol.validate_submit(
        {"op": "submit", "id": "a", "source": "0", "destination": 2,
         "size_gb": "5.5", "deadline_slots": 3.0},
        max_deadline=8,
    )
    assert fields == {"id": "a", "source": 0, "destination": 2,
                      "size_gb": 5.5, "deadline_slots": 3}


@pytest.mark.parametrize(
    "patch, match",
    [
        ({"id": ""}, "id"),
        ({"source": 1}, "destination"),  # src == dst
        ({"size_gb": 0}, "size_gb"),
        ({"size_gb": "lots"}, "malformed"),
        ({"deadline_slots": 0}, "deadline_slots"),
        ({"deadline_slots": 99}, "deadline_slots"),
    ],
)
def test_validate_submit_rejects(patch, match):
    message = {"op": "submit", "id": "a", "source": 0, "destination": 1,
               "size_gb": 5.0, "deadline_slots": 3}
    message.update(patch)
    with pytest.raises(ProtocolError, match=match):
        protocol.validate_submit(message, max_deadline=8)


# -- intake queue ----------------------------------------------------------


def _pending(i, **kw):
    fields = dict(client_id=f"p{i}", source=0, destination=1,
                  size_gb=1.0, deadline_slots=2)
    fields.update(kw)
    return PendingTransfer(**fields)


def test_intake_backpressure_and_retry_after():
    queue = IntakeQueue(max_depth=2, tick_seconds=0.5)
    queue.offer(_pending(0))
    queue.offer(_pending(1))
    with pytest.raises(BackpressureError) as err:
        queue.offer(_pending(2))
    assert err.value.retry_after_s >= 0.5
    assert queue.depth == 2


def test_intake_fifo_and_batch_cap():
    queue = IntakeQueue(max_depth=10, tick_seconds=0.1, max_batch=2)
    for i in range(5):
        queue.offer(_pending(i))
    assert [p.client_id for p in queue.drain()] == ["p0", "p1"]
    assert [p.client_id for p in queue.drain()] == ["p2", "p3"]
    assert [p.client_id for p in queue.drain()] == ["p4"]
    assert queue.drain() == []


def test_intake_requeue_front_preserves_order():
    queue = IntakeQueue(max_depth=10, tick_seconds=0.1)
    queue.offer(_pending(9))
    queue.requeue_front([_pending(0), _pending(1)])
    assert [p.client_id for p in queue.drain()] == ["p0", "p1", "p9"]


def test_pending_payload_round_trip():
    pending = _pending(3, size_gb=7.25, deadline_slots=5)
    restored = PendingTransfer.from_payload(pending.to_payload())
    assert restored.client_id == "p3"
    assert (restored.source, restored.destination) == (0, 1)
    assert restored.size_gb == 7.25
    assert restored.deadline_slots == 5
    assert restored.waiter is None


# -- broker ----------------------------------------------------------------


def make_broker(tmp_path=None, **overrides):
    kwargs = dict(datacenters=4, capacity=50.0, tick_seconds=0.0,
                  max_deadline=8, seed=3)
    if tmp_path is not None:
        kwargs.update(checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=1)
    kwargs.update(overrides)
    return TransferBroker(ServiceConfig(**kwargs))


def submit_fields(i, **kw):
    fields = {"id": f"c{i}", "source": 0, "destination": 1 + i % 3,
              "size_gb": 5.0 + i, "deadline_slots": 3}
    fields.update(kw)
    return fields


def test_broker_batches_and_decides():
    broker = make_broker()
    for i in range(4):
        outcome, _ = broker.submit(submit_fields(i))
        assert outcome == "pending"
    resolutions = broker.process_slot()
    assert len(resolutions) == 4
    for pending, record in resolutions:
        assert record["decision"] == "admitted"
        assert record["slot"] == 0
        assert record["completion_slot"] <= record["deadline_slot"]
    assert broker.next_slot == 1
    assert broker.status("c0")["state"] == "admitted"
    assert broker.status("nope")["state"] == "unknown"


def test_broker_empty_slot_advances_clock():
    broker = make_broker()
    assert broker.process_slot() == []
    assert broker.next_slot == 1
    assert broker.counts["batches"] == 0


def test_broker_duplicate_submission_is_idempotent():
    broker = make_broker()
    broker.submit(submit_fields(0))
    # A duplicate with no live waiter attaches to the queued entry
    # (the fleet router's exactly-once resume path); with a live
    # waiter it is refused below.
    outcome, entry = broker.submit(submit_fields(0))
    assert outcome == "attached"
    assert entry.client_id == "c0"

    class LiveWaiter:
        def done(self):
            return False

    entry.waiter = LiveWaiter()
    with pytest.raises(ServiceError, match="already pending"):
        broker.submit(submit_fields(0))
    entry.waiter = None
    broker.process_slot()
    outcome, record = broker.submit(submit_fields(0))
    assert outcome == "decided"
    assert record["decision"] == "admitted"


def test_broker_refuses_past_horizon():
    broker = make_broker(horizon=16)
    broker.next_slot = 14
    with pytest.raises(ServiceError, match="horizon"):
        broker.submit(submit_fields(0, deadline_slots=3))


def test_broker_refuses_while_draining():
    broker = make_broker()
    broker.draining = True
    with pytest.raises(ServiceError, match="draining"):
        broker.submit(submit_fields(0))


def test_broker_backpressure_counts(tmp_path):
    broker = make_broker(max_queue=2)
    broker.submit(submit_fields(0))
    broker.submit(submit_fields(1))
    with pytest.raises(BackpressureError):
        broker.submit(submit_fields(2))
    assert broker.counts["backpressured"] == 1
    assert broker.counts["submitted"] == 2


def test_broker_checkpoint_and_resume(tmp_path):
    broker = make_broker(tmp_path)
    for i in range(3):
        broker.submit(submit_fields(i))
    broker.process_slot()  # checkpoint_every=1 -> snapshot written
    broker.submit(submit_fields(7))  # queued but NOT yet checkpointed

    resumed = make_broker(tmp_path)
    assert resumed.resumed
    assert resumed.next_slot == 1
    assert resumed.decisions == broker.decisions
    # The checkpointed queue was empty at snapshot time: c7 is lost,
    # exactly the at-least-once contract (the client resubmits).
    assert resumed.queue.depth == 0
    assert resumed.state.charged_snapshot() == pytest.approx(
        broker.state.charged_snapshot()
    )


def test_broker_pending_queue_survives_checkpoint(tmp_path):
    broker = make_broker(tmp_path, max_batch=2)
    for i in range(5):
        broker.submit(submit_fields(i))
    broker.process_slot()  # decides c0,c1; c2..c4 still queued at snapshot

    resumed = make_broker(tmp_path, max_batch=2)
    assert resumed.queue.depth == 3
    resolutions = resumed.process_slot()
    assert [r[1]["id"] for r in resolutions] == ["c2", "c3"]


def test_broker_drain_flushes_everything(tmp_path):
    broker = make_broker(tmp_path, max_batch=2)
    for i in range(5):
        broker.submit(submit_fields(i))
    resolved = broker.drain_remaining()
    assert len(resolved) == 5
    assert broker.queue.depth == 0
    assert broker.draining
    assert broker.store.exists()


def test_crash_resume_matches_uninterrupted_run(tmp_path):
    """The acceptance-criteria invariant, at the broker level: kill the
    process between slots, restart from the checkpoint, finish the
    workload — cumulative charged volume is identical to a run that was
    never interrupted."""
    first_batch = [submit_fields(i) for i in range(4)]
    second_batch = [submit_fields(10 + i) for i in range(4)]

    # Reference: one broker sees both batches, never dies.
    reference = make_broker(tmp_path / "ref")
    for fields in first_batch:
        reference.submit(dict(fields))
    reference.process_slot()
    for fields in second_batch:
        reference.submit(dict(fields))
    reference.process_slot()

    # Interrupted: first batch, checkpoint, "kill -9" (drop the object),
    # restart, second batch.
    broker = make_broker(tmp_path / "crash")
    for fields in first_batch:
        broker.submit(dict(fields))
    broker.process_slot()
    del broker

    resumed = make_broker(tmp_path / "crash")
    assert resumed.resumed and resumed.next_slot == 1
    for fields in second_batch:
        resumed.submit(dict(fields))
    resumed.process_slot()

    assert resumed.state.charged_snapshot() == pytest.approx(
        reference.state.charged_snapshot()
    )
    assert resumed.state.current_cost_per_slot() == pytest.approx(
        reference.state.current_cost_per_slot()
    )
    ref_decisions = {k: v["decision"] for k, v in reference.decisions.items()}
    res_decisions = {k: v["decision"] for k, v in resumed.decisions.items()}
    assert res_decisions == ref_decisions


def test_broker_stats_shape(tmp_path):
    broker = make_broker(tmp_path)
    broker.submit(submit_fields(0))
    broker.process_slot()
    stats = broker.stats()
    for key in ("endpoint", "scheduler", "next_slot", "queue_depth",
                "cost_per_slot", "checkpoints", "submitted", "admitted"):
        assert key in stats
    assert stats["checkpoints"] == 1
    json.dumps(stats)  # the stats body must be wire-serializable
