"""End-to-end tests: a live daemon, the wire protocol, and kill -9.

The first group runs :class:`ServiceDaemon` in-process on a unix socket
and drives it with the load generator.  The last test is the crash
drill from the acceptance criteria: a daemon subprocess is SIGKILLed
between slots and restarted, and the resumed run must end with exactly
the cumulative charged volume (hence cost) of a never-interrupted run.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import ServiceConfig, ServiceDaemon, TransferBroker, run_loadgen
from repro.service.loadgen import _Connection
from repro.traffic.spec import TransferRequest

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def sample_requests(count, seed=11, max_deadline=6):
    """A deterministic request list (sized for the 6-DC test preset)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        src, dst = rng.choice(6, size=2, replace=False)
        out.append(
            TransferRequest(
                int(src),
                int(dst),
                float(rng.uniform(1.0, 20.0)),
                int(rng.integers(2, max_deadline + 1)),
            )
        )
    return out


def test_daemon_serves_fifty_requests_by_deadline(tmp_path):
    """~50 requests through the full stack: every submission answered,
    every admitted transfer scheduled to complete by its deadline."""
    sock = str(tmp_path / "svc.sock")
    config = ServiceConfig(
        socket_path=sock,
        datacenters=6,
        capacity=60.0,
        tick_seconds=0.05,
        max_deadline=8,
        checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_every=3,
    )

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        try:
            result = await run_loadgen(
                sample_requests(50),
                socket_path=sock,
                rate_per_min=30000.0,
                drain=True,
            )
        finally:
            await daemon.stop()
        return result, daemon

    result, daemon = asyncio.run(scenario())
    assert result.submitted == 50
    assert result.failed == 0
    assert result.deadline_misses == 0
    assert result.admitted + result.rejected == 50
    assert result.admitted > 0
    assert result.drained
    assert result.stats["checkpoints"] >= 1
    # Decision latency (tick -> response) stays under one slot tick.
    assert max(result.decisions_s) < config.tick_seconds


def test_backpressure_over_the_wire(tmp_path):
    sock = str(tmp_path / "bp.sock")
    config = ServiceConfig(
        socket_path=sock, datacenters=4, capacity=50.0,
        tick_seconds=0.0, max_queue=2, max_deadline=8,
    )

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        conn = await _Connection.open("", 0, socket_path=sock)
        try:
            responses = []
            waiters = []
            for i in range(3):
                waiters.append(conn.send({
                    "op": "submit", "id": f"bp{i}", "source": 0,
                    "destination": 1, "size_gb": 2.0, "deadline_slots": 2,
                }))
            # Only the overflow submission answers before the tick.
            rejected = await asyncio.wait_for(waiters[2], timeout=2)
            responses.append(rejected)
            tick = await asyncio.wait_for(conn.call({"op": "tick"}), timeout=2)
            first = await asyncio.wait_for(waiters[0], timeout=2)
            second = await asyncio.wait_for(waiters[1], timeout=2)
            return rejected, tick, first, second
        finally:
            await conn.close()
            await daemon.stop()

    rejected, tick, first, second = asyncio.run(scenario())
    assert rejected["ok"] is False
    assert rejected["error"] == "backpressure"
    assert rejected["retry_after_s"] > 0
    assert tick["ok"] and tick["slot"] == 0
    assert first["decision"] == "admitted"
    assert second["decision"] == "admitted"


def test_invalid_messages_get_error_responses(tmp_path):
    sock = str(tmp_path / "bad.sock")
    config = ServiceConfig(
        socket_path=sock, datacenters=4, capacity=50.0, tick_seconds=0.0,
    )

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        reader, writer = await asyncio.open_unix_connection(sock)
        try:
            out = []
            for raw in (
                b"{broken\n",
                b'{"op": "warp"}\n',
                b'{"op": "submit", "id": "x", "source": 0, '
                b'"destination": 0, "size_gb": 1, "deadline_slots": 2}\n',
            ):
                writer.write(raw)
                await writer.drain()
                out.append(json.loads(await reader.readline()))
            return out
        finally:
            writer.close()
            await daemon.stop()

    bad_json, bad_op, bad_submit = asyncio.run(scenario())
    assert bad_json["error"] == "invalid"
    assert bad_op["error"] == "invalid"
    assert bad_submit["error"] == "invalid" and bad_submit["id"] == "x"


# -- the crash drill -------------------------------------------------------

SERVE_ARGS = [
    "--datacenters", "4", "--capacity", "50", "--seed", "3",
    "--max-deadline", "8", "--tick-seconds", "0",
    "--checkpoint-every", "1",
]


def start_daemon(sock, ckpt_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--checkpoint-dir", ckpt_dir, *SERVE_ARGS],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        if os.path.exists(sock):
            return proc
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon died on startup:\n{proc.stdout.read().decode()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never bound its socket")


def batch_fields(ids, sizes):
    return [
        {"id": name, "source": i % 3, "destination": 3 - (i % 3),
         "size_gb": size, "deadline_slots": 3}
        for i, (name, size) in enumerate(zip(ids, sizes))
    ]


async def submit_and_tick(sock, batch):
    conn = await _Connection.open("", 0, socket_path=sock)
    try:
        waiters = [conn.send({"op": "submit", **fields}) for fields in batch]
        tick = await asyncio.wait_for(conn.call({"op": "tick"}), timeout=30)
        assert tick["ok"]
        responses = await asyncio.wait_for(asyncio.gather(*waiters), timeout=30)
        stats = await asyncio.wait_for(conn.call({"op": "stats"}), timeout=30)
        return responses, stats
    finally:
        await conn.close()


@pytest.mark.slow
def test_kill9_resume_matches_uninterrupted_run(tmp_path):
    """SIGKILL the daemon between slots; the restarted daemon finishes
    the workload with cumulative charged volume (and per-request
    decisions) identical to a run that never died."""
    first = batch_fields([f"a{i}" for i in range(4)], [6.0, 9.0, 4.0, 11.0])
    second = batch_fields([f"b{i}" for i in range(4)], [8.0, 3.0, 10.0, 5.0])

    # Reference: the same workload through one uninterrupted broker.
    reference = TransferBroker(ServiceConfig(
        datacenters=4, capacity=50.0, seed=3, max_deadline=8,
        tick_seconds=0.0,
    ))
    for fields in first:
        reference.submit(dict(fields))
    reference.process_slot()
    for fields in second:
        reference.submit(dict(fields))
    reference.process_slot()
    expected = {k: v["decision"] for k, v in reference.decisions.items()}

    sock = str(tmp_path / "kill.sock")
    ckpt = str(tmp_path / "ckpt")
    proc = start_daemon(sock, ckpt)
    try:
        responses1, stats1 = asyncio.run(submit_and_tick(sock, first))
        assert all(r["ok"] for r in responses1)
        assert stats1["checkpoints"] >= 1
        # kill -9 between slots: no flush, no goodbye.
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()

    os.unlink(sock)
    proc2 = start_daemon(sock, ckpt)
    try:
        responses2, stats2 = asyncio.run(submit_and_tick(sock, second))
        assert stats2["resumed"] is True
        assert stats2["next_slot"] == 2
        assert all(r["ok"] for r in responses2)
        got = {r["id"]: r["decision"] for r in responses1 + responses2}
        assert got == expected
        assert stats2["cost_per_slot"] == pytest.approx(
            round(reference.state.current_cost_per_slot(), 6)
        )
    finally:
        proc2.kill()
        proc2.wait(timeout=10)

    # The snapshot on disk carries the same charged volume too.
    from repro.core.checkpoint import load_snapshot

    snapshot = load_snapshot(
        os.path.join(ckpt, "snapshot.json"),
        ServiceConfig(datacenters=4, capacity=50.0, seed=3).topology(),
    )
    assert snapshot.state.charged_snapshot() == pytest.approx(
        reference.state.charged_snapshot()
    )


# -- connection guards (PR 7) ----------------------------------------------


def test_read_timeout_disconnects_idle_connection(tmp_path):
    """An idle connection (nothing in flight) is told off and dropped."""
    sock = str(tmp_path / "rt.sock")
    config = ServiceConfig(
        socket_path=sock, datacenters=4, capacity=50.0,
        tick_seconds=0.0, max_deadline=8, read_timeout_s=0.15,
    )

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        try:
            reader, writer = await asyncio.open_unix_connection(sock)
            line = await asyncio.wait_for(reader.readline(), timeout=2.0)
            response = json.loads(line)
            eof = await asyncio.wait_for(reader.readline(), timeout=2.0)
            writer.close()
            return response, eof
        finally:
            await daemon.stop()

    response, eof = asyncio.run(scenario())
    assert response["ok"] is False
    assert response["error"] == "timeout"
    assert eof == b""  # the server hung up after the notice


def test_read_timeout_spares_inflight_submissions(tmp_path):
    """A client waiting on a parked decision is waiting, not stalling."""
    sock = str(tmp_path / "rtw.sock")
    config = ServiceConfig(
        socket_path=sock, datacenters=4, capacity=50.0,
        tick_seconds=0.0, max_deadline=8, read_timeout_s=0.1,
    )

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        try:
            conn = await _Connection.open("", 0, socket_path=sock)
            pending = conn.send({
                "op": "submit", "id": "w-1", "source": 0, "destination": 2,
                "size_gb": 4.0, "deadline_slots": 3,
            })
            # Sit well past the read timeout before ticking the slot.
            await asyncio.sleep(0.3)
            ticker = await _Connection.open("", 0, socket_path=sock)
            await ticker.call({"op": "tick"})
            response = await asyncio.wait_for(pending, timeout=2.0)
            await ticker.close()
            await conn.close()
            return response
        finally:
            await daemon.stop()

    response = asyncio.run(scenario())
    assert response["ok"] is True
    assert response["decision"] in ("admitted", "rejected")


def test_oversized_line_is_refused_and_disconnected(tmp_path):
    """A newline-less flood is bounded by the stream limit, not memory."""
    from repro.service import protocol as proto

    sock = str(tmp_path / "big.sock")
    config = ServiceConfig(
        socket_path=sock, datacenters=4, capacity=50.0,
        tick_seconds=0.0, max_deadline=8,
    )

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        try:
            reader, writer = await asyncio.open_unix_connection(sock)
            writer.write(b"x" * (proto.MAX_LINE_BYTES + 1024))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=2.0)
            response = json.loads(line)
            eof = await asyncio.wait_for(reader.readline(), timeout=2.0)
            writer.close()
            return response, eof
        finally:
            await daemon.stop()

    response, eof = asyncio.run(scenario())
    assert response["ok"] is False
    assert response["error"] == "invalid"
    assert "exceeds" in response["message"]
    assert eof == b""
