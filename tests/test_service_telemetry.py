"""The live telemetry plane, end to end: request traces through the
broker, the ``metrics`` protocol op in both formats, wall-clock/slot
alignment, the closed-loop load generator, and the watch dashboard."""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.service import (
    ServiceConfig,
    ServiceDaemon,
    TransferBroker,
    render_dashboard,
    render_fleet_dashboard,
    run_loadgen,
    run_watch,
)
from repro.service.loadgen import _Connection
from repro.traffic.spec import TransferRequest

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def make_broker(tmp_path=None, **overrides):
    kwargs = dict(datacenters=4, capacity=50.0, tick_seconds=0.0,
                  max_deadline=8, seed=3)
    if tmp_path is not None:
        kwargs.update(checkpoint_dir=str(tmp_path / "ckpt"),
                      checkpoint_every=1)
    kwargs.update(overrides)
    return TransferBroker(ServiceConfig(**kwargs))


def submit_fields(i, **kw):
    fields = {"id": f"c{i}", "source": 0, "destination": 1 + i % 3,
              "size_gb": 5.0 + i, "deadline_slots": 3}
    fields.update(kw)
    return fields


# -- config plumbing -------------------------------------------------------


def test_config_telemetry_validation():
    with pytest.raises(Exception, match="slot_wall_seconds"):
        ServiceConfig(slot_wall_seconds=0.0)
    with pytest.raises(Exception, match="slo_window"):
        ServiceConfig(slo_window=0)
    with pytest.raises(Exception, match="slo_admission_ratio"):
        ServiceConfig(slo_admission_ratio=1.5)
    with pytest.raises(Exception, match="slo_depth_fraction"):
        ServiceConfig(slo_depth_fraction=0.0)


def test_config_decision_budget_resolution():
    assert ServiceConfig(tick_seconds=0.5).decision_budget_s() == 0.5
    assert ServiceConfig(tick_seconds=0.0).decision_budget_s() == 0.25
    assert ServiceConfig(
        tick_seconds=0.5, slo_decision_budget_s=2.0
    ).decision_budget_s() == 2.0


def test_config_slo_thresholds_follow_queue_bound():
    thresholds = ServiceConfig(
        max_queue=100, slo_depth_fraction=0.5
    ).slo_thresholds()
    assert thresholds.max_intake_depth == 50
    assert thresholds.decision_budget_s == 0.25


def test_config_wall_time_mapping():
    config = ServiceConfig(slot_wall_seconds=300.0)
    assert config.wall_time(0, 1000.0) == 1000.0
    assert config.wall_time(7, 1000.0) == 1000.0 + 7 * 300.0


# -- request tracing through the broker ------------------------------------


def test_trace_id_links_intake_lane_solve_and_charge(tmp_path):
    """The acceptance-criteria chain: one submission's trace id appears
    on the intake event, the lane-choice event, a scheduling span
    (fast-path or LP solve), and the ledger-charge event — all in one
    JSONL-shaped event stream — with a charged-cost delta attribute."""
    path = tmp_path / "events.jsonl"
    broker = make_broker()
    registry = obs.get_registry()
    sink = obs.JsonlSink(path)
    registry.add_sink(sink)
    try:
        for i in range(3):
            broker.submit(submit_fields(i))
        resolutions = broker.process_slot()
    finally:
        registry.remove_sink(sink)
        sink.close()

    record = resolutions[0][1]
    trace_id = record["trace"]
    assert trace_id == "t-00000001"
    assert record["cost_delta"] > 0.0

    events = obs.load_events(path)
    intake = [e for e in events if e["name"] == "service.intake"
              and e.get("attrs", {}).get("trace") == trace_id]
    assert len(intake) == 1
    assert intake[0]["attrs"]["id"] == record["id"]

    lane = [e for e in events if e["name"] == "service.lane"
            and e.get("attrs", {}).get("trace") == trace_id]
    assert len(lane) == 1
    assert lane[0]["attrs"]["lane"] in ("fast", "lp")

    # The scheduling leg: whichever lane handled the slot, its span
    # carries the batch's trace ids via the ambient trace context.
    lane_spans = [
        e for e in events
        if e["type"] == "span"
        and e["name"] in ("hybrid.fastpath", "hybrid.escalate",
                          "scheduler.solve")
        and trace_id in e.get("attrs", {}).get("trace_ids", [])
    ]
    assert lane_spans, "no scheduling span carries the trace id"

    charges = [e for e in events if e["name"] == "ledger.charged_gb"
               and trace_id in e.get("attrs", {}).get("trace_ids", [])]
    assert charges, "no ledger-charge event carries the trace id"

    deltas = [e for e in events if e["name"] == "service.charge_delta"
              and e.get("attrs", {}).get("trace") == trace_id]
    assert len(deltas) == 1
    assert deltas[0]["value"] == pytest.approx(record["cost_delta"])
    assert deltas[0]["attrs"]["headroom_gb"] == record["headroom_gb"]


def test_trace_ids_stay_unique_across_resume(tmp_path):
    broker = make_broker(tmp_path)
    broker.submit(submit_fields(0))
    broker.process_slot()

    resumed = make_broker(tmp_path)
    resumed.submit(submit_fields(1))
    (_, record), = resumed.process_slot()
    # The submitted tally is checkpointed, so the resumed broker keeps
    # counting where the dead process stopped.
    assert record["trace"] == "t-00000002"


def test_decision_records_carry_telemetry_fields():
    broker = make_broker(wall_epoch=1000.0)
    for i in range(2):
        broker.submit(submit_fields(i))
    resolutions = broker.process_slot()
    for _, record in resolutions:
        assert record["trace"].startswith("t-")
        assert record["wall_ts"] == 1000.0  # slot 0
        assert record["headroom_gb"] >= 0.0
        assert "cost_delta" in record
    # The batch is priced jointly: one delta for the whole slot.
    assert len({r["cost_delta"] for _, r in resolutions}) == 1


def test_broker_slo_monitor_tracks_slots():
    broker = make_broker()
    for i in range(3):
        broker.submit(submit_fields(i))
    broker.process_slot()
    states = broker.slo.evaluate()
    assert states["admission_ratio"]["window"] == 1
    assert states["admission_ratio"]["value"] == 1.0
    assert states["decision_p99_s"]["value"] > 0.0
    # The manual clock resolves the decision budget to the default tick.
    assert states["decision_p99_s"]["budget"] == 0.25


# -- wall-clock / virtual-slot alignment -----------------------------------


def test_wall_epoch_survives_checkpoint_resume(tmp_path):
    broker = make_broker(tmp_path, wall_epoch=5000.0)
    broker.submit(submit_fields(0))
    broker.process_slot()

    resumed = make_broker(tmp_path)  # wall_epoch unset: restored from meta
    assert resumed.wall_epoch == 5000.0
    assert resumed.wall_time(2) == 5000.0 + 2 * 300.0


def test_stamped_usage_aligns_samples_to_wall_clock(tmp_path):
    broker = make_broker(wall_epoch=1000.0)
    for i in range(3):
        broker.submit(submit_fields(i))
    broker.process_slot()
    usage = broker.stamped_usage()
    assert usage, "admitted traffic must appear in the ledger"
    for entry in usage:
        assert entry["charged_gb"] >= 0.0
        assert entry["total_gb"] > 0.0
        for sample in entry["samples"]:
            # Every per-slot sample is stamped onto the 5-minute grid.
            assert sample["wall_ts"] == 1000.0 + sample["slot"] * 300.0
            assert sample["gb"] > 0.0
    # Busiest link first, and `top` truncates.
    totals = [entry["total_gb"] for entry in usage]
    assert totals == sorted(totals, reverse=True)
    assert len(broker.stamped_usage(top=1)) == 1


def test_broker_telemetry_body_shape():
    broker = make_broker(wall_epoch=1000.0)
    broker.submit(submit_fields(0))
    broker.process_slot()
    metrics = obs.MetricsSnapshot()
    body = broker.telemetry(metrics)
    assert body["stats"]["admitted"] == 1
    assert set(body["slo"]) == {
        "admission_ratio", "decision_p99_s", "checkpoint_p99_s",
        "intake_depth", "degraded_slots",
    }
    assert body["wall"]["epoch"] == 1000.0
    assert body["wall"]["slot_wall_seconds"] == 300.0
    assert body["wall"]["next_slot_wall_ts"] == 1000.0 + 300.0
    assert body["snapshot"]["events"] == 0  # nothing folded yet
    assert broker.telemetry(None)["snapshot"] == {}


# -- the metrics op over the wire ------------------------------------------


async def _tick(conn):
    response = await conn.call({"op": "tick"})
    assert response["ok"]


def _daemon_config(tmp_path, **overrides):
    kwargs = dict(
        socket_path=str(tmp_path / "svc.sock"),
        datacenters=4, capacity=50.0, tick_seconds=0.0,
        max_deadline=8, seed=3, wall_epoch=1000.0,
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


def test_metrics_op_both_formats(tmp_path):
    config = _daemon_config(tmp_path)

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        conn = await _Connection.open("", 0, config.socket_path)
        try:
            futures = [
                conn.send({"op": "submit", **submit_fields(i)})
                for i in range(3)
            ]
            await _tick(conn)
            await asyncio.gather(*futures)
            body = await conn.call({"op": "metrics"})
            prom = await conn.call({"op": "metrics", "format": "prometheus"})
            bad = await conn.call({"op": "metrics", "format": "xml"})
        finally:
            await conn.close()
            await daemon.stop()
        return body, prom, bad

    body, prom, bad = asyncio.run(scenario())

    assert body["ok"] and body["format"] == "json"
    assert body["version"] == 3
    assert body["stats"]["admitted"] == 3
    snapshot = body["snapshot"]
    assert snapshot["counters"]["service.admitted"]["total"] == 3
    # Decision-latency histograms with percentile estimates, per lane
    # admission counts, and SLO gauge states — the acceptance shape.
    slot_hist = snapshot["histograms"]["service.slot"]
    assert slot_hist["count"] == 1
    assert 0.0 < slot_hist["p50"] <= slot_hist["p99"]
    assert "service.decision_s" in snapshot["histograms"]
    assert snapshot["counters"]["service.lane"]["count"] == 3
    assert body["slo"]["admission_ratio"]["ok"] is True
    assert snapshot["gauges"]["slo.ok"]["last"] == 1.0
    assert body["wall"]["next_slot_wall_ts"] == 1000.0 + 300.0

    assert prom["ok"] and prom["format"] == "prometheus"
    assert obs.validate_prometheus(prom["text"]) > 0
    assert "postcard_service_admitted_total" in prom["text"]
    assert "postcard_slo_admission_ratio" in prom["text"]

    assert not bad["ok"]
    assert bad["error"] == "invalid"


def test_telemetry_disabled_still_answers_metrics(tmp_path):
    config = _daemon_config(tmp_path, telemetry=False)

    async def scenario():
        daemon = ServiceDaemon(config)
        assert daemon.metrics is None
        await daemon.start()
        conn = await _Connection.open("", 0, config.socket_path)
        try:
            return await conn.call({"op": "metrics"})
        finally:
            await conn.close()
            await daemon.stop()

    body = asyncio.run(scenario())
    assert body["ok"]
    assert body["snapshot"] == {}
    assert "admission_ratio" in body["slo"]


def test_active_connections_gauge_decrements_on_disconnect(tmp_path):
    """The satellite fix: ``service.connections`` only ever counted up;
    the active gauge must fall back to zero when clients disconnect."""
    config = _daemon_config(tmp_path)

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        try:
            first = await _Connection.open("", 0, config.socket_path)
            second = await _Connection.open("", 0, config.socket_path)
            await first.call({"op": "ping"})
            await second.call({"op": "ping"})
            await first.close()
            await second.close()
            # Let the handler tasks run their finally blocks.
            for _ in range(10):
                await asyncio.sleep(0)
                if daemon.metrics.gauge_last(
                    "service.connections.active"
                ) == 0.0:
                    break
            return daemon.metrics.snapshot()
        finally:
            await daemon.stop()

    snapshot = asyncio.run(scenario())
    active = snapshot["gauges"]["service.connections.active"]
    assert active["max"] == 2.0
    assert active["last"] == 0.0
    assert snapshot["counters"]["service.connections"]["total"] == 2


# -- closed-loop load generation -------------------------------------------

def _loadgen_requests(count, seed=11):
    import numpy as np

    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        src, dst = rng.choice(4, size=2, replace=False)
        out.append(TransferRequest(
            int(src), int(dst),
            float(rng.uniform(1.0, 8.0)), int(rng.integers(2, 7)),
        ))
    return out


def test_closed_loop_loadgen_reports_capacity(tmp_path):
    config = _daemon_config(tmp_path, tick_seconds=0.02)

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        try:
            return await run_loadgen(
                _loadgen_requests(12),
                socket_path=config.socket_path,
                outstanding=4,
                drain=True,
            )
        finally:
            await daemon.stop()

    result = asyncio.run(scenario())
    assert result.mode == "closed"
    assert result.outstanding == 4
    assert result.submitted == 12
    assert result.failed == 0
    assert result.capacity_per_s > 0.0
    summary = result.summary()
    assert summary["mode"] == "closed"
    assert summary["capacity_per_s"] == pytest.approx(
        result.capacity_per_s, rel=1e-2
    )
    assert result.drained


def test_open_loop_summary_mode_unchanged(tmp_path):
    config = _daemon_config(tmp_path, tick_seconds=0.02)

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        try:
            return await run_loadgen(
                _loadgen_requests(6),
                socket_path=config.socket_path,
                rate_per_min=30000.0,
                drain=True,
            )
        finally:
            await daemon.stop()

    result = asyncio.run(scenario())
    assert result.mode == "open"
    assert result.outstanding == 0
    assert result.submitted == 6


# -- the watch dashboard ---------------------------------------------------


def test_render_dashboard_from_telemetry_body():
    broker = make_broker(wall_epoch=1000.0)
    metrics = obs.MetricsSnapshot()
    registry = obs.get_registry()
    registry.add_sink(metrics)
    try:
        for i in range(3):
            broker.submit(submit_fields(i))
        broker.process_slot()
    finally:
        registry.remove_sink(metrics)
    frame = render_dashboard(broker.telemetry(metrics))
    assert "postcard broker" in frame
    assert "SLO objectives" in frame
    assert "admission_ratio" in frame
    assert "service.slot" in frame
    assert "service.admitted" in frame
    assert "ok" in frame and "BREACH" not in frame


def test_render_dashboard_handles_empty_body():
    frame = render_dashboard({})
    assert "postcard broker" in frame


def test_run_watch_polls_a_live_daemon(tmp_path):
    config = _daemon_config(tmp_path)
    frames = []

    async def scenario():
        daemon = ServiceDaemon(config)
        await daemon.start()
        conn = await _Connection.open("", 0, config.socket_path)
        try:
            futures = [
                conn.send({"op": "submit", **submit_fields(i)})
                for i in range(2)
            ]
            await _tick(conn)
            await asyncio.gather(*futures)
            return await run_watch(
                socket_path=config.socket_path,
                interval_s=0.01,
                iterations=2,
                clear=False,
                write=frames.append,
            )
        finally:
            await conn.close()
            await daemon.stop()

    rendered = asyncio.run(scenario())
    assert rendered == 2
    assert len(frames) == 2
    assert "SLO objectives" in frames[0]
    assert "\x1b" not in frames[0]  # clear=False stays pipe-safe


def test_render_fleet_dashboard_rows_and_down_shards():
    live = {
        "stats": {"next_slot": 7, "queue_depth": 2, "max_queue": 64,
                  "submitted": 12, "admitted": 10, "rejected": 2,
                  "cost_per_slot": 1.25},
        "snapshot": {"histograms": {"service.decision_s": {
            "count": 12, "p99": 0.004}}},
        "slo": {"admission_ratio": {"ok": False, "value": 0.83,
                                    "budget": 0.9}},
    }
    frame = render_fleet_dashboard({"east": live, "west": {"down": "boom"}})
    assert "postcard fleet — 2 shard(s)" in frame
    lines = frame.splitlines()
    east_row = next(l for l in lines if l.startswith("east"))
    assert "12" in east_row and "4.00ms" in east_row
    west_row = next(l for l in lines if l.startswith("west"))
    assert "DOWN" in west_row
    assert "SLO breaches:" in frame
    assert "east: admission_ratio" in frame


def test_run_watch_fleet_mode_polls_two_daemons(tmp_path):
    east = _daemon_config(tmp_path, socket_path=str(tmp_path / "east.sock"))
    west = _daemon_config(tmp_path, socket_path=str(tmp_path / "west.sock"))
    frames = []

    async def scenario():
        daemons = [ServiceDaemon(east), ServiceDaemon(west)]
        for daemon in daemons:
            await daemon.start()
        conn = await _Connection.open("", 0, east.socket_path)
        try:
            futures = [
                conn.send({"op": "submit", **submit_fields(i)})
                for i in range(2)
            ]
            await _tick(conn)
            await asyncio.gather(*futures)
            return await run_watch(
                endpoints={
                    "east": f"unix:{east.socket_path}",
                    "west": f"unix:{west.socket_path}",
                },
                interval_s=0.01,
                iterations=2,
                clear=False,
                write=frames.append,
            )
        finally:
            await conn.close()
            for daemon in daemons:
                await daemon.stop()

    rendered = asyncio.run(scenario())
    assert rendered == 2
    assert len(frames) == 2
    lines = frames[0].splitlines()
    assert any(l.startswith("east") for l in lines)
    assert any(l.startswith("west") for l in lines)
    # The east shard took the traffic; its row carries the counts.
    east_row = next(l for l in lines if l.startswith("east"))
    assert " 2" in east_row
    assert "\x1b" not in frames[0]


def test_run_watch_fleet_mode_marks_dead_shard_down(tmp_path):
    east = _daemon_config(tmp_path, socket_path=str(tmp_path / "east.sock"))
    frames = []

    async def scenario():
        daemon = ServiceDaemon(east)
        await daemon.start()
        try:
            return await run_watch(
                endpoints={
                    "east": f"unix:{east.socket_path}",
                    "ghost": f"unix:{tmp_path / 'ghost.sock'}",
                },
                interval_s=0.01,
                iterations=1,
                clear=False,
                write=frames.append,
            )
        finally:
            await daemon.stop()

    rendered = asyncio.run(scenario())
    assert rendered == 1
    ghost_row = next(
        l for l in frames[0].splitlines() if l.startswith("ghost")
    )
    assert "DOWN" in ghost_row
