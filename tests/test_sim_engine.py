"""Unit tests for the simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.baselines import DirectScheduler
from repro.core import PostcardScheduler
from repro.flowbased import FlowBasedScheduler
from repro.net.generators import complete_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TraceWorkload, TransferRequest


@pytest.fixture
def topo():
    return complete_topology(4, capacity=40.0, seed=3)


def test_num_slots_validated(topo):
    scheduler = PostcardScheduler(topo, horizon=10)
    workload = TraceWorkload([])
    with pytest.raises(SimulationError):
        Simulation(scheduler, workload, num_slots=0)


def test_trace_run_collects_metrics(topo):
    requests = [
        TransferRequest(0, 1, 10.0, 2, release_slot=0),
        TransferRequest(1, 2, 20.0, 2, release_slot=1),
    ]
    scheduler = PostcardScheduler(topo, horizon=10)
    result = Simulation(scheduler, TraceWorkload(requests), num_slots=4).run()
    assert result.total_requests == 2
    assert result.total_rejected == 0
    assert result.total_requested_gb == pytest.approx(30.0)
    assert result.final_cost_per_slot > 0
    assert len(result.slots) == 4
    assert result.slots[2].num_requests == 0
    assert result.acceptance_rate == 1.0
    assert result.max_lateness() == 0
    assert result.solve_seconds_total > 0


def test_cost_trajectory_non_decreasing(topo):
    workload = PaperWorkload(topo, max_deadline=3, max_files=4, seed=0)
    scheduler = PostcardScheduler(topo, horizon=20, on_infeasible="drop")
    result = Simulation(scheduler, workload, num_slots=6).run()
    trajectory = result.cost_trajectory()
    assert all(b >= a - 1e-9 for a, b in zip(trajectory, trajectory[1:]))


def test_relay_overhead_at_least_one_for_flow(topo):
    workload = PaperWorkload(topo, max_deadline=3, max_files=4, seed=0)
    scheduler = FlowBasedScheduler(topo, horizon=20, on_infeasible="drop")
    result = Simulation(scheduler, workload, num_slots=5).run()
    if result.total_rejected == 0:
        assert result.relay_overhead >= 1.0 - 1e-9


def test_direct_overhead_exactly_one(topo):
    workload = PaperWorkload(topo, max_deadline=3, max_files=4, seed=0)
    scheduler = DirectScheduler(topo, horizon=20, on_infeasible="drop")
    result = Simulation(scheduler, workload, num_slots=5).run()
    accepted_gb = result.total_requested_gb - sum(
        r.size_gb for r in scheduler.state.rejected
    )
    assert result.total_transit_gb == pytest.approx(accepted_gb, rel=1e-6)


def test_audit_catches_overcapacity(topo):
    """A malicious scheduler writing over-capacity traffic into its
    ledger is caught by the engine's audit."""

    class Cheater(DirectScheduler):
        name = "cheater"

        def on_slot(self, slot, requests):
            schedule = super().on_slot(slot, requests)
            # Sneak extra traffic into the ledger behind commit's back.
            self.state.ledger.record(0, 1, slot, 10 * self.state.topology.link(0, 1).capacity)
            return schedule

    scheduler = Cheater(topo, horizon=10, on_infeasible="drop")
    workload = TraceWorkload([TransferRequest(0, 1, 1.0, 1, release_slot=0)])
    with pytest.raises(SimulationError, match="over capacity"):
        Simulation(scheduler, workload, num_slots=1).run()


def test_audit_catches_unaccounted_files(topo):
    class Forgetful(DirectScheduler):
        name = "forgetful"

        def on_slot(self, slot, requests):
            return super().on_slot(slot, requests[:-1]) if requests else super().on_slot(slot, requests)

    scheduler = Forgetful(topo, horizon=10)
    workload = TraceWorkload(
        [
            TransferRequest(0, 1, 1.0, 1, release_slot=0),
            TransferRequest(1, 2, 1.0, 1, release_slot=0),
        ]
    )
    with pytest.raises(SimulationError, match="neither completed nor rejected"):
        Simulation(scheduler, workload, num_slots=1).run()


def test_summary_text(topo):
    workload = TraceWorkload([TransferRequest(0, 1, 4.0, 2, release_slot=0)])
    scheduler = PostcardScheduler(topo, horizon=10)
    result = Simulation(scheduler, workload, num_slots=2).run()
    text = result.summary()
    assert "postcard" in text and "cost/slot" in text
