"""Unit tests for soft-deadline (priced lateness) scheduling."""

import pytest

from repro.errors import InfeasibleError, SchedulingError
from repro.core import build_postcard_model, solve_soft_deadline
from repro.core.state import NetworkState
from repro.net.generators import fig3_topology, line_topology
from repro.traffic import TransferRequest


def test_validation(line3):
    state = NetworkState(line3, horizon=10)
    with pytest.raises(SchedulingError):
        solve_soft_deadline(state, [])
    request = TransferRequest(0, 1, 1.0, 2, release_slot=0)
    with pytest.raises(SchedulingError):
        solve_soft_deadline(state, [request], extension=-1)
    with pytest.raises(SchedulingError):
        solve_soft_deadline(state, [request], lateness_penalty=-1.0)


def test_zero_extension_matches_hard_lp(fig3, fig3_files):
    state = NetworkState(fig3, horizon=100)
    result = solve_soft_deadline(state, fig3_files, extension=0)
    assert result.solution.objective == pytest.approx(98.0 / 3.0)
    assert result.total_lateness == 0.0
    result.schedule.validate(fig3_files)


def test_feasible_instance_stays_on_time(line3):
    state = NetworkState(line3, horizon=20)
    request = TransferRequest(0, 1, 8.0, 4, release_slot=0)
    result = solve_soft_deadline(state, [request], extension=3, lateness_penalty=50.0)
    assert result.lateness[request.request_id] == pytest.approx(0.0)
    result.schedule.validate([request])


def test_overload_goes_late_instead_of_infeasible(line3):
    """20 GB through a 10/slot link with a 1-slot deadline: hard
    deadlines are infeasible, the soft model delivers one slot late."""
    state = NetworkState(line3, horizon=20)
    request = TransferRequest(0, 1, 20.0, 1, release_slot=0)
    with pytest.raises(InfeasibleError):
        build_postcard_model(state, [request]).solve()

    result = solve_soft_deadline(state, [request], extension=2, lateness_penalty=1.0)
    assert result.schedule.delivered_volume(request) == pytest.approx(20.0)
    assert result.lateness[request.request_id] > 0
    result.schedule.validate([request], deadline_slack=2)
    with pytest.raises(SchedulingError):
        result.schedule.validate([request])  # strict audit still catches it


def test_penalty_price_steers_lateness(line3):
    """A cheap penalty tolerates lateness to flatten peaks; a steep
    one forces on-time delivery at higher WAN cost."""
    def run(penalty):
        state = NetworkState(line3, horizon=20)
        request = TransferRequest(0, 1, 12.0, 2, release_slot=0)
        result = solve_soft_deadline(
            state, [request], extension=4, lateness_penalty=penalty
        )
        return result.lateness[request.request_id]

    # 12 GB in 2 slots = peak 6; spreading over 6 slots = peak 2, but
    # 4 slots of it are late.
    assert run(0.01) > run(100.0) - 1e-9
    assert run(100.0) == pytest.approx(0.0)


def test_soft_with_zero_extension_equals_hard_on_random_instances():
    from hypothesis import assume, given, settings, strategies as st
    from repro.net.generators import complete_topology

    @st.composite
    def instances(draw):
        num_dcs = draw(st.integers(3, 5))
        seed = draw(st.integers(0, 20))
        count = draw(st.integers(1, 3))
        requests = []
        for _ in range(count):
            src = draw(st.integers(0, num_dcs - 1))
            dst = draw(st.integers(0, num_dcs - 1))
            if dst == src:
                dst = (src + 1) % num_dcs
            size = draw(st.integers(2, 25))
            deadline = draw(st.integers(2, 4))
            requests.append(
                TransferRequest(src, dst, float(size), deadline, release_slot=0)
            )
        return num_dcs, seed, requests

    @settings(max_examples=15, deadline=None)
    @given(instances())
    def check(instance):
        num_dcs, seed, requests = instance
        topo = complete_topology(num_dcs, capacity=25.0, seed=seed)
        hard_state = NetworkState(topo, horizon=20)
        try:
            _, hard = build_postcard_model(hard_state, requests).solve()
        except InfeasibleError:
            assume(False)
            return
        soft_state = NetworkState(topo, horizon=20)
        result = solve_soft_deadline(soft_state, requests, extension=0)
        assert result.solution.objective == pytest.approx(
            hard.objective, rel=1e-6, abs=1e-6
        )
        assert result.total_lateness == 0.0

    check()


def test_lateness_accounting_matches_schedule(line3):
    state = NetworkState(line3, horizon=20)
    request = TransferRequest(0, 1, 20.0, 1, release_slot=0)
    result = solve_soft_deadline(state, [request], extension=2, lateness_penalty=0.5)
    # Recompute lateness from the schedule itself.
    expected = 0.0
    for e in result.schedule.transit_entries():
        if e.dst == request.destination:
            late = max(0, e.slot + 1 - (request.release_slot + request.deadline_slots))
            expected += late * e.volume
    assert result.lateness[request.request_id] == pytest.approx(expected)
