"""Unit tests for transfer-request specifications."""

import pytest

from repro.errors import WorkloadError
from repro.traffic import TransferRequest, expand_multicast
from repro.traffic.spec import split_oversized


def test_basic_fields():
    req = TransferRequest(1, 2, 50.0, 4, release_slot=3)
    assert req.last_slot == 6
    assert req.desired_rate == pytest.approx(12.5)


def test_request_ids_unique():
    a = TransferRequest(1, 2, 1.0, 1)
    b = TransferRequest(1, 2, 1.0, 1)
    assert a.request_id != b.request_id


def test_validation():
    with pytest.raises(WorkloadError):
        TransferRequest(1, 1, 1.0, 1)
    with pytest.raises(WorkloadError):
        TransferRequest(1, 2, 0.0, 1)
    with pytest.raises(WorkloadError):
        TransferRequest(1, 2, 1.0, 0)
    with pytest.raises(WorkloadError):
        TransferRequest(1, 2, 1.0, 1, release_slot=-1)


def test_with_release():
    req = TransferRequest(1, 2, 50.0, 4, release_slot=0)
    moved = req.with_release(7)
    assert moved.release_slot == 7
    assert moved.size_gb == req.size_gb
    assert moved.request_id != req.request_id  # a new logical file


def test_str_mentions_endpoints():
    text = str(TransferRequest(1, 2, 50.0, 4))
    assert "1->2" in text and "50" in text


def test_expand_multicast():
    reqs = expand_multicast(0, [1, 2, 3], 10.0, 2, release_slot=5)
    assert len(reqs) == 3
    assert {r.destination for r in reqs} == {1, 2, 3}
    assert all(r.source == 0 for r in reqs)
    assert all(r.size_gb == 10.0 and r.deadline_slots == 2 for r in reqs)
    assert all(r.release_slot == 5 for r in reqs)


def test_expand_multicast_validation():
    with pytest.raises(WorkloadError):
        expand_multicast(0, [], 10.0, 2)
    with pytest.raises(WorkloadError):
        expand_multicast(0, [1, 1], 10.0, 2)


def test_split_oversized_no_split_needed():
    req = TransferRequest(0, 1, 100.0, 3)
    assert split_oversized(req, 360.0) == [req]


def test_split_oversized_splits_evenly():
    req = TransferRequest(0, 1, 100.0, 3, release_slot=2)
    pieces = split_oversized(req, 30.0)
    assert len(pieces) == 4
    assert sum(p.size_gb for p in pieces) == pytest.approx(100.0)
    assert all(p.deadline_slots == 3 and p.release_slot == 2 for p in pieces)
    assert max(p.size_gb for p in pieces) <= 30.0


def test_split_oversized_validation():
    req = TransferRequest(0, 1, 100.0, 3)
    with pytest.raises(WorkloadError):
        split_oversized(req, 0.0)
