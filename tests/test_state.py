"""Unit tests for the online network state."""

import pytest

from repro.errors import SchedulingError
from repro.charging import PercentileCharging
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.traffic import TransferRequest


@pytest.fixture
def state(line3):
    return NetworkState(line3, horizon=10)


def _delivering_schedule(request):
    """A one-hop direct schedule delivering the whole file in slot 0."""
    return TransferSchedule(
        [ScheduleEntry(request.request_id, request.source, request.destination, 0, request.size_gb)]
    )


def test_initial_state(state):
    assert state.charged_volume(0, 1) == 0.0
    assert state.current_cost_per_slot() == 0.0
    assert state.residual_capacity(0, 1, 5) == 10.0
    assert state.paid_headroom(0, 1, 5) == 0.0


def test_commit_updates_everything(state):
    request = TransferRequest(0, 1, 4.0, 1, release_slot=0)
    state.commit(_delivering_schedule(request), [request])
    assert state.charged_volume(0, 1) == 4.0
    assert state.committed_volume(0, 1, 0) == 4.0
    assert state.residual_capacity(0, 1, 0) == 6.0
    # Paid headroom at a later, idle slot equals the paid peak.
    assert state.paid_headroom(0, 1, 3) == 4.0
    assert state.completions[request.request_id] == 0
    assert state.current_cost_per_slot() == pytest.approx(4.0)


def test_paid_headroom_capped_by_capacity(state):
    r1 = TransferRequest(0, 1, 9.0, 1, release_slot=0)
    state.commit(_delivering_schedule(r1), [r1])
    # At slot 0 the link already carries 9: headroom = min(0, residual).
    assert state.paid_headroom(0, 1, 0) == 0.0
    assert state.paid_headroom(0, 1, 1) == 9.0


def test_charged_volume_never_decreases(state):
    r1 = TransferRequest(0, 1, 8.0, 1, release_slot=0)
    state.commit(_delivering_schedule(r1), [r1])
    r2 = TransferRequest(0, 1, 2.0, 1, release_slot=1)
    schedule2 = TransferSchedule([ScheduleEntry(r2.request_id, 0, 1, 1, 2.0)])
    state.commit(schedule2, [r2])
    assert state.charged_volume(0, 1) == 8.0  # smaller later peak is free


def test_commit_validates_capacity(state):
    request = TransferRequest(0, 1, 40.0, 1, release_slot=0)
    with pytest.raises(SchedulingError):
        state.commit(_delivering_schedule(request), [request])
    # Failed commit left no traces.
    assert state.charged_volume(0, 1) == 0.0
    assert state.committed_volume(0, 1, 0) == 0.0


def test_commit_requires_delivery(state):
    request = TransferRequest(0, 2, 4.0, 2, release_slot=0)
    partial = TransferSchedule(
        [ScheduleEntry(request.request_id, 0, 1, 0, 4.0),
         ScheduleEntry(request.request_id, 1, 2, 1, 4.0)]
    )
    state.commit(partial, [request])  # fine: two-hop delivery
    request2 = TransferRequest(0, 2, 4.0, 2, release_slot=2)
    with pytest.raises(SchedulingError):
        # validate=False skips the audit, but commit still refuses to
        # mark an undelivered file complete.
        state.commit(TransferSchedule(), [request2], validate=False)


def test_storage_accounting(state):
    from repro.timeexp.graph import ArcKind

    request = TransferRequest(0, 2, 4.0, 3, release_slot=0)
    rid = request.request_id
    schedule = TransferSchedule(
        [
            ScheduleEntry(rid, 0, 1, 0, 4.0),
            ScheduleEntry(rid, 1, 1, 1, 4.0, ArcKind.HOLDOVER),
            ScheduleEntry(rid, 1, 2, 2, 4.0),
        ]
    )
    state.commit(schedule, [request])
    assert state.storage_used == pytest.approx(4.0)


def test_reject_tracking(state):
    request = TransferRequest(0, 1, 4.0, 1)
    state.reject(request)
    assert state.rejected == [request]


def test_cost_per_slot_rebilling(state):
    request = TransferRequest(0, 1, 4.0, 1, release_slot=0)
    state.commit(_delivering_schedule(request), [request])
    # Under max charging: one peak of 4 for the whole period.
    assert state.cost_per_slot() == pytest.approx(4.0)
    # Under the 50th percentile, the single busy slot of 10 is ignored.
    assert state.cost_per_slot(PercentileCharging(50)) == 0.0


def test_repr(state):
    assert "cost_per_slot" in repr(state)
