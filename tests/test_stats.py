"""Unit tests for statistics helpers."""

import numpy as np
import pytest

from repro.analysis import ConfidenceInterval, mean_ci, percentile


def test_mean_ci_single_value():
    ci = mean_ci([5.0])
    assert ci.mean == 5.0
    assert ci.half_width == 0.0
    assert ci.n == 1


def test_mean_ci_known_case():
    # Symmetric data: the mean is obvious; the half width is positive.
    ci = mean_ci([9.0, 11.0, 10.0, 10.0])
    assert ci.mean == pytest.approx(10.0)
    assert ci.half_width > 0
    assert ci.low < 10.0 < ci.high


def test_mean_ci_matches_scipy_t():
    values = [3.1, 2.9, 3.4, 3.0, 2.6]
    ci = mean_ci(values, confidence=0.95)
    from scipy import stats as sps

    sem = np.std(values, ddof=1) / np.sqrt(len(values))
    expected = sps.t.ppf(0.975, df=4) * sem
    assert ci.half_width == pytest.approx(expected)


def test_mean_ci_confidence_widens():
    values = [1.0, 2.0, 3.0, 4.0]
    assert mean_ci(values, 0.99).half_width > mean_ci(values, 0.90).half_width


def test_mean_ci_empty():
    with pytest.raises(ValueError):
        mean_ci([])


def test_overlaps():
    a = ConfidenceInterval(10.0, 1.0, 0.95, 5)
    b = ConfidenceInterval(11.5, 1.0, 0.95, 5)
    c = ConfidenceInterval(20.0, 1.0, 0.95, 5)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)


def test_str_format():
    text = str(ConfidenceInterval(10.0, 1.5, 0.95, 10))
    assert "10.00" in text and "1.50" in text and "95%" in text


def test_percentile_isp_convention():
    values = list(range(1, 101))
    assert percentile(values, 95) == 95.0
    assert percentile(values, 100) == 100.0
    assert percentile([7.0], 95) == 7.0


def test_percentile_empty():
    with pytest.raises(ValueError):
        percentile([], 95)
