"""Unit tests for storage capacity, storage pricing and PWL costs in
the Postcard formulation."""

import pytest

from repro.errors import InfeasibleError, SchedulingError
from repro.charging import LinearCost, PiecewiseLinearCost
from repro.core import PostcardScheduler, build_postcard_model
from repro.core.state import NetworkState
from repro.net.generators import fig1_topology, fig3_topology, line_topology
from repro.traffic import TransferRequest


def fig3_files(release=0):
    return [
        TransferRequest(2, 4, 8.0, 4, release_slot=release),
        TransferRequest(1, 4, 10.0, 2, release_slot=release),
    ]


class TestStoragePrice:
    def test_zero_price_is_paper_optimum(self):
        scheduler = PostcardScheduler(fig3_topology(), horizon=100, storage_price=0.0)
        scheduler.on_slot(0, fig3_files())
        assert scheduler.state.current_cost_per_slot() == pytest.approx(98.0 / 3.0)

    def test_price_discourages_storage(self):
        # With prohibitively expensive buffering, the Fig. 3 optimum
        # cannot afford to park File 1 and falls back to pricier links.
        cheap = PostcardScheduler(fig3_topology(), horizon=100, storage_price=0.0)
        cheap.on_slot(0, fig3_files())
        pricey = PostcardScheduler(fig3_topology(), horizon=100, storage_price=100.0)
        pricey.on_slot(0, fig3_files())
        assert pricey.state.storage_used < cheap.state.storage_used
        # WAN bill alone can only be worse without (much) storage.
        assert (
            pricey.state.current_cost_per_slot()
            >= cheap.state.current_cost_per_slot() - 1e-9
        )

    def test_small_price_keeps_storage_but_charges_objective(self):
        state = NetworkState(fig3_topology(), horizon=100)
        files = fig3_files()
        built = build_postcard_model(state, files, storage_price=0.01)
        schedule, solution = built.solve()
        # Objective = WAN charges + metered storage; data parked at its
        # own destination is delivered and is not billed for storage.
        state.commit(schedule, built.requests)
        wan = state.current_cost_per_slot()
        destination_of = {f.request_id: f.destination for f in files}
        billable = sum(
            e.volume
            for e in schedule.holdover_entries()
            if e.src != destination_of[e.request_id]
        )
        assert solution.objective == pytest.approx(wan + 0.01 * billable, rel=1e-6)

    def test_negative_price_rejected(self):
        state = NetworkState(fig3_topology(), horizon=10)
        with pytest.raises(SchedulingError):
            build_postcard_model(state, fig3_files(), storage_price=-1.0)


class TestStorageCapacity:
    def test_unlimited_matches_default(self):
        a = PostcardScheduler(fig3_topology(), horizon=100)
        a.on_slot(0, fig3_files())
        b = PostcardScheduler(
            fig3_topology(), horizon=100, storage_capacity=float("inf")
        )
        b.on_slot(0, fig3_files())
        assert a.state.current_cost_per_slot() == pytest.approx(
            b.state.current_cost_per_slot()
        )

    def test_tight_buffer_raises_cost(self):
        # Fig. 3's optimum stores ~8/3 GB at a time; capping the buffer
        # below that forces a costlier plan.
        free = PostcardScheduler(fig3_topology(), horizon=100)
        free.on_slot(0, fig3_files())
        capped = PostcardScheduler(fig3_topology(), horizon=100, storage_capacity=1.0)
        capped.on_slot(0, fig3_files())
        assert (
            capped.state.current_cost_per_slot()
            >= free.state.current_cost_per_slot() - 1e-9
        )

    def test_capacity_constrains_committed_storage(self):
        state = NetworkState(fig3_topology(), horizon=100)
        built = build_postcard_model(state, fig3_files(), storage_capacity=1.0)
        schedule, _ = built.solve()
        for (node, slot), volume in schedule.storage_slot_volumes().items():
            if node == 4:  # both files' destination: delivered data
                continue
            assert volume <= 1.0 + 1e-6

    def test_zero_capacity_still_delivers_via_destination_exemption(self):
        # 2-hop transfer with slack: data may never park anywhere
        # except (for free) at its destination.
        topo = line_topology(3, capacity=10.0)
        state = NetworkState(topo, horizon=20)
        request = TransferRequest(0, 2, 6.0, 4, release_slot=0)
        built = build_postcard_model(state, [request], storage_capacity=0.0)
        schedule, _ = built.solve()
        assert schedule.delivered_volume(request) == pytest.approx(6.0)
        for (node, slot), volume in schedule.storage_slot_volumes().items():
            assert node == 2 or volume <= 1e-6

    def test_negative_capacity_rejected(self):
        state = NetworkState(fig3_topology(), horizon=10)
        with pytest.raises(SchedulingError):
            build_postcard_model(state, fig3_files(), storage_capacity=-1.0)


class TestCostFnFactory:
    def test_linear_factory_matches_default(self):
        state_a = NetworkState(fig3_topology(), horizon=100)
        built_a = build_postcard_model(state_a, fig3_files())
        _, sol_a = built_a.solve()

        state_b = NetworkState(fig3_topology(), horizon=100)
        built_b = build_postcard_model(
            state_b, fig3_files(), cost_fn_factory=lambda l: LinearCost(l.price)
        )
        _, sol_b = built_b.solve()
        assert sol_a.objective == pytest.approx(sol_b.objective, rel=1e-6)

    def test_convex_pwl_penalizes_peaks(self):
        # Cost doubles beyond 3 GB/slot: the optimizer flattens peaks
        # below the knee where possible.
        topo = line_topology(2, capacity=10.0)
        state = NetworkState(topo, horizon=20)
        request = TransferRequest(0, 1, 12.0, 4, release_slot=0)

        def factory(link):
            return PiecewiseLinearCost([(0, 0), (3, 3), (10, 17)])

        built = build_postcard_model(state, [request], cost_fn_factory=factory)
        schedule, solution = built.solve()
        peaks = schedule.link_slot_volumes()
        assert max(peaks.values()) == pytest.approx(3.0)
        assert solution.objective == pytest.approx(3.0)

    def test_concave_pwl_rejected(self):
        topo = line_topology(2, capacity=10.0)
        state = NetworkState(topo, horizon=20)
        request = TransferRequest(0, 1, 12.0, 4, release_slot=0)

        def factory(link):
            return PiecewiseLinearCost([(0, 0), (3, 9), (10, 10)])  # discount

        with pytest.raises(SchedulingError, match="convex"):
            build_postcard_model(state, [request], cost_fn_factory=factory).solve()

    def test_unsupported_cost_type_rejected(self):
        topo = line_topology(2, capacity=10.0)
        state = NetworkState(topo, horizon=20)
        request = TransferRequest(0, 1, 2.0, 2, release_slot=0)

        class Weird:
            def __call__(self, v):
                return v * v

        with pytest.raises(SchedulingError, match="unsupported"):
            build_postcard_model(
                state, [request], cost_fn_factory=lambda l: Weird()
            )

    def test_fixed_links_billed_through_factory(self):
        # A committed link outside the new file's window uses the
        # factory's function for its standing charge too.
        topo = line_topology(4, capacity=10.0)
        state = NetworkState(topo, horizon=40)
        r0 = TransferRequest(2, 3, 4.0, 1, release_slot=0)
        built0 = build_postcard_model(state, [r0])
        s0, _ = built0.solve()
        state.commit(s0, [r0])

        def factory(link):
            return LinearCost(link.price * 10)

        r1 = TransferRequest(0, 1, 2.0, 1, release_slot=8)
        _, solution = build_postcard_model(
            state, [r1], cost_fn_factory=factory
        ).solve()
        # Standing charge 4 on (2,3) at 10x price + new 2 at 10x price.
        assert solution.objective == pytest.approx(40.0 + 20.0)
