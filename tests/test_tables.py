"""Unit tests for table rendering."""

import pytest

from repro.analysis import format_table


def test_alignment():
    table = format_table(["name", "value"], [["a", 1], ["bbbb", 22]])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert lines[1].startswith("----")
    assert len(lines) == 4
    # Columns align: "value" starts at the same offset everywhere.
    offset = lines[0].index("value")
    assert lines[2][offset - 2 : offset] == "  "


def test_float_formatting():
    table = format_table(["x"], [[3.14159]])
    assert "3.14" in table and "3.14159" not in table


def test_row_width_validated():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_doctest_example():
    table = format_table(["a", "b"], [[1, "x"], [22, "yy"]])
    assert table == "a   b\n--  --\n1   x\n22  yy"
