"""Unit + property tests for the time-expanded graph."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.net.generators import complete_topology, line_topology
from repro.timeexp import ArcKind, TimeExpandedGraph
from repro.traffic import TransferRequest


@pytest.fixture
def graph(line3):
    return TimeExpandedGraph(line3, start_slot=2, horizon=3)


def test_construction_counts(graph, line3):
    # Per slot: 4 transit arcs (one per link) + 3 holdover arcs.
    assert graph.num_arcs == 3 * (4 + 3)
    assert graph.num_layers == 4
    assert graph.num_nodes == 3 * 4
    assert list(graph.layers()) == [2, 3, 4, 5]
    assert list(graph.slots()) == [2, 3, 4]


def test_invalid_parameters(line3):
    with pytest.raises(TopologyError):
        TimeExpandedGraph(line3, start_slot=0, horizon=0)
    with pytest.raises(TopologyError):
        TimeExpandedGraph(line3, start_slot=-1, horizon=2)


def test_arc_endpoints(graph):
    arc = next(a for a in graph.transit_arcs() if a.slot == 2 and a.src == 0)
    assert arc.tail == (0, 2)
    assert arc.head == (arc.dst, 3)


def test_holdover_arcs_free_and_uncapacitated(graph):
    for arc in graph.holdover_arcs():
        assert arc.src == arc.dst
        assert arc.price == 0.0
        assert arc.capacity == float("inf")


def test_transit_arcs_mirror_links(graph, line3):
    for arc in graph.transit_arcs():
        link = line3.link(arc.src, arc.dst)
        assert arc.capacity == link.capacity
        assert arc.price == link.price


def test_capacity_fn_override(line3):
    graph = TimeExpandedGraph(
        line3, start_slot=0, horizon=2, capacity_fn=lambda s, d, n: float(n + 1)
    )
    caps = {(a.src, a.dst, a.slot): a.capacity for a in graph.transit_arcs()}
    assert caps[(0, 1, 0)] == 1.0
    assert caps[(0, 1, 1)] == 2.0


def test_negative_capacity_fn_rejected(line3):
    with pytest.raises(TopologyError):
        TimeExpandedGraph(line3, start_slot=0, horizon=1, capacity_fn=lambda s, d, n: -1.0)


def test_no_holdover_option(line3):
    graph = TimeExpandedGraph(line3, start_slot=0, horizon=2, include_holdover=False)
    assert graph.holdover_arcs() == []


def test_storage_capacity_option(line3):
    graph = TimeExpandedGraph(line3, start_slot=0, horizon=2, storage_capacity=7.0)
    assert all(a.capacity == 7.0 for a in graph.holdover_arcs())


def test_out_in_arcs(graph):
    out = graph.out_arcs((1, 3))
    # Node 1 connects to 0 and 2 plus its own holdover.
    assert len(out) == 3
    heads = {a.head for a in out}
    assert (1, 4) in heads
    incoming = graph.in_arcs((1, 3))
    assert all(a.head == (1, 3) for a in incoming)


def test_request_window_clipping(graph):
    request = TransferRequest(0, 2, 1.0, 10, release_slot=0)
    first, last_exclusive = graph.request_window(request)
    assert (first, last_exclusive) == (2, 5)


def test_request_window_disjoint_raises(graph):
    late = TransferRequest(0, 2, 1.0, 2, release_slot=9)
    with pytest.raises(TopologyError):
        graph.request_window(late)


def test_arcs_for_request_deadline_cut(line3):
    graph = TimeExpandedGraph(line3, start_slot=0, horizon=5)
    request = TransferRequest(0, 2, 1.0, 2, release_slot=1)
    arcs = graph.arcs_for_request(request)
    assert all(1 <= a.slot <= 2 for a in arcs)


def test_source_and_sink_nodes(line3):
    graph = TimeExpandedGraph(line3, start_slot=0, horizon=5)
    request = TransferRequest(0, 2, 1.0, 2, release_slot=1)
    assert graph.source_node(request) == (0, 1)
    assert graph.sink_node(request) == (2, 3)


@settings(max_examples=25, deadline=None)
@given(
    num_dcs=st.integers(2, 5),
    start=st.integers(0, 4),
    horizon=st.integers(1, 6),
)
def test_structural_invariants(num_dcs, start, horizon):
    topo = complete_topology(num_dcs, capacity=10.0, seed=0)
    graph = TimeExpandedGraph(topo, start_slot=start, horizon=horizon)
    # Arc count: per slot, every link plus every node's holdover.
    assert graph.num_arcs == horizon * (topo.num_links + num_dcs)
    # Every arc advances exactly one layer.
    for arc in graph.arcs:
        assert arc.head[1] == arc.tail[1] + 1
        assert start <= arc.slot < start + horizon
    # Out-degree of any non-final-layer node = out-links + holdover.
    for node_id in topo.node_ids():
        for layer in range(start, start + horizon):
            out = graph.out_arcs((node_id, layer))
            assert len(out) == len(topo.out_links(node_id)) + 1
    # Final layer emits nothing.
    for node_id in topo.node_ids():
        assert graph.out_arcs((node_id, start + horizon)) == []
