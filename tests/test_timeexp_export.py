"""Unit tests for DOT export of time-expanded graphs."""

import pytest

from repro.core import PostcardScheduler
from repro.net.generators import fig1_topology
from repro.timeexp import TimeExpandedGraph, to_dot
from repro.traffic import TransferRequest


@pytest.fixture
def graph():
    return TimeExpandedGraph(fig1_topology(), start_slot=0, horizon=3)


def test_structure(graph):
    dot = to_dot(graph, title="fig1")
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    assert 'label="fig1"' in dot
    # One cluster per layer, 0..3.
    for layer in range(4):
        assert f"cluster_t{layer}" in dot
    # Every time-expanded node appears.
    for node in (1, 2, 3):
        for layer in range(4):
            assert f"n{node}_{layer}" in dot


def test_idle_arcs_togglable(graph):
    full = to_dot(graph)
    sparse = to_dot(graph, include_idle_arcs=False)
    assert len(sparse) < len(full)
    # Without a schedule and without idle arcs, no edges are drawn
    # (cluster borders still use gray, hence the edge-line filter).
    assert not [l for l in sparse.splitlines() if "->" in l]


def test_schedule_overlay(graph):
    scheduler = PostcardScheduler(fig1_topology(), horizon=100)
    request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
    schedule = scheduler.on_slot(0, [request])
    dot = to_dot(graph, schedule=schedule, include_idle_arcs=False)
    # The relay schedule lights up transit arcs in red with volumes and
    # storage arcs in blue.
    assert "color=red" in dot
    assert "color=blue" in dot
    assert "3@1" in dot  # 3 MB on the price-1 link (2 -> 1)


def test_dot_is_parseable_shape(graph):
    """Cheap syntax check: balanced braces, -> on every edge line."""
    dot = to_dot(graph)
    assert dot.count("{") == dot.count("}")
    edges = [l for l in dot.splitlines() if "->" in l]
    assert all(l.rstrip().endswith(";") for l in edges)
    assert len(edges) == graph.num_arcs
