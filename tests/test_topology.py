"""Unit tests for datacenters, links, and the Topology container."""

import pytest

from repro.errors import TopologyError
from repro.net import Datacenter, Link, Topology


def test_datacenter_default_name():
    assert Datacenter(3).name == "DC3"
    assert Datacenter(3, name="tokyo").name == "tokyo"


def test_datacenter_negative_id():
    with pytest.raises(TopologyError):
        Datacenter(-1)


def test_link_validation():
    with pytest.raises(TopologyError):
        Link(1, 1, price=1.0, capacity=5.0)  # self loop
    with pytest.raises(TopologyError):
        Link(1, 2, price=-1.0, capacity=5.0)
    with pytest.raises(TopologyError):
        Link(1, 2, price=1.0, capacity=0.0)


def test_empty_topology_rejected():
    with pytest.raises(TopologyError):
        Topology([], [])


def test_duplicate_datacenter_ids():
    with pytest.raises(TopologyError):
        Topology([Datacenter(0), Datacenter(0)], [])


def test_duplicate_links_rejected():
    dcs = [Datacenter(0), Datacenter(1)]
    links = [Link(0, 1, 1.0, 5.0), Link(0, 1, 2.0, 5.0)]
    with pytest.raises(TopologyError):
        Topology(dcs, links)


def test_link_to_unknown_datacenter():
    with pytest.raises(TopologyError):
        Topology([Datacenter(0), Datacenter(1)], [Link(0, 7, 1.0, 5.0)])


def test_queries(line3):
    assert line3.num_datacenters == 3
    assert line3.num_links == 4
    assert line3.has_link(0, 1)
    assert not line3.has_link(0, 2)
    assert line3.link(0, 1).capacity == 10.0
    assert (0, 1) in line3
    assert (0, 2) not in line3


def test_unknown_queries_raise(line3):
    with pytest.raises(TopologyError):
        line3.link(0, 2)
    with pytest.raises(TopologyError):
        line3.datacenter(99)
    with pytest.raises(TopologyError):
        line3.out_links(99)


def test_out_in_links(line3):
    assert {l.dst for l in line3.out_links(1)} == {0, 2}
    assert {l.src for l in line3.in_links(1)} == {0, 2}
    # Returned lists are copies: mutating them must not corrupt state.
    line3.out_links(1).clear()
    assert len(line3.out_links(1)) == 2


def test_is_complete(small_complete, line3):
    assert small_complete.is_complete()
    assert not line3.is_complete()


def test_strong_connectivity(line3):
    assert line3.is_strongly_connected()
    one_way = Topology(
        [Datacenter(0), Datacenter(1)], [Link(0, 1, 1.0, 5.0)]
    )
    assert not one_way.is_strongly_connected()


def test_to_networkx(fig3):
    graph = fig3.to_networkx()
    assert graph.number_of_nodes() == 4
    assert graph.number_of_edges() == 12
    assert graph[1][4]["price"] == 6.0
    assert graph[1][4]["capacity"] == 5.0


def test_cheapest_path_price(fig3):
    # 2 -> 4 direct costs 11; via 1 costs 1 + 6 = 7.
    assert fig3.cheapest_path_price(2, 4) == pytest.approx(7.0)


def test_cheapest_path_price_no_path():
    topo = Topology([Datacenter(0), Datacenter(1)], [Link(1, 0, 1.0, 5.0)])
    assert topo.cheapest_path_price(0, 1) is None


def test_iteration(line3):
    assert len(list(line3)) == 4
