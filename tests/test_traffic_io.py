"""Unit tests for trace and schedule serialization."""

import pytest

from repro.errors import WorkloadError
from repro.core.schedule import (
    SEMANTICS_FLUID,
    ScheduleEntry,
    TransferSchedule,
)
from repro.timeexp.graph import ArcKind
from repro.traffic import TransferRequest
from repro.traffic.io import (
    load_requests,
    load_schedule,
    requests_from_json,
    requests_to_json,
    save_requests,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)


def sample_requests():
    return [
        TransferRequest(0, 1, 10.0, 2, release_slot=0),
        TransferRequest(2, 3, 55.5, 4, release_slot=3),
    ]


def test_request_round_trip():
    original = sample_requests()
    restored = requests_from_json(requests_to_json(original))
    assert len(restored) == 2
    for a, b in zip(original, restored):
        assert (a.source, a.destination, a.size_gb, a.deadline_slots, a.release_slot) == (
            b.source, b.destination, b.size_gb, b.deadline_slots, b.release_slot
        )
    # Fresh ids are assigned on load.
    assert restored[0].request_id != original[0].request_id


def test_request_file_round_trip(tmp_path):
    path = tmp_path / "trace.json"
    save_requests(sample_requests(), path)
    restored = load_requests(path)
    assert len(restored) == 2


def test_request_errors():
    with pytest.raises(WorkloadError, match="JSON"):
        requests_from_json("{nope")
    with pytest.raises(WorkloadError, match="not a postcard trace"):
        requests_from_json('{"kind": "grocery-list"}')
    with pytest.raises(WorkloadError, match="version"):
        requests_from_json('{"kind": "postcard-trace", "version": 99}')
    with pytest.raises(WorkloadError, match="missing field"):
        requests_from_json(
            '{"kind": "postcard-trace", "version": 1, "requests": [{"source": 0}]}'
        )


def test_schedule_round_trip():
    schedule = TransferSchedule(
        [
            ScheduleEntry(7, 0, 1, 2, 3.5),
            ScheduleEntry(7, 1, 1, 3, 3.5, ArcKind.HOLDOVER),
        ]
    )
    restored = schedule_from_json(schedule_to_json(schedule))
    assert restored.semantics == schedule.semantics
    assert len(restored) == 2
    assert restored.total_storage_volume() == pytest.approx(3.5)


def test_fluid_schedule_round_trip(tmp_path):
    schedule = TransferSchedule(
        [ScheduleEntry(1, 0, 1, 0, 2.0)], semantics=SEMANTICS_FLUID
    )
    path = tmp_path / "schedule.json"
    save_schedule(schedule, path)
    restored = load_schedule(path)
    assert restored.semantics == SEMANTICS_FLUID


def test_schedule_errors():
    with pytest.raises(WorkloadError, match="JSON"):
        schedule_from_json("[")
    with pytest.raises(WorkloadError, match="not a postcard schedule"):
        schedule_from_json('{"kind": "postcard-trace"}')
    with pytest.raises(WorkloadError, match="semantics"):
        schedule_from_json(
            '{"kind": "postcard-schedule", "version": 1, "semantics": "quantum"}'
        )
    with pytest.raises(WorkloadError, match="missing field"):
        schedule_from_json(
            '{"kind": "postcard-schedule", "version": 1, "entries": [{"src": 0}]}'
        )


def test_trace_replays_identically(tmp_path):
    """A saved trace replayed through a scheduler matches the original."""
    from repro.core import PostcardScheduler
    from repro.net.generators import complete_topology
    from repro.sim import Simulation
    from repro.traffic import PaperWorkload, TraceWorkload

    topo = complete_topology(4, capacity=40.0, seed=1)
    workload = PaperWorkload(topo, max_deadline=3, max_files=3, seed=5)
    requests = workload.all_requests(3)
    path = tmp_path / "day.json"
    save_requests(requests, path)

    def run(reqs):
        scheduler = PostcardScheduler(topo, horizon=20, on_infeasible="drop")
        result = Simulation(scheduler, TraceWorkload(reqs), 3).run()
        return result.final_cost_per_slot

    assert run(requests) == pytest.approx(run(load_requests(path)))
