"""Unit tests for offered-load statistics."""

import pytest

from repro.errors import WorkloadError
from repro.net.generators import complete_topology
from repro.traffic import PaperWorkload, TraceWorkload, TransferRequest
from repro.traffic.stats import collect_stats


def test_validation():
    with pytest.raises(WorkloadError):
        collect_stats(TraceWorkload([]), 0)


def test_empty_trace():
    stats = collect_stats(TraceWorkload([]), 5)
    assert stats.num_files == 0
    assert stats.total_gb == 0.0
    assert stats.offered_gb_per_slot == 0.0


def test_known_trace():
    requests = [
        TransferRequest(0, 1, 10.0, 2, release_slot=0),
        TransferRequest(0, 1, 30.0, 3, release_slot=1),
        TransferRequest(1, 2, 20.0, 2, release_slot=1),
    ]
    stats = collect_stats(TraceWorkload(requests), 2)
    assert stats.num_files == 3
    assert stats.total_gb == pytest.approx(60.0)
    assert stats.offered_gb_per_slot == pytest.approx(30.0)
    # Required rate: 5 + 10 + 10 over 2 slots.
    assert stats.required_rate_per_slot == pytest.approx(12.5)
    assert stats.deadline_histogram == {2: 2, 3: 1}
    assert stats.hottest_pairs[0] == ((0, 1), 40.0)


def test_utilization_of():
    topo = complete_topology(3, capacity=10.0, seed=0)  # 6 links x 10
    requests = [TransferRequest(0, 1, 12.0, 2, release_slot=0)]
    stats = collect_stats(TraceWorkload(requests), 1)
    assert stats.utilization_of(topo) == pytest.approx(6.0 / 60.0)


def test_describe_readable():
    requests = [TransferRequest(0, 1, 10.0, 2, release_slot=0)]
    text = collect_stats(TraceWorkload(requests), 1).describe()
    assert "1 files" in text and "10 GB" in text and "T=2" in text


def test_paper_workload_statistics_in_range():
    topo = complete_topology(8, capacity=30.0, seed=1)
    workload = PaperWorkload(topo, max_deadline=3, seed=2)
    stats = collect_stats(workload, 20)
    # U[1,20] files of U[10,100] GB: sanity bands around the means.
    assert 5 < stats.num_files / 20 < 16
    assert 30 < stats.total_gb / stats.num_files < 80
    assert set(stats.deadline_histogram) == {3}
