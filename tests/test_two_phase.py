"""Unit tests for the two-phase flow decomposition."""

import pytest

from repro.errors import InfeasibleError, SchedulingError
from repro.core.state import NetworkState
from repro.flowbased import solve_two_phase
from repro.flowbased.model import build_flow_model
from repro.net.generators import complete_topology, line_topology
from repro.traffic import TransferRequest


def test_needs_requests(line3):
    state = NetworkState(line3, horizon=10)
    with pytest.raises(SchedulingError):
        solve_two_phase(state, [])


def test_cold_network_lambda_zero(line3):
    # Nothing has been paid yet, so phase 1 routes nothing.
    state = NetworkState(line3, horizon=10)
    request = TransferRequest(0, 1, 8.0, 4, release_slot=0)
    schedule, lam, phase2_cost = solve_two_phase(state, [request])
    assert lam == pytest.approx(0.0, abs=1e-9)
    assert phase2_cost > 0
    schedule.validate([request], capacity_fn=state.residual_capacity)


def test_paid_headroom_gives_lambda_one(line3):
    state = NetworkState(line3, horizon=20)
    r0 = TransferRequest(0, 1, 8.0, 2, release_slot=0)
    s0, _, _ = solve_two_phase(state, [r0])
    state.commit(s0, [r0])
    # The link now has a paid peak of 4/slot; a later file needing
    # 2/slot fits entirely in headroom.
    r1 = TransferRequest(0, 1, 8.0, 4, release_slot=5)
    _, lam, phase2_cost = solve_two_phase(state, [r1])
    assert lam == pytest.approx(1.0)
    assert phase2_cost == pytest.approx(0.0)


def test_partial_headroom_splits_phases(line3):
    state = NetworkState(line3, horizon=20)
    r0 = TransferRequest(0, 1, 4.0, 2, release_slot=0)  # paid peak 2
    s0, _, _ = solve_two_phase(state, [r0])
    state.commit(s0, [r0])
    # Needs 4/slot; 2 rides free, 2 is new.
    r1 = TransferRequest(0, 1, 8.0, 2, release_slot=5)
    schedule, lam, phase2_cost = solve_two_phase(state, [r1])
    assert lam == pytest.approx(0.5)
    assert phase2_cost == pytest.approx(2.0)  # price 1 * 2 GB/slot new
    schedule.validate([r1], capacity_fn=state.residual_capacity)


def test_infeasible_remainder_raises(line3):
    state = NetworkState(line3, horizon=10)
    request = TransferRequest(0, 2, 30.0, 2, release_slot=0)  # 15/slot > cut 10
    with pytest.raises(InfeasibleError):
        solve_two_phase(state, [request])


def test_two_phase_never_beats_exact_lp():
    """The decomposition is a heuristic: on the same state it can tie
    but never undercut the exact flow LP's percentile bill."""
    topo = complete_topology(5, capacity=25.0, seed=9)
    requests = [
        TransferRequest(0, 1, 20.0, 2, release_slot=0),
        TransferRequest(1, 2, 30.0, 3, release_slot=0),
        TransferRequest(3, 4, 10.0, 2, release_slot=0),
    ]

    state_lp = NetworkState(topo, horizon=20)
    schedule_lp, _ = build_flow_model(state_lp, [r.with_release(0) for r in requests]).solve()
    reqs_lp = [r.with_release(0) for r in requests]

    state_tp = NetworkState(topo, horizon=20)
    reqs_tp = [r.with_release(0) for r in requests]
    schedule_tp, _, _ = solve_two_phase(state_tp, reqs_tp)

    # Bill both schedules identically: commit and compare charged cost.
    # Request ids differ per copy, so rebuild matching request lists.
    state_a = NetworkState(topo, horizon=20)
    sched_a, _ = build_flow_model(state_a, reqs_lp).solve()
    state_a.commit(sched_a, reqs_lp)
    state_b = NetworkState(topo, horizon=20)
    schedule_b, _, _ = solve_two_phase(state_b, reqs_tp)
    state_b.commit(schedule_b, reqs_tp)
    assert (
        state_a.current_cost_per_slot()
        <= state_b.current_cost_per_slot() + 1e-6
    )
