"""Unit tests for unit conversions and charging-index arithmetic."""

import pytest

from repro import units


def test_oc192_fits_360gb_per_slot():
    # The paper: OC-192 moves up to 1.2 GB/s, i.e. 360 GB per 5 minutes.
    assert units.gb_per_slot_from_gbps(9.6) == pytest.approx(360.0)


def test_round_trip_conversion():
    assert units.gbps_from_gb_per_slot(units.gb_per_slot_from_gbps(3.3)) == pytest.approx(3.3)


def test_slots_from_seconds():
    assert units.slots_from_seconds(0) == 0
    assert units.slots_from_seconds(300) == 1
    assert units.slots_from_seconds(301) == 2
    assert units.slots_from_seconds(900) == 3  # Fig. 1: 15 minutes


def test_slots_from_seconds_negative():
    with pytest.raises(ValueError):
        units.slots_from_seconds(-1)


def test_paper_percentile_example():
    # 95th percentile over one year of 5-minute samples charges the
    # 99864-th sorted interval (the paper's arithmetic).
    assert units.percentile_slot_index(95, units.SLOTS_PER_YEAR) + 1 == 99864


def test_percentile_boundaries():
    assert units.percentile_slot_index(100, 10) == 9
    assert units.percentile_slot_index(1, 10) == 0
    assert units.percentile_slot_index(50, 1) == 0


def test_percentile_validation():
    with pytest.raises(ValueError):
        units.percentile_slot_index(0, 10)
    with pytest.raises(ValueError):
        units.percentile_slot_index(101, 10)
    with pytest.raises(ValueError):
        units.percentile_slot_index(95, 0)


def test_slots_per_year():
    assert units.SLOTS_PER_YEAR == 365 * 24 * 12
