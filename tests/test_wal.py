"""Unit tests for the write-ahead log and the generational store."""

import json
import zlib

import pytest

from repro.errors import SchedulingError, WalError
from repro.service.config import ServiceConfig
from repro.service.slotloop import TransferBroker
from repro.service.store import SnapshotStore
from repro.service.wal import (
    RECORD_HEADER,
    WriteAheadLog,
    encode_record,
    scan_wal,
    truncate_torn_tail,
)


# -- framing ---------------------------------------------------------------


def test_append_scan_round_trip(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    records = [
        {"type": "admit", "entry": {"id": "a"}, "submitted": 1},
        {"type": "commit", "slot": 0, "batch": ["a"], "lane": "fast"},
    ]
    for record in records:
        wal.append(record)
    wal.close()
    scan = scan_wal(path)
    assert scan.records == records
    assert not scan.torn
    assert scan.valid_bytes == path.stat().st_size


def test_append_counts_and_close(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    n = wal.append({"type": "admit"})
    assert wal.records_written == 1
    assert wal.bytes_written == n
    assert wal.size_bytes() == n
    wal.close()
    assert wal.closed
    with pytest.raises(WalError, match="closed"):
        wal.append({"type": "admit"})


def test_oversized_record_refused():
    with pytest.raises(WalError, match="exceeds"):
        encode_record({"blob": "x" * (17 * 1024 * 1024)})


def test_scan_missing_file_is_empty(tmp_path):
    scan = scan_wal(tmp_path / "nope.log")
    assert scan.records == [] and not scan.torn


@pytest.mark.parametrize(
    "mangler,reason",
    [
        (lambda frame: frame[: RECORD_HEADER.size - 2], "short header"),
        (lambda frame: frame[:-3], "short payload"),
        (
            lambda frame: frame[: RECORD_HEADER.size]
            + b"X" + frame[RECORD_HEADER.size + 1 :],
            "checksum mismatch",
        ),
        (
            lambda frame: RECORD_HEADER.pack(2**30, 0) + frame[RECORD_HEADER.size :],
            "implausible record length",
        ),
    ],
)
def test_torn_tail_detected_and_truncated(tmp_path, mangler, reason):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append({"type": "admit", "entry": {"id": "a"}})
    wal.close()
    intact = path.stat().st_size
    frame = encode_record({"type": "commit", "slot": 1})
    with open(path, "ab") as fh:
        fh.write(mangler(frame))

    scan = scan_wal(path)
    assert scan.torn
    assert reason in scan.torn_reason
    assert len(scan.records) == 1  # the intact prefix survives
    assert scan.valid_bytes == intact

    cut = truncate_torn_tail(scan)
    assert cut > 0
    assert path.stat().st_size == intact
    assert not scan_wal(path).torn


def test_bad_json_payload_is_a_tear(tmp_path):
    path = tmp_path / "wal.log"
    payload = b"not json at all"
    path.write_bytes(RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload)
    scan = scan_wal(path)
    assert scan.torn and "JSON" in scan.torn_reason


# -- the generational store ------------------------------------------------


def wal_config(tmp_path, **overrides):
    defaults = dict(
        datacenters=4, capacity=50.0, seed=3, max_deadline=8,
        tick_seconds=0.0, checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_every=1, wal=True,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def drive_slots(broker, slots, start=0):
    for i in range(slots):
        broker.submit({
            "id": f"s{start + i}", "source": 0, "destination": 2,
            "size_gb": 4.0, "deadline_slots": 3,
        })
        broker.process_slot()


def test_compaction_rotates_generations_and_prunes(tmp_path):
    config = wal_config(tmp_path, snapshot_retain=2)
    broker = TransferBroker(config)
    drive_slots(broker, 5)
    store = broker.store
    gens = store.snapshot_generations()
    # checkpoint_every=1: one compaction per processed batch slot.
    assert store.generation == 5
    assert gens == [4, 5]  # retain=2 keeps exactly the newest two
    assert store.wal_generations() == [4, 5]
    # The current generation's log is empty (fresh after compaction).
    assert scan_wal(store.wal_path(5)).records == []


def test_recover_prefers_newest_valid_snapshot(tmp_path):
    config = wal_config(tmp_path, checkpoint_every=2)
    broker = TransferBroker(config)
    drive_slots(broker, 4)
    expected_slot = broker.next_slot
    del broker

    resumed = TransferBroker(wal_config(tmp_path, checkpoint_every=2))
    assert resumed.resumed
    assert resumed.next_slot == expected_slot
    assert resumed.recovery_info["fallbacks"] == 0
    assert resumed.verifier_report["ok"]


def test_recover_falls_back_past_corrupt_snapshot(tmp_path):
    config = wal_config(tmp_path)
    broker = TransferBroker(config)
    drive_slots(broker, 3)
    books = {cid: rec["decision"] for cid, rec in broker.decisions.items()}
    charged = broker.state.charged_snapshot()
    del broker

    store = SnapshotStore(str(tmp_path / "ckpt"), wal=True)
    newest = store.snapshot_path(store.newest_generation())
    data = bytearray(newest.read_bytes())
    data[len(data) // 2] ^= 0xFF
    newest.write_bytes(bytes(data))

    resumed = TransferBroker(wal_config(tmp_path))
    assert resumed.recovery_info["fallbacks"] == 1
    assert resumed.recovery_info["base_generation"] == 2
    assert {c: r["decision"] for c, r in resumed.decisions.items()} == books
    assert resumed.state.charged_snapshot() == pytest.approx(charged)


def test_recover_truncates_torn_wal_tail(tmp_path):
    config = wal_config(tmp_path, checkpoint_every=100)  # never compacts
    broker = TransferBroker(config)
    drive_slots(broker, 2)
    decided = dict(broker.decisions)
    del broker

    store = SnapshotStore(str(tmp_path / "ckpt"), wal=True)
    with open(store.wal_path(0), "ab") as fh:
        fh.write(b"\x40\x00\x00\x00\xde\xad\xbe\xefgarbage tail")

    resumed = TransferBroker(wal_config(tmp_path, checkpoint_every=100))
    assert resumed.recovery_info["torn_bytes"] > 0
    assert resumed.recovery_info["base_generation"] == 0
    assert set(resumed.decisions) == set(decided)
    # The tail stays gone: a second resume sees a clean log.
    again = TransferBroker(wal_config(tmp_path, checkpoint_every=100))
    assert again.recovery_info["torn_bytes"] == 0


def test_recover_sweeps_stray_tmp(tmp_path):
    config = wal_config(tmp_path)
    broker = TransferBroker(config)
    drive_slots(broker, 2)
    del broker
    store = SnapshotStore(str(tmp_path / "ckpt"), wal=True)
    stray = store.directory / "snapshot-00000009.json.tmp"
    stray.write_text('{"version": 2, "kind": "pos')

    resumed = TransferBroker(wal_config(tmp_path))
    assert resumed.recovery_info["stray_tmp"] == 1
    assert not stray.exists()


def test_recover_refuses_broken_chain(tmp_path):
    config = wal_config(tmp_path, snapshot_retain=1)
    broker = TransferBroker(config)
    drive_slots(broker, 3)
    del broker
    store = SnapshotStore(str(tmp_path / "ckpt"), wal=True)
    # Kill the only retained snapshot: the WAL chain starts mid-history.
    store.snapshot_path(store.newest_generation()).unlink()
    with pytest.raises(WalError, match="genesis"):
        TransferBroker(wal_config(tmp_path, snapshot_retain=1))


def test_store_wal_requires_flag(tmp_path):
    store = SnapshotStore(str(tmp_path), wal=False)
    with pytest.raises(WalError, match="wal=True"):
        store.open_wal()
    with pytest.raises(WalError, match="retention"):
        SnapshotStore(str(tmp_path), wal=True, retain=0)


def test_legacy_load_refuses_corrupt_snapshot(tmp_path):
    """Satellite: a corrupt snapshot.json fails loudly, not quietly."""
    config = ServiceConfig(
        datacenters=4, capacity=50.0, seed=3, max_deadline=8,
        tick_seconds=0.0, checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_every=1,
    )
    broker = TransferBroker(config)
    drive_slots(broker, 1)
    del broker
    path = tmp_path / "ckpt" / "snapshot.json"
    payload = json.loads(path.read_text())
    payload["next_slot"] = 99  # tamper without updating the checksum
    path.write_text(json.dumps(payload))
    with pytest.raises(SchedulingError, match="checksum mismatch"):
        TransferBroker(config)


def test_empty_slots_survive_resume(tmp_path):
    """The virtual clock is journaled even when no batch is processed."""
    config = wal_config(tmp_path, checkpoint_every=100)
    broker = TransferBroker(config)
    broker.process_slot()
    broker.process_slot()
    drive_slots(broker, 1)
    assert broker.next_slot == 3
    del broker
    resumed = TransferBroker(wal_config(tmp_path, checkpoint_every=100))
    assert resumed.next_slot == 3
