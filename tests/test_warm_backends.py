"""Warm-started solves across the backend chain.

A ``warm=`` hint must never change *what* a backend computes — only,
at best, how fast it gets there.  Every backend accepts the keyword:

* ``highs`` advertises ``supports_warm_start = False`` and ignores the
  hint entirely, so warm and cold solves are **bit-identical** (the
  fast scheduling path leans on exactly that);
* ``simplex`` likewise ignores it (a verification backend);
* ``interior_point`` seeds its primal iterate from the hint and must
  land on the same optimum to solver tolerance.

Checked on the paper's worked examples (Figs. 1 and 3) per backend,
and on a seeded 10-DC online run through the production path.
"""

import numpy as np
import pytest

from repro.core import PostcardScheduler, build_postcard_model
from repro.core.state import NetworkState
from repro.lp.backends import get_backend
from repro.lp.warm import WarmStart
from repro.net.generators import complete_topology, fig1_topology, fig3_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TransferRequest

BACKENDS = ["highs", "simplex", "interior_point"]

#: Loose enough for the interior-point solver's stopping tolerance,
#: tight enough that a genuinely different optimum fails.
REL = 1e-5


def _fig1_model():
    state = NetworkState(fig1_topology(), horizon=100)
    request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
    return build_postcard_model(state, [request]).model


def _fig3_model():
    state = NetworkState(fig3_topology(), horizon=100)
    files = [
        TransferRequest(2, 4, 8.0, 4, release_slot=3),
        TransferRequest(1, 4, 10.0, 2, release_slot=3),
    ]
    return build_postcard_model(state, files).model


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "make_model, expected",
    [(_fig1_model, 12.0), (_fig3_model, 98.0 / 3.0)],
    ids=["fig1", "fig3"],
)
def test_warm_equals_cold_on_paper_examples(backend, make_model, expected):
    model = make_model()
    cold = model.solve(backend=backend)
    hint = WarmStart.from_solution(model, cold)
    warm = model.solve(backend=backend, warm=hint)
    assert cold.objective == pytest.approx(expected, rel=REL)
    assert warm.objective == pytest.approx(cold.objective, rel=REL)
    if not get_backend(backend).supports_warm_start:
        # Hint ignored => the very same solve.  (interior_point may
        # legitimately land on a different point of a degenerate
        # optimal face, so only its objective is pinned above.)
        np.testing.assert_array_equal(warm.x, cold.x)


@pytest.mark.parametrize(
    "make_model", [_fig1_model, _fig3_model], ids=["fig1", "fig3"]
)
def test_highs_ignores_warm_bit_identically(make_model):
    """scipy's HiGHS bindings expose no solution injection, so the hint
    is dropped on the floor — warm and cold are the same solve."""
    model = make_model()
    backend = get_backend("highs")
    assert backend.supports_warm_start is False
    cold = model.solve(backend="highs")
    warm = model.solve(
        backend="highs", warm=WarmStart.from_solution(model, cold)
    )
    assert warm.objective == cold.objective
    np.testing.assert_array_equal(warm.x, cold.x)


def test_interior_point_advertises_warm_support():
    assert get_backend("interior_point").supports_warm_start is True
    assert get_backend("simplex").supports_warm_start is False


def test_misleading_warm_hint_is_harmless():
    """A hint from a *different* model (wrong shape, wrong names) must
    not change the optimum — it only seeds the iterate."""
    fig1 = _fig1_model()
    fig3 = _fig3_model()
    wrong = WarmStart.from_solution(fig3, fig3.solve(backend="highs"))
    cold = fig1.solve(backend="interior_point")
    warm = fig1.solve(backend="interior_point", warm=wrong)
    assert warm.objective == pytest.approx(cold.objective, rel=REL)


def _online_costs(warm_start: bool, backend: str = "highs"):
    topology = complete_topology(10, capacity=100.0, seed=2012)
    workload = PaperWorkload(topology, max_deadline=3, max_files=5, seed=3012)
    scheduler = PostcardScheduler(
        topology,
        horizon=10,
        backend=backend,
        on_infeasible="drop",
        warm_start=warm_start,
    )
    result = Simulation(scheduler, workload, 8).run()
    return result.final_cost_per_slot, result.cost_trajectory()


def test_online_10dc_warm_equals_cold_highs():
    """The production path: a seeded 10-DC online run, warm hints
    threaded slot to slot, must be bit-identical to cold solves."""
    warm_cost, warm_traj = _online_costs(warm_start=True)
    cold_cost, cold_traj = _online_costs(warm_start=False)
    assert warm_cost == cold_cost
    np.testing.assert_array_equal(warm_traj, cold_traj)


def test_online_warm_equals_cold_interior_point():
    """Same property through the solver that actually *uses* the hint,
    on a smaller instance (the dense IPM is O(n^3) per iteration)."""
    topology = complete_topology(4, capacity=60.0, seed=11)
    workload = PaperWorkload(
        topology, max_deadline=2, max_files=2, seed=13
    )

    def run(warm_start):
        scheduler = PostcardScheduler(
            topology,
            horizon=6,
            backend="interior_point",
            on_infeasible="drop",
            warm_start=warm_start,
        )
        return Simulation(scheduler, workload, 4).run().final_cost_per_slot

    assert run(True) == pytest.approx(run(False), rel=REL)
