"""Unit tests for workload generators."""

from concurrent.futures import ProcessPoolExecutor

import multiprocessing

import pytest

from repro.errors import WorkloadError
from repro.net.generators import complete_topology
from repro.traffic import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    MergedWorkload,
    PaperWorkload,
    PoissonWorkload,
    TraceWorkload,
    TransferRequest,
)
from repro.traffic.io import workload_from_json, workload_to_json


def fingerprint(workload, slots):
    """Slot-by-slot releases, reduced to comparable tuples."""
    return [
        [
            (r.source, r.destination, round(r.size_gb, 9), r.deadline_slots)
            for r in workload.requests_at(slot)
        ]
        for slot in range(slots)
    ]


def _rebuild_fingerprint(args):
    """Worker: rebuild a serialized workload and fingerprint it.

    Module-level so process pools can pickle it — the same constraint
    the ``repro.sim.parallel`` task specs live under.
    """
    payload, slots = args
    topology = complete_topology(4, capacity=50.0, seed=9)
    return fingerprint(workload_from_json(payload, topology), slots)


class TestPaperWorkload:
    def test_parameters_respected(self, small_complete):
        wl = PaperWorkload(small_complete, max_deadline=3, seed=1)
        for slot in range(20):
            requests = wl.requests_at(slot)
            assert 1 <= len(requests) <= 20
            for r in requests:
                assert 10.0 <= r.size_gb <= 100.0
                assert r.deadline_slots == 3  # fixed distribution
                assert r.source != r.destination
                assert r.release_slot == slot

    def test_uniform_deadlines(self, small_complete):
        wl = PaperWorkload(
            small_complete, max_deadline=8, seed=1, deadline_distribution="uniform"
        )
        deadlines = {
            r.deadline_slots for slot in range(30) for r in wl.requests_at(slot)
        }
        assert deadlines <= set(range(1, 9))
        assert len(deadlines) > 1

    def test_deterministic_per_slot(self, small_complete):
        wl = PaperWorkload(small_complete, max_deadline=3, seed=5)
        a = wl.requests_at(7)
        b = wl.requests_at(7)
        assert [(r.source, r.destination, r.size_gb) for r in a] == [
            (r.source, r.destination, r.size_gb) for r in b
        ]

    def test_different_seeds_differ(self, small_complete):
        a = PaperWorkload(small_complete, max_deadline=3, seed=1).all_requests(10)
        b = PaperWorkload(small_complete, max_deadline=3, seed=2).all_requests(10)
        assert [(r.source, r.size_gb) for r in a] != [(r.source, r.size_gb) for r in b]

    def test_validation(self, small_complete):
        with pytest.raises(WorkloadError):
            PaperWorkload(small_complete, max_deadline=0)
        with pytest.raises(WorkloadError):
            PaperWorkload(small_complete, max_deadline=3, min_files=0)
        with pytest.raises(WorkloadError):
            PaperWorkload(small_complete, max_deadline=3, min_files=5, max_files=2)
        with pytest.raises(WorkloadError):
            PaperWorkload(small_complete, max_deadline=3, min_size=0.0)
        with pytest.raises(WorkloadError):
            PaperWorkload(small_complete, max_deadline=3, deadline_distribution="zipf")


class TestDiurnalWorkload:
    def test_intensity_oscillates(self, small_complete):
        wl = DiurnalWorkload(
            small_complete, max_deadline=3, peak_files=20, trough_files=2,
            slots_per_day=24, seed=0,
        )
        intensities = [wl.intensity(s) for s in range(24)]
        assert max(intensities) == pytest.approx(20.0, abs=0.5)
        assert min(intensities) == pytest.approx(2.0, abs=0.5)

    def test_phase_shift(self, small_complete):
        a = DiurnalWorkload(small_complete, 3, slots_per_day=24, seed=0)
        b = DiurnalWorkload(small_complete, 3, slots_per_day=24, phase_slots=12, seed=0)
        # Half a day apart: where one peaks the other troughs.
        assert a.intensity(6) == pytest.approx(b.intensity(18), abs=1e-6)

    def test_validation(self, small_complete):
        with pytest.raises(WorkloadError):
            DiurnalWorkload(small_complete, 3, peak_files=1, trough_files=5)
        with pytest.raises(WorkloadError):
            DiurnalWorkload(small_complete, 3, slots_per_day=1)
        with pytest.raises(WorkloadError):
            DiurnalWorkload(small_complete, 0)


class TestPoissonWorkload:
    def test_mean_rate(self, small_complete):
        wl = PoissonWorkload(small_complete, max_deadline=3, rate=4.0, seed=3)
        counts = [len(wl.requests_at(s)) for s in range(200)]
        assert 3.0 < sum(counts) / len(counts) < 5.0

    def test_validation(self, small_complete):
        with pytest.raises(WorkloadError):
            PoissonWorkload(small_complete, max_deadline=3, rate=0.0)


class TestSeededDeterminism:
    def test_diurnal_identical_streams(self, small_complete):
        a = DiurnalWorkload(small_complete, 3, slots_per_day=24, seed=11)
        b = DiurnalWorkload(small_complete, 3, slots_per_day=24, seed=11)
        assert fingerprint(a, 48) == fingerprint(b, 48)

    def test_poisson_identical_streams(self, small_complete):
        a = PoissonWorkload(small_complete, 3, rate=4.0, seed=11)
        b = PoissonWorkload(small_complete, 3, rate=4.0, seed=11)
        assert fingerprint(a, 48) == fingerprint(b, 48)

    def test_slot_access_order_is_immaterial(self, small_complete):
        wl = DiurnalWorkload(small_complete, 3, slots_per_day=24, seed=2)
        backwards = [
            [(r.source, r.size_gb) for r in wl.requests_at(s)]
            for s in reversed(range(10))
        ]
        forwards = [
            [(r.source, r.size_gb) for r in wl.requests_at(s)]
            for s in range(10)
        ]
        assert backwards == list(reversed(forwards))


class TestWorkloadSerialization:
    def test_seasonality_period_round_trip(self, small_complete):
        wl = DiurnalWorkload(
            small_complete, max_deadline=5, peak_files=18, trough_files=3,
            slots_per_day=36, phase_slots=9, min_size=20.0, max_size=80.0,
            seed=7,
        )
        rebuilt = workload_from_json(workload_to_json(wl), small_complete)
        assert isinstance(rebuilt, DiurnalWorkload)
        assert rebuilt.slots_per_day == 36
        assert rebuilt.phase_slots == 9
        assert rebuilt.seed == 7
        for slot in range(72):
            assert rebuilt.intensity(slot) == pytest.approx(wl.intensity(slot))
        assert fingerprint(rebuilt, 72) == fingerprint(wl, 72)

    @pytest.mark.parametrize("build", [
        lambda t: PaperWorkload(t, max_deadline=4, seed=3,
                                deadline_distribution="uniform"),
        lambda t: PoissonWorkload(t, max_deadline=4, rate=2.5, seed=3),
        lambda t: FlashCrowdWorkload(t, max_deadline=4, base_rate=1.5,
                                     burst_probability=0.2, seed=3),
        lambda t: MergedWorkload([
            PoissonWorkload(t, max_deadline=4, rate=1.0, seed=1),
            DiurnalWorkload(t, 4, slots_per_day=12, phase_slots=3, seed=2),
        ]),
    ])
    def test_families_round_trip(self, small_complete, build):
        wl = build(small_complete)
        rebuilt = workload_from_json(workload_to_json(wl), small_complete)
        assert type(rebuilt) is type(wl)
        assert fingerprint(rebuilt, 30) == fingerprint(wl, 30)

    def test_rejects_junk(self, small_complete):
        with pytest.raises(WorkloadError, match="not a postcard workload"):
            workload_from_json('{"kind": "nope"}', small_complete)
        with pytest.raises(WorkloadError, match="unknown workload family"):
            workload_from_json(
                '{"kind": "postcard-workload", "version": 1, '
                '"family": "fractal"}',
                small_complete,
            )
        with pytest.raises(WorkloadError, match="cannot serialize"):
            workload_to_json(TraceWorkload([]))


class TestPhaseAlignmentAcrossProcesses:
    def test_parallel_rebuilds_agree(self):
        """Two pool workers rebuilding the same serialized diurnal
        workload must release identical, phase-aligned request streams
        (what keeps `parallel` comparison cells comparable)."""
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            pytest.skip("needs a fork start method")
        topology = complete_topology(4, capacity=50.0, seed=9)
        wl = DiurnalWorkload(
            topology, max_deadline=4, slots_per_day=24, phase_slots=6,
            seed=13,
        )
        payload = workload_to_json(wl)
        local = fingerprint(wl, 48)
        with ProcessPoolExecutor(max_workers=2, mp_context=ctx) as pool:
            remote = list(
                pool.map(_rebuild_fingerprint, [(payload, 48)] * 2)
            )
        assert remote[0] == local
        assert remote[1] == local


class TestTraceWorkload:
    def test_replay(self):
        reqs = [
            TransferRequest(0, 1, 1.0, 2, release_slot=0),
            TransferRequest(1, 2, 2.0, 2, release_slot=0),
            TransferRequest(2, 3, 3.0, 2, release_slot=4),
        ]
        wl = TraceWorkload(reqs)
        assert len(wl.requests_at(0)) == 2
        assert wl.requests_at(1) == []
        assert wl.requests_at(4)[0].size_gb == 3.0
        assert wl.num_requests == 3

    def test_all_requests(self):
        reqs = [TransferRequest(0, 1, 1.0, 2, release_slot=s) for s in range(5)]
        wl = TraceWorkload(reqs)
        assert len(wl.all_requests(3)) == 3
