"""Unit tests for workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.traffic import (
    DiurnalWorkload,
    PaperWorkload,
    PoissonWorkload,
    TraceWorkload,
    TransferRequest,
)


class TestPaperWorkload:
    def test_parameters_respected(self, small_complete):
        wl = PaperWorkload(small_complete, max_deadline=3, seed=1)
        for slot in range(20):
            requests = wl.requests_at(slot)
            assert 1 <= len(requests) <= 20
            for r in requests:
                assert 10.0 <= r.size_gb <= 100.0
                assert r.deadline_slots == 3  # fixed distribution
                assert r.source != r.destination
                assert r.release_slot == slot

    def test_uniform_deadlines(self, small_complete):
        wl = PaperWorkload(
            small_complete, max_deadline=8, seed=1, deadline_distribution="uniform"
        )
        deadlines = {
            r.deadline_slots for slot in range(30) for r in wl.requests_at(slot)
        }
        assert deadlines <= set(range(1, 9))
        assert len(deadlines) > 1

    def test_deterministic_per_slot(self, small_complete):
        wl = PaperWorkload(small_complete, max_deadline=3, seed=5)
        a = wl.requests_at(7)
        b = wl.requests_at(7)
        assert [(r.source, r.destination, r.size_gb) for r in a] == [
            (r.source, r.destination, r.size_gb) for r in b
        ]

    def test_different_seeds_differ(self, small_complete):
        a = PaperWorkload(small_complete, max_deadline=3, seed=1).all_requests(10)
        b = PaperWorkload(small_complete, max_deadline=3, seed=2).all_requests(10)
        assert [(r.source, r.size_gb) for r in a] != [(r.source, r.size_gb) for r in b]

    def test_validation(self, small_complete):
        with pytest.raises(WorkloadError):
            PaperWorkload(small_complete, max_deadline=0)
        with pytest.raises(WorkloadError):
            PaperWorkload(small_complete, max_deadline=3, min_files=0)
        with pytest.raises(WorkloadError):
            PaperWorkload(small_complete, max_deadline=3, min_files=5, max_files=2)
        with pytest.raises(WorkloadError):
            PaperWorkload(small_complete, max_deadline=3, min_size=0.0)
        with pytest.raises(WorkloadError):
            PaperWorkload(small_complete, max_deadline=3, deadline_distribution="zipf")


class TestDiurnalWorkload:
    def test_intensity_oscillates(self, small_complete):
        wl = DiurnalWorkload(
            small_complete, max_deadline=3, peak_files=20, trough_files=2,
            slots_per_day=24, seed=0,
        )
        intensities = [wl.intensity(s) for s in range(24)]
        assert max(intensities) == pytest.approx(20.0, abs=0.5)
        assert min(intensities) == pytest.approx(2.0, abs=0.5)

    def test_phase_shift(self, small_complete):
        a = DiurnalWorkload(small_complete, 3, slots_per_day=24, seed=0)
        b = DiurnalWorkload(small_complete, 3, slots_per_day=24, phase_slots=12, seed=0)
        # Half a day apart: where one peaks the other troughs.
        assert a.intensity(6) == pytest.approx(b.intensity(18), abs=1e-6)

    def test_validation(self, small_complete):
        with pytest.raises(WorkloadError):
            DiurnalWorkload(small_complete, 3, peak_files=1, trough_files=5)
        with pytest.raises(WorkloadError):
            DiurnalWorkload(small_complete, 3, slots_per_day=1)
        with pytest.raises(WorkloadError):
            DiurnalWorkload(small_complete, 0)


class TestPoissonWorkload:
    def test_mean_rate(self, small_complete):
        wl = PoissonWorkload(small_complete, max_deadline=3, rate=4.0, seed=3)
        counts = [len(wl.requests_at(s)) for s in range(200)]
        assert 3.0 < sum(counts) / len(counts) < 5.0

    def test_validation(self, small_complete):
        with pytest.raises(WorkloadError):
            PoissonWorkload(small_complete, max_deadline=3, rate=0.0)


class TestTraceWorkload:
    def test_replay(self):
        reqs = [
            TransferRequest(0, 1, 1.0, 2, release_slot=0),
            TransferRequest(1, 2, 2.0, 2, release_slot=0),
            TransferRequest(2, 3, 3.0, 2, release_slot=4),
        ]
        wl = TraceWorkload(reqs)
        assert len(wl.requests_at(0)) == 2
        assert wl.requests_at(1) == []
        assert wl.requests_at(4)[0].size_gb == 3.0
        assert wl.num_requests == 3

    def test_all_requests(self):
        reqs = [TransferRequest(0, 1, 1.0, 2, release_slot=s) for s in range(5)]
        wl = TraceWorkload(reqs)
        assert len(wl.all_requests(3)) == 3
